//! Quickstart: run the faithful FPSS mechanism on the paper's Figure 1
//! network through the unified scenario API and inspect what the
//! mechanism computed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use specfaith::fpss::pricing::vcg_payment;
use specfaith::graph::lcp::lcp_tree;
use specfaith::prelude::*;

fn main() {
    // The 6-node interdomain topology of Figure 1, with the paper's
    // transit costs (A=5, B=1000, C=1, D=1, Z=6, X=100).
    let net = figure1();
    let names = ["A", "B", "C", "D", "Z", "X"];
    let name = |id: NodeId| names[id.index()];

    println!("== Figure 1: lowest-cost paths from Z ==");
    for entry in lcp_tree(&net.topology, &net.costs, net.z).iter().flatten() {
        if entry.destination() == net.z {
            continue;
        }
        let path: Vec<&str> = entry.nodes().iter().map(|&v| name(v)).collect();
        println!(
            "  Z -> {}: {} (cost {})",
            name(entry.destination()),
            path.join("-"),
            entry.cost()
        );
    }

    println!("\n== VCG payments for the X -> Z flow ==");
    for k in [net.d, net.c] {
        let p =
            vcg_payment(&net.topology, &net.costs, net.x, net.z, k).expect("k is on the X->Z LCP");
        println!(
            "  transit {} is paid {} per packet (declared cost {})",
            name(k),
            p,
            net.costs.cost(k)
        );
    }

    // One builder call describes the whole experiment: topology, traffic,
    // mechanism. The faithful lifecycle (cost flood, distributed routing
    // and pricing, bank checkpoints [BANK1]/[BANK2], execution,
    // settlement) runs inside a single deterministic simulation.
    println!("\n== Faithful run: X sends 10 packets to Z ==");
    let scenario = Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::Single {
            src: net.x,
            dst: net.z,
            packets: 10,
        })
        .mechanism(Mechanism::faithful())
        .build();
    let run = scenario.run(42);
    println!("  green-lighted: {}", run.green_lighted());
    println!("  restarts: {}, halted: {}", run.restarts(), run.halted());
    println!("  anything detected by enforcement: {}", run.detected);
    println!("  utilities:");
    for id in scenario.topology().nodes() {
        println!("    {}: {}", name(id), run.utilities[id.index()]);
    }

    // And certify the standard deviation catalog unprofitable — the
    // Theorem-1 sweep, fanned out across cores.
    println!("\n== Deviation sweep (Theorem 1, empirically) ==");
    let report = scenario.sweep(&[42], &Catalog::standard());
    println!(
        "  {} unilateral deviations tested; ex post Nash: {}",
        report.total_deviations(),
        report.is_ex_post_nash()
    );
    println!(
        "  strong-CC: {}, strong-AC: {}, IC: {}",
        report.strong_cc_holds(),
        report.strong_ac_holds(),
        report.ic_holds()
    );
}
