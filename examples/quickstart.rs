//! Quickstart: run the faithful FPSS mechanism on the paper's Figure 1
//! network and inspect what the mechanism computed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use specfaith::fpss::pricing::vcg_payment;
use specfaith::graph::lcp::lcp_tree;
use specfaith::prelude::*;

fn main() {
    // The 6-node interdomain topology of Figure 1, with the paper's
    // transit costs (A=5, B=1000, C=1, D=1, Z=6, X=100).
    let net = figure1();
    let names = ["A", "B", "C", "D", "Z", "X"];
    let name = |id: NodeId| names[id.index()];

    println!("== Figure 1: lowest-cost paths from Z ==");
    for entry in lcp_tree(&net.topology, &net.costs, net.z).iter().flatten() {
        if entry.destination() == net.z {
            continue;
        }
        let path: Vec<&str> = entry.nodes().iter().map(|&v| name(v)).collect();
        println!(
            "  Z -> {}: {} (cost {})",
            name(entry.destination()),
            path.join("-"),
            entry.cost()
        );
    }

    println!("\n== VCG payments for the X -> Z flow ==");
    for k in [net.d, net.c] {
        let p = vcg_payment(&net.topology, &net.costs, net.x, net.z, k)
            .expect("k is on the X->Z LCP");
        println!(
            "  transit {} is paid {} per packet (declared cost {})",
            name(k),
            p,
            net.costs.cost(k)
        );
    }

    // Run the full faithful lifecycle: cost flood, distributed routing and
    // pricing, bank checkpoints ([BANK1]/[BANK2]), execution, settlement.
    println!("\n== Faithful run: X sends 10 packets to Z ==");
    let sim = FaithfulSim::new(
        net.topology.clone(),
        net.costs.clone(),
        TrafficMatrix::single(net.x, net.z, 10),
    );
    let run = sim.run_faithful(42);
    println!("  green-lighted: {}", run.green_lighted);
    println!("  restarts: {}, halted: {}", run.restarts, run.halted);
    println!("  anything detected by enforcement: {}", run.detected);
    println!("  utilities:");
    for id in net.topology.nodes() {
        println!("    {}: {}", name(id), run.utilities[id.index()]);
    }

    // And certify the standard deviation catalog unprofitable.
    println!("\n== Deviation sweep (Theorem 1, empirically) ==");
    let report = sim.equilibrium_report(42);
    println!(
        "  {} unilateral deviations tested; ex post Nash: {}",
        report.outcomes.len(),
        report.is_ex_post_nash()
    );
    println!(
        "  strong-CC: {}, strong-AC: {}, IC: {}",
        report.strong_cc_holds(),
        report.strong_ac_holds(),
        report.ic_holds()
    );
}
