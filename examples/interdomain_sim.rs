//! A larger interdomain-routing scenario: a random 16-AS biconnected
//! topology, random transit costs, random traffic, full faithful
//! lifecycle, and the price of faithfulness (overhead vs plain FPSS).
//!
//! ```sh
//! cargo run --example interdomain_sim
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use specfaith::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(2004);
    let n = 16;
    let topo = random_biconnected(n, n / 2, &mut rng);
    let costs = CostVector::random(n, 1, 20, &mut rng);
    let traffic = TrafficMatrix::random(n, 12, 5, &mut rng);
    println!(
        "topology: {} ASes, {} links, biconnected: {}",
        topo.num_nodes(),
        topo.num_edges(),
        topo.is_biconnected()
    );
    println!("traffic: {} flows, {} packets total", traffic.flows().len(), traffic.total_packets());

    // Plain FPSS: converges to the centralized VCG tables.
    let plain = PlainFpssSim::new(topo.clone(), costs.clone(), traffic.clone());
    let plain_run = plain.run_faithful(7);
    println!(
        "\nplain FPSS: tables match centralized VCG reference: {}",
        plain_run.tables_match_centralized
    );
    println!(
        "plain FPSS traffic: {} msgs / {} bytes",
        plain_run.stats.total_msgs(),
        plain_run.stats.total_bytes()
    );

    // Faithful extension: checkers + bank, full lifecycle in one run.
    let faithful = FaithfulSim::new(topo.clone(), costs.clone(), traffic.clone());
    let run = faithful.run_faithful(7);
    println!(
        "\nfaithful FPSS: green-lighted: {}, restarts: {}, detected: {}",
        run.green_lighted, run.restarts, run.detected
    );
    println!(
        "faithful traffic: {} msgs / {} bytes",
        run.stats.total_msgs(),
        run.stats.total_bytes()
    );

    let overhead = measure_overhead(&topo, &costs, &traffic, 7);
    println!("\nthe price of faithfulness (checker redundancy + checkpoints):");
    println!("  {overhead}");

    // Utility summary: who earned what.
    println!("\nrealized utilities (faithful run):");
    let mut ranked: Vec<(NodeId, Money)> = topo
        .nodes()
        .map(|id| (id, run.utilities[id.index()]))
        .collect();
    ranked.sort_by_key(|&(_, u)| std::cmp::Reverse(u));
    for (id, u) in ranked.iter().take(5) {
        println!("  {id}: {u}");
    }
    println!("  ... ({} nodes total, all strictly positive: {})",
        n,
        run.utilities.iter().all(|u| u.is_positive())
    );
}
