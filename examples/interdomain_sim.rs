//! A larger interdomain-routing scenario: a random 16-AS biconnected
//! topology, random transit costs, random traffic, full faithful
//! lifecycle, and the price of faithfulness (overhead vs plain FPSS).
//!
//! The entire instance is declarative: the scenario builder materializes
//! topology, costs, and traffic from its instance seed, and the plain and
//! faithful runs differ by one [`Mechanism`] knob.
//!
//! ```sh
//! cargo run --example interdomain_sim
//! ```

use specfaith::prelude::*;

fn main() {
    let n = 16;
    let base = Scenario::builder()
        .topology(TopologySource::RandomBiconnected {
            n,
            extra_edges: n / 2,
        })
        .costs(CostModel::Random { lo: 1, hi: 20 })
        .traffic(TrafficModel::Random {
            flows: 12,
            max_packets: 5,
        })
        .instance_seed(2004);

    // Plain FPSS: converges to the centralized VCG tables.
    let plain = base.clone().mechanism(Mechanism::Plain).build();
    println!(
        "topology: {} ASes, {} links, biconnected: {}",
        plain.num_nodes(),
        plain.topology().num_edges(),
        plain.topology().is_biconnected()
    );
    println!(
        "traffic: {} flows, {} packets total",
        plain.traffic().flows().len(),
        plain.traffic().total_packets()
    );

    let plain_run = plain.run(7);
    println!(
        "\nplain FPSS: tables match centralized VCG reference: {:?}",
        plain_run.tables_match_centralized().expect("plain run")
    );
    println!(
        "plain FPSS traffic: {} msgs / {} bytes",
        plain_run.stats.total_msgs(),
        plain_run.stats.total_bytes()
    );

    // Faithful extension: checkers + bank, full lifecycle in one run.
    let faithful = base.mechanism(Mechanism::faithful()).build();
    let run = faithful.run(7);
    println!(
        "\nfaithful FPSS: green-lighted: {}, restarts: {}, detected: {}",
        run.green_lighted(),
        run.restarts(),
        run.detected
    );
    println!(
        "faithful traffic: {} msgs / {} bytes",
        run.stats.total_msgs(),
        run.stats.total_bytes()
    );

    let overhead = measure_overhead(faithful.topology(), faithful.costs(), faithful.traffic(), 7);
    println!("\nthe price of faithfulness (checker redundancy + checkpoints):");
    println!("  {overhead}");

    // Utility summary: who earned what.
    println!("\nrealized utilities (faithful run):");
    let mut ranked: Vec<(NodeId, Money)> = faithful
        .topology()
        .nodes()
        .map(|id| (id, run.utilities[id.index()]))
        .collect();
    ranked.sort_by_key(|&(_, u)| std::cmp::Reverse(u));
    for (id, u) in ranked.iter().take(5) {
        println!("  {id}: {u}");
    }
    println!(
        "  ... ({} nodes total, all strictly positive: {})",
        n,
        run.utilities.iter().all(|u| u.is_positive())
    );
}
