//! Detection latency under congestion: how long the faithful mechanism
//! takes to settle — and what it concludes — when the network itself
//! misbehaves.
//!
//! Runs a 5-ring faithful scenario three ways: ideal network,
//! fair-shared 1 MB/s links ([`NetModel::congested`]), and the same
//! congested links dropping 1% of messages. One row per profile, honest
//! and with node 1 tampering with re-flooded cost declarations (an
//! *observable* protocol deviation — on a ring the tampered copy is the
//! victim's only source, so checkers must catch it).
//!
//! ```sh
//! cargo run --example congested_detection
//! ```

use specfaith::fpss::deviation::TamperCostFlood;
use specfaith::prelude::*;
use specfaith::scenario::NetModel;
use specfaith_core::id::NodeId;

fn row(label: &str, run: &RunReport) {
    println!(
        "{label:<31} {:>9} {:>8} {:>7} {:>8} {:>8} {:>6}",
        run.final_time.micros(),
        run.detected,
        run.restarts(),
        run.dropped(),
        run.rescheduled(),
        if run.green_lighted() { "yes" } else { "no" },
    );
}

fn main() {
    let build = |model: NetModel| {
        Scenario::builder()
            .topology(TopologySource::Ring(5))
            .costs(CostModel::Explicit(CostVector::from_values(&[
                2, 1, 1, 1, 1,
            ])))
            .traffic(TrafficModel::single_by_index(2, 4, 4))
            .mechanism(Mechanism::faithful())
            .network(model)
            .build()
    };

    let profiles = [
        ("ideal", NetModel::Ideal),
        ("congested", NetModel::congested()),
        ("congested + 1% loss", NetModel::congested().with_loss(10)),
    ];

    println!(
        "{:<31} {:>9} {:>8} {:>7} {:>8} {:>8} {:>6}",
        "profile", "settle_us", "detected", "restart", "dropped", "resched", "green"
    );
    for (name, model) in profiles {
        let scenario = build(model);
        row(&format!("{name}, honest"), &scenario.run(1));
        let deviant = scenario.run_with_deviant(
            NodeId::new(1),
            Box::new(TamperCostFlood { multiplier: 100 }),
            1,
        );
        row(&format!("{name}, 1 tampers"), &deviant);
    }

    println!(
        "\nCongestion stretches settle time (fair-shared links re-schedule\n\
         hundreds of in-flight deliveries) but never changes a verdict:\n\
         the tamperer is caught in every profile. Loss is different — on\n\
         a ring there is no flood redundancy, so even the honest run\n\
         false-flags once a construction message drops, and its restarts\n\
         dominate the tamper signal (the paper's \u{a7}5 caveat about\n\
         non-rational failures, reproduced under 1% loss)."
    );
}
