//! Streaming mode: checkpoint a converged network, walk one cost change
//! through incremental reconvergence, and compare against a cold rerun.
//!
//! A deployed FPSS overlay converges once and then lives with drift —
//! transit providers re-declare costs, routers die and come back. The
//! one-shot engines rebuild the world for every change; the streaming
//! engine re-enters the previous fixed point and converges only what the
//! change actually touched (the epoch-gated `CostUpdate` flood plus
//! destination-scoped recomputes), then re-verifies against the
//! centralized VCG reference using a route cache *seeded* from the
//! previous fixed point's.
//!
//! ```sh
//! cargo run --example streaming_updates
//! ```

use specfaith::prelude::*;

fn main() {
    let names = ["A", "B", "C", "D", "Z", "X"];
    let name = |id: NodeId| names[id.index()];
    let net = figure1();

    // 1. Checkpoint: converge Figure 1 once and hold the fixed point.
    let scenario = Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::Single {
            src: net.x,
            dst: net.z,
            packets: 10,
        })
        .build();
    let mut session = scenario.stream_session(42);
    println!("== Checkpoint: Figure 1 converged ==");
    println!("  declared costs: {:?}", declared_line(&session, name));
    println!("  tables: {}", session.tables_fingerprint());

    // 2. One event: C's transit cost jumps from 1 to 9 — enough to move
    //    the X -> Z lowest-cost path off C and re-price its competitors.
    println!("\n== Stream event: C re-declares cost 1 -> 9 ==");
    let outcome = session.apply_event(&TopologyEvent::NodeCost {
        node: net.c,
        cost: 9,
    });
    println!("  status: {:?}", outcome.status);
    println!(
        "  reconverged in {} messages, {} µs{}",
        outcome.messages,
        outcome.micros,
        match outcome.rounds {
            Some(rounds) => format!(" ({rounds} flood rounds)"),
            None => String::new(),
        }
    );
    println!(
        "  re-verified against the centralized reference: {:?}",
        outcome.verified
    );
    println!("  tables: {}", session.tables_fingerprint());

    // 3. The correctness pin, by hand: a cold scenario built with C's new
    //    cost converges to byte-identical tables.
    let cold = Scenario::builder()
        .topology(TopologySource::Figure1)
        .costs(CostModel::Explicit(
            net.costs.with_cost(net.c, Cost::new(9)),
        ))
        .traffic(TrafficModel::Single {
            src: net.x,
            dst: net.z,
            packets: 10,
        })
        .build();
    let cold_session = cold.stream_session(7);
    println!("\n== Cold rerun with C = 9 ==");
    println!("  tables: {}", cold_session.tables_fingerprint());
    assert_eq!(
        session.tables_fingerprint(),
        cold_session.tables_fingerprint(),
        "streamed tables must be byte-identical to the cold fixed point"
    );
    println!("  byte-identical to the streamed fixed point ✓");

    // 4. Release execution against the updated tables and settle.
    let report = session.finish();
    println!("\n== Execution on the updated tables ==");
    println!("  utilities:");
    for id in scenario.topology().nodes() {
        println!("    {}: {}", name(id), report.utilities[id.index()]);
    }
}

fn declared_line(session: &StreamSession, name: impl Fn(NodeId) -> &'static str) -> Vec<String> {
    session
        .declared()
        .iter()
        .map(|(id, c)| format!("{}={}", name(id), c))
        .collect()
}
