//! Example 1 from the paper, end to end.
//!
//! "In Figure 1, path X-D-C-Z is the lowest cost path between X and Z; if
//! C declared a cost of 5, X-A-Z would become the X to Z LCP. C can
//! benefit from this manipulation [under naive pricing] ... FPSS seeks a
//! pricing scheme that is dominant strategy incentive compatible."
//!
//! This example sweeps C's declared cost and shows:
//!
//! 1. under **naive pricing** (pay each transit its declared cost), lying
//!    upward is profitable — the manipulation the paper opens with;
//! 2. under **VCG pricing**, no declaration beats the truth
//!    (strategyproofness);
//! 3. in the **plain distributed FPSS**, C can still cheat with
//!    *computation* deviations (dropping packets, underreporting);
//! 4. in the **faithful extension**, every one of those is caught and
//!    unprofitable.
//!
//! The plain and faithful runs differ by exactly one builder call — the
//! [`Mechanism`] — which is the point of the unified scenario API.
//!
//! ```sh
//! cargo run --example figure1_manipulation
//! ```

use specfaith::fpss::deviation::{DropTransitPackets, UnderreportPayments};
use specfaith::fpss::pricing::vcg_payment;
use specfaith::graph::cache::RouteCache;
use specfaith::prelude::*;

fn main() {
    let net = figure1();
    let true_c = net.costs.cost(net.c).value() as i64;
    // Traffic the paper discusses: X->Z (which C loses by lying) and D->Z
    // (which C keeps and would like to overcharge).
    let flows = [(net.x, net.z, 10u64), (net.d, net.z, 10u64)];

    println!("== Sweep of C's declared cost (true cost = {true_c}) ==");
    println!(
        "{:>8} {:>10} {:>12} {:>12}",
        "declared", "on X-Z LCP", "naive util", "VCG util"
    );
    for declared in 0..=8u64 {
        let lied = net.costs.with_cost(net.c, Cost::new(declared));
        let routes = RouteCache::shared(&net.topology, &lied);
        let mut naive = 0i64;
        let mut vcg = 0i64;
        let mut on_xz = false;
        for &(src, dst, packets) in &flows {
            let path = routes.path(src, dst).expect("biconnected");
            if !path.transit_nodes().contains(&net.c) {
                continue;
            }
            if src == net.x {
                on_xz = true;
            }
            // Naive: paid the declared cost; VCG: paid the pivot price.
            naive += (declared as i64 - true_c) * packets as i64;
            let p = vcg_payment(&net.topology, &lied, src, dst, net.c).expect("on LCP");
            vcg += (p.value() - true_c) * packets as i64;
        }
        println!(
            "{declared:>8} {:>10} {naive:>12} {vcg:>12}",
            if on_xz { "yes" } else { "no" }
        );
    }
    println!("(naive utility peaks at a lie; VCG utility is maximized at the truth)");

    // The distributed story: plain FPSS still falls to §4.3 manipulations.
    let traffic = TrafficModel::Flows(
        flows
            .iter()
            .map(|&(src, dst, packets)| Flow { src, dst, packets })
            .collect(),
    );
    // C (a transit) drops packets; X (a payer) underreports what it owes.
    type MakeStrategy = fn() -> Box<dyn RationalStrategy>;
    let cases: [(&str, NodeId, MakeStrategy); 2] = [
        ("C drops transit packets", net.c, || {
            Box::new(DropTransitPackets)
        }),
        ("X underreports payments", net.x, || {
            Box::new(UnderreportPayments { keep_percent: 0 })
        }),
    ];

    let base_scenario = Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(traffic);

    let plain = base_scenario.clone().mechanism(Mechanism::Plain).build();
    let plain_faithful = plain.run(1);
    println!("\n== Plain FPSS (no checkers, no bank) ==");
    for (label, deviant, make) in &cases {
        let run = plain.run_with_deviant(*deviant, make(), 1);
        let gain = run.utilities[deviant.index()] - plain_faithful.utilities[deviant.index()];
        println!("  {label}: gain {gain} (PROFITABLE — plain FPSS is not faithful)");
        assert!(gain.is_positive());
    }

    let faithful = base_scenario.mechanism(Mechanism::faithful()).build();
    let base = faithful.run(1);
    println!("\n== Faithful extension (checkers + bank) ==");
    for (label, deviant, make) in &cases {
        let run = faithful.run_with_deviant(*deviant, make(), 1);
        let gain = run.utilities[deviant.index()] - base.utilities[deviant.index()];
        println!(
            "  {label}: gain {gain}, detected: {} (deviation strictly loses)",
            run.detected
        );
        assert!(gain.is_negative() && run.detected);
    }
}
