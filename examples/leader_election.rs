//! The paper's §3 motivating scenario: leader election among rational
//! nodes, made faithful with the framework's tools.
//!
//! "The designer wants the most powerful node to be selected and specifies
//! an algorithm where each node is to submit its true computation power...
//! By truthfully revealing a node's computational power and following the
//! distributed election protocol, a node is in danger of being tasked with
//! a cpu-intensive chore."
//!
//! The fix is a Vickrey (second-price) procurement: each node declares its
//! *cost of serving* (inverse of power); the cheapest node wins and is
//! compensated at the second-lowest declared cost, making truthful
//! declaration a dominant strategy — which the strategyproofness tester
//! certifies over a grid of profiles and misreports.
//!
//! ```sh
//! cargo run --example leader_election
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specfaith::core::mechanism::{check_strategyproof, DirectMechanism, MisreportGrid};
use specfaith::core::vcg::SecondPriceSelection;
use specfaith::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 8;
    let mech = SecondPriceSelection::new(n);

    // A concrete election: serving costs (lower = more powerful).
    let costs: Vec<Money> = (0..n).map(|_| Money::new(rng.gen_range(5..60))).collect();
    println!("declared serving costs: {costs:?}");
    let outcome = mech.outcome(&costs);
    println!(
        "elected leader: node {} (cost {}), compensated {} (second price)",
        outcome.allocation, costs[outcome.allocation], outcome.payments[outcome.allocation]
    );
    let winner_utility = mech.utility(outcome.allocation, &costs[outcome.allocation], &costs);
    println!("leader's utility: {winner_utility} (compensation − true cost ≥ 0)");

    // Why would anyone tell the truth? Certify strategyproofness over
    // random profiles and a misreport grid — the naive "submit your power,
    // highest wins, no payments" scheme fails this immediately.
    let profiles: Vec<Vec<Money>> = (0..50)
        .map(|_| (0..n).map(|_| Money::new(rng.gen_range(0..100))).collect())
        .collect();
    let report = check_strategyproof(&mech, &profiles, &MisreportGrid::standard());
    println!(
        "\nstrategyproofness tester: {} checks, violations: {}",
        report.checks,
        report.violations.len()
    );
    assert!(report.is_strategyproof());

    // Contrast: the naive election (highest declared power wins, no
    // compensation) modeled as "lowest declared cost serves for free".
    struct NaiveElection {
        n: usize,
    }
    impl DirectMechanism for NaiveElection {
        type Type = Money;
        type Outcome = usize;
        fn num_agents(&self) -> usize {
            self.n
        }
        fn outcome(&self, reports: &[Money]) -> usize {
            reports
                .iter()
                .enumerate()
                .min_by_key(|(i, c)| (**c, *i))
                .map(|(i, _)| i)
                .expect("nonempty")
        }
        fn payments(&self, _reports: &[Money], _outcome: &usize) -> Vec<Money> {
            vec![Money::ZERO; self.n]
        }
        fn valuation(&self, agent: usize, true_type: &Money, outcome: &usize) -> Money {
            if *outcome == agent {
                -*true_type
            } else {
                Money::ZERO
            }
        }
    }
    let naive = NaiveElection { n };
    let naive_report = check_strategyproof(&naive, &profiles, &MisreportGrid::standard());
    println!(
        "naive election tester: {} checks, violations: {} (rational nodes lie to dodge the chore)",
        naive_report.checks,
        naive_report.violations.len()
    );
    assert!(!naive_report.is_strategyproof());
}
