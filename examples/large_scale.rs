//! Large-n sparse workloads: the n ≥ 1024 presets, run-scoped caches,
//! and agent-sampled sweeps.
//!
//! ```sh
//! cargo run --release --example large_scale [n]
//! ```
//!
//! Runs one honest scale-free instance at `n` (default 256 so the
//! example finishes in seconds; pass 1024 for the CI smoke size),
//! verifies convergence against the destination-sampled centralized VCG
//! reference, then probes faithfulness with a two-agent sampled sweep —
//! every sampled cell byte-identical to the corresponding cell of the
//! full `n × catalog` grid.

use specfaith::scenario::{Catalog, ScenarioBuilder};
use specfaith_fpss::deviation::MisreportCost;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);

    let scenario = ScenarioBuilder::large_scale_free(n)
        .instance_seed(7)
        .build();
    println!(
        "scale-free n={n}: {} edges, biconnected={}",
        scenario.topology().num_edges(),
        scenario.topology().is_biconnected()
    );

    let started = Instant::now();
    let run = scenario.run(1);
    println!(
        "honest run: {:?}, {} msgs, truncated={}, tables_match={:?}",
        started.elapsed(),
        run.stats.total_msgs(),
        run.truncated,
        run.tables_match_centralized()
    );
    assert_eq!(run.tables_match_centralized(), Some(true));

    // Agent-sampled sweep: one misreport deviation on a seed-clique hub
    // and on the latest attachment. The full grid would be n × catalog
    // cells; the sampled cells are byte-identical to the full grid's.
    let catalog = Catalog::from_factory(|_| vec![Box::new(MisreportCost { delta: 5 })]);
    let agents = [0usize, n - 1];
    let started = Instant::now();
    let report = scenario.sweep_sampled(&[1], &catalog, &agents);
    println!(
        "sampled sweep ({} cells): {:?}",
        1 + agents.len(),
        started.elapsed()
    );
    for (seed, per_seed) in &report.per_seed {
        for outcome in &per_seed.outcomes {
            println!(
                "  seed {seed} agent {:>4} {}: faithful {} vs deviant {} — {}",
                outcome.agent,
                outcome.deviation.name(),
                outcome.faithful_utility,
                outcome.deviant_utility,
                if outcome.deviant_utility > outcome.faithful_utility {
                    "PROFITABLE (violation)"
                } else {
                    "not profitable"
                }
            );
        }
    }
}
