//! Full faithfulness audit: the paper's proof obligations (Proposition 2)
//! checked empirically over several cost profiles, assembled into a
//! [`FaithfulnessCertificate`].
//!
//! ```sh
//! cargo run --example deviation_audit
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use specfaith::core::mechanism::{check_strategyproof, MisreportGrid};
use specfaith::core::vcg::VcgMechanism;
use specfaith::fpss::pricing::RoutingProblem;
use specfaith::prelude::*;

fn main() {
    let net = figure1();
    let traffic = vec![
        Flow {
            src: net.x,
            dst: net.z,
            packets: 5,
        },
        Flow {
            src: net.d,
            dst: net.z,
            packets: 5,
        },
        Flow {
            src: net.z,
            dst: net.x,
            packets: 3,
        },
    ];

    // Leg 1 of Proposition 2: the corresponding centralized mechanism is
    // strategyproof.
    let flows: Vec<(NodeId, NodeId, u64)> =
        traffic.iter().map(|f| (f.src, f.dst, f.packets)).collect();
    let mech = VcgMechanism::new(RoutingProblem::new(net.topology.clone(), flows));
    let mut rng = StdRng::seed_from_u64(11);
    let mut profiles = vec![net.costs.as_slice().to_vec()];
    for _ in 0..6 {
        profiles.push(CostVector::random(6, 0, 30, &mut rng).as_slice().to_vec());
    }
    let sp = check_strategyproof(&mech, &profiles, &MisreportGrid::standard());
    println!(
        "centralized FPSS strategyproof: {} ({} checks)",
        sp.is_strategyproof(),
        sp.checks
    );

    // Legs 2–3: strong-CC and strong-AC per phase, via the deviation sweep
    // over several type profiles (the "for all θ" quantifier, sampled).
    // Each profile is the same scenario with one builder knob changed.
    let catalog = Catalog::standard();
    let scenario_for = |costs: CostVector| {
        Scenario::builder()
            .topology(TopologySource::Figure1)
            .costs(CostModel::Explicit(costs))
            .traffic(TrafficModel::Flows(traffic.clone()))
            .mechanism(Mechanism::faithful())
            .build()
    };
    let mut suite = EquilibriumSuite::new();
    suite.push(
        "figure1-costs",
        scenario_for(net.costs.clone()).equilibrium_report(1, &catalog),
    );
    for (i, profile) in profiles.iter().skip(1).take(2).enumerate() {
        let costs: CostVector = profile.iter().copied().collect();
        suite.push(
            format!("random-costs-{i}"),
            scenario_for(costs).equilibrium_report(1, &catalog),
        );
    }
    println!("\n{suite}");

    let certificate = FaithfulnessCertificate::assemble(sp.is_strategyproof(), &suite);
    println!("{certificate}");
    assert!(certificate.is_faithful(), "Theorem 1 reproduced");
    println!("Theorem 1 reproduced: the extended FPSS specification is a faithful");
    println!("implementation of the VCG-based shortest-path interdomain routing mechanism.");
}
