//! Ablation of the DATA3* identity-tag extension (§4.2).
//!
//! The paper extends FPSS's pricing table with an "identity tag" naming
//! the node(s) that triggered each entry, precisely so that spoofed
//! pricing information "will create an inconsistency in the identity tag
//! information in [DATA3*] … caught by [BANK2]". This test demonstrates
//! the extension is load-bearing: a forgery that leaves every *price*
//! intact and only fabricates provenance
//!
//! * changes the DATA3* (tagged) hash — caught, and
//! * does **not** change the original DATA3 (untagged) hash — the
//!   original FPSS table format would let it pass the bank unnoticed.

use specfaith::core::actions::{DeviationSurface, ExternalActionKind};
use specfaith::core::equilibrium::DeviationSpec;
use specfaith::fpss::msg::PriceRow;
use specfaith::fpss::state::{PriceEntry, PricingTable};
use specfaith::prelude::*;

#[test]
fn tag_only_forgery_is_invisible_without_tags_in_the_hash() {
    let mut honest = PricingTable::new();
    honest.insert(
        NodeId::new(4),
        NodeId::new(2),
        PriceEntry {
            price: Money::new(105),
            tags: [NodeId::new(1)].into_iter().collect(),
        },
    );
    let mut forged = PricingTable::new();
    forged.insert(
        NodeId::new(4),
        NodeId::new(2),
        PriceEntry {
            price: Money::new(105),                       // identical price
            tags: [NodeId::new(9)].into_iter().collect(), // fabricated origin
        },
    );
    // The paper's DATA3* hash distinguishes them…
    assert_ne!(honest.digest(), forged.digest());
    // …the original FPSS DATA3 hash would not.
    assert_eq!(honest.digest_without_tags(), forged.digest_without_tags());
}

/// A pure tag forgery in the live protocol: announced prices are honest,
/// announced tags are fabricated.
#[derive(Debug)]
struct ForgeTagsOnly;

impl RationalStrategy for ForgeTagsOnly {
    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new(
            "forge-tags-only",
            DeviationSurface::only(ExternalActionKind::Computation),
        )
        .in_phase("construction-2")
    }

    fn announce_pricing(&mut self, me: NodeId, honest: Vec<PriceRow>) -> Vec<PriceRow> {
        honest
            .into_iter()
            .map(|row| PriceRow {
                tags: [me].into_iter().collect(), // a node is never its own checker
                ..row
            })
            .collect()
    }
}

#[test]
fn live_tag_forgery_is_caught_by_bank2() {
    let net = figure1();
    let scenario = Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::Flows(vec![
            Flow {
                src: net.x,
                dst: net.z,
                packets: 4,
            },
            Flow {
                src: net.d,
                dst: net.z,
                packets: 4,
            },
        ]))
        .mechanism(Mechanism::faithful())
        .build();
    let run = scenario.run_with_deviant(net.d, Box::new(ForgeTagsOnly), 1);
    assert!(run.detected, "tagged hashes expose provenance forgery");
    assert!(!run.green_lighted());
    // And it gains nothing relative to faithfulness.
    let faithful = scenario.run(1);
    assert!(run.utilities[net.d.index()] <= faithful.utilities[net.d.index()]);
}
