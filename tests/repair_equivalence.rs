//! The avoid-tree repair equivalence suite (CI's named repair gate).
//!
//! Pins the exactness contract of `specfaith_graph::repair`: repaired
//! trees — `d_{G−k}` removal repairs and one-node cost-change repairs in
//! both directions — are element-for-element identical to fresh Dijkstra,
//! across every topology family the generators produce (star, grid,
//! scale-free, random biconnected), and repair-seeded sweep cells are
//! byte-identical to cold-built ones all the way up through the scenario
//! engine.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use specfaith::prelude::*;
use specfaith::scenario::{cell_seed, Catalog};
use specfaith_fpss::deviation::MisreportCost;
use specfaith_graph::cache::RouteCache;
use specfaith_graph::generators::{grid, random_biconnected, scale_free, star};
use specfaith_graph::lcp::{lcp_tree, lcp_tree_avoiding};
use specfaith_graph::repair::{repair_avoiding, repair_cost_change};
use specfaith_graph::Topology;

/// One topology per generator family, sized from `n`. The star's hub is a
/// cut vertex, so removal repair must reproduce unreachable (`None`)
/// entries; the others are biconnected.
fn family_topology(family: usize, n: usize, rng: &mut StdRng) -> Topology {
    match family % 4 {
        0 => star(n.max(3)),
        1 => grid(3, n.max(6) / 3),
        2 => scale_free(n.max(5), 2, rng),
        _ => random_biconnected(n.max(5), n / 2, rng),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `repair(base_tree, k)` ≡ `lcp_tree_avoiding(k)` for every
    /// `(src, avoid)` pair, across all generator families.
    #[test]
    fn removal_repair_equals_fresh_avoid_tree(
        seed in 0u64..400,
        n in 6usize..16,
        family in 0usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = family_topology(family, n, &mut rng);
        let costs = CostVector::random(topo.num_nodes(), 0, 15, &mut rng);
        for src in topo.nodes() {
            let base = lcp_tree(&topo, &costs, src);
            for avoid in topo.nodes() {
                if avoid == src {
                    continue;
                }
                prop_assert_eq!(
                    repair_avoiding(&topo, &costs, &base, src, avoid),
                    lcp_tree_avoiding(&topo, &costs, src, Some(avoid))
                );
            }
        }
    }

    /// One-node cost-change repair ≡ a fresh tree under the new vector,
    /// for increases, decreases, and the no-op edge cases alike.
    #[test]
    fn cost_change_repair_equals_fresh_tree(
        seed in 0u64..400,
        n in 6usize..16,
        family in 0usize..4,
        changed_pick in 0usize..16,
        new_cost in 0u64..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = family_topology(family, n, &mut rng);
        let costs = CostVector::random(topo.num_nodes(), 0, 15, &mut rng);
        let changed = NodeId::from_index(changed_pick % topo.num_nodes());
        let old_cost = costs.cost(changed);
        let lied = costs.with_cost(changed, Cost::new(new_cost));
        for src in topo.nodes() {
            let base = lcp_tree(&topo, &costs, src);
            prop_assert_eq!(
                repair_cost_change(&topo, &lied, &base, src, changed, old_cost),
                lcp_tree(&topo, &lied, src)
            );
        }
    }

    /// A scope-seeded cache (trees repaired from a pinned baseline) is
    /// answer-identical to a cold cache for the same misreport vector —
    /// plain trees and avoid trees both.
    #[test]
    fn seeded_caches_equal_cold_caches(
        seed in 0u64..200,
        n in 6usize..14,
        delta in -10i64..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = random_biconnected(n, n / 2, &mut rng);
        let costs = CostVector::random(n, 1, 12, &mut rng);
        let changed = NodeId::from_index(seed as usize % n);
        let declared = costs.cost(changed).value().saturating_add_signed(delta);
        let lied = costs.with_cost(changed, Cost::new(declared));
        let scope = CacheScope::unbounded();
        let _ = scope.pin(&topo, &costs);
        let seeded = scope.cache(&topo, &lied);
        let cold = RouteCache::new(topo.clone(), lied.clone());
        prop_assert_eq!(seeded.is_seeded(), declared != costs.cost(changed).value());
        for src in topo.nodes() {
            prop_assert_eq!(seeded.tree(src), cold.tree(src));
            for avoid in topo.nodes() {
                if avoid == src {
                    continue;
                }
                prop_assert_eq!(
                    &seeded.tree_avoiding(src, avoid)[..],
                    &cold.tree_avoiding(src, avoid)[..]
                );
            }
        }
    }
}

/// Repair-seeded sweep cells are byte-identical to cold-built cells: the
/// full scenario-engine sweep (whose misreport cells repair the pinned
/// honest baseline's caches) reproduces exactly the utilities and
/// detection flags of per-cell runs on an unseeded scope.
#[test]
fn repair_seeded_sweep_cells_match_cold_built_cells() {
    let scenario = Scenario::builder()
        .topology(specfaith::scenario::TopologySource::RandomBiconnected {
            n: 12,
            extra_edges: 4,
        })
        .costs(specfaith::scenario::CostModel::Random { lo: 1, hi: 9 })
        .traffic(specfaith::scenario::TrafficModel::single_by_index(0, 7, 2))
        .instance_seed(17)
        .build();
    let n = scenario.num_nodes();
    // One overreport, one underreport: both repair directions in play.
    let deltas = [5i64, -1];
    let catalog = Catalog::from_factory(move |_| {
        deltas
            .iter()
            .map(|&delta| Box::new(MisreportCost { delta }) as _)
            .collect()
    });
    let seeded_scope = CacheScope::unbounded();
    let report = scenario.sweep_scoped(&[9], &catalog, &seeded_scope);
    assert_eq!(
        seeded_scope.seeded(),
        deltas.len() * n,
        "every misreport cell's cache must have been repair-seeded"
    );
    let per_seed = &report.per_seed[0].1;
    assert_eq!(per_seed.outcomes.len(), deltas.len() * n);
    for outcome in &per_seed.outcomes {
        // Cold rebuild of the same cell: fresh unbounded scope, no pinned
        // baseline, so every cache is built by fresh Dijkstra.
        let cold_scope = CacheScope::unbounded();
        let cold = scenario.with_route_scope(cold_scope.clone());
        let deviation_index = deltas
            .iter()
            .position(|&delta| outcome.deviation.name() == format!("misreport-cost({delta:+})"))
            .expect("outcome names a swept deviation");
        let rerun = cold.run_with_deviant(
            NodeId::from_index(outcome.agent),
            Box::new(MisreportCost {
                delta: deltas[deviation_index],
            }),
            cell_seed(9, outcome.agent as u64, deviation_index as u64),
        );
        assert_eq!(
            cold_scope.seeded(),
            0,
            "the reference cell must be cold-built"
        );
        assert_eq!(
            outcome.deviant_utility, rerun.utilities[outcome.agent],
            "agent {} deviation {}: seeded and cold cells must agree",
            outcome.agent, deviation_index
        );
        assert_eq!(outcome.detected, rerun.detected);
    }
}
