//! The sweep determinism guarantee: the parallel deviation sweep is
//! **byte-identical** to the serial one, for any rayon thread count.
//!
//! Each sweep cell derives its seed purely from `(base seed, agent,
//! deviation)` and every cell is an independent deterministic simulation,
//! so scheduling cannot leak into results. These tests pin that contract
//! with exact `assert_eq!` over the full report contents (utilities,
//! detection flags, specs — `EquilibriumReport` equality is field-wise).

use rayon::ThreadPoolBuilder;
use specfaith::prelude::*;

fn figure1_scenario() -> Scenario {
    let net = figure1();
    Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::Flows(vec![
            Flow {
                src: net.x,
                dst: net.z,
                packets: 4,
            },
            Flow {
                src: net.d,
                dst: net.z,
                packets: 4,
            },
        ]))
        .mechanism(Mechanism::faithful())
        .build()
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let scenario = figure1_scenario();
    let catalog = Catalog::standard();
    let seeds = [42u64, 43, 44];

    let serial = scenario.sweep_serial(&seeds, &catalog);
    let parallel = scenario.sweep(&seeds, &catalog);

    assert_eq!(serial, parallel, "parallel sweep must equal serial sweep");
    // Shape sanity: per seed, 6 nodes × 13 deviations.
    assert_eq!(serial.per_seed.len(), 3);
    for (_, report) in &serial.per_seed {
        assert_eq!(report.outcomes.len(), 6 * 13);
    }
    assert!(serial.is_ex_post_nash(), "{serial}");
}

#[test]
fn sweep_is_invariant_across_thread_counts() {
    let scenario = figure1_scenario();
    let catalog = Catalog::standard();
    let seeds = [7u64, 8];

    let reference = scenario.sweep_serial(&seeds, &catalog);
    for threads in [1usize, 4] {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let swept = pool.install(|| scenario.sweep(&seeds, &catalog));
        assert_eq!(
            swept, reference,
            "sweep under a {threads}-thread pool diverged from serial"
        );
    }
}

#[test]
fn plain_mechanism_sweeps_are_deterministic_too() {
    let net = figure1();
    let scenario = Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::Single {
            src: net.x,
            dst: net.z,
            packets: 4,
        })
        .mechanism(Mechanism::Plain)
        .build();
    let catalog = Catalog::standard();
    let seeds = [1u64, 2];
    assert_eq!(
        scenario.sweep(&seeds, &catalog),
        scenario.sweep_serial(&seeds, &catalog)
    );
}

#[test]
fn repeated_parallel_sweeps_agree_with_themselves() {
    let scenario = figure1_scenario();
    let catalog = Catalog::standard();
    let first = scenario.sweep(&[9], &catalog);
    let second = scenario.sweep(&[9], &catalog);
    assert_eq!(first, second);
}

#[test]
fn run_scoped_caches_are_byte_identical_to_the_global_registry_in_both_engines() {
    // The tentpole pin at the scenario level: sweeping against a fresh
    // run-scoped CacheScope (the default), an explicit caller scope, the
    // process-wide registry, and the dense serial reference all produce
    // the same report — for both mechanisms.
    let catalog = Catalog::standard();
    let seeds = [11u64];
    for mechanism in [Mechanism::Plain, Mechanism::faithful()] {
        let scenario = Scenario::builder()
            .topology(TopologySource::Figure1)
            .traffic(TrafficModel::single_by_index(5, 4, 4))
            .mechanism(mechanism.clone())
            .build();
        let reference = scenario.sweep_serial(&seeds, &catalog);
        let run_scoped = scenario.sweep(&seeds, &catalog);
        assert_eq!(run_scoped, reference, "{mechanism:?}: run-scoped");
        let explicit = CacheScope::unbounded();
        assert_eq!(
            scenario.sweep_scoped(&seeds, &catalog, &explicit),
            reference,
            "{mechanism:?}: explicit scope"
        );
        assert!(explicit.misses() > 0, "the explicit scope served the sweep");
        assert_eq!(
            scenario
                .with_route_scope(CacheScope::global())
                .sweep_scoped(&seeds, &catalog, &CacheScope::global()),
            reference,
            "{mechanism:?}: process-wide registry"
        );
    }
}
