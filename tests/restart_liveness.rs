//! Phase liveness under the restart policy (experiment E9):
//!
//! * an honest network green-lights in one pass (no restarts);
//! * a *transiently* deviant node triggers a restart, after which the
//!   phase certifies and execution proceeds;
//! * a *persistent* deviant exhausts the restart budget and the mechanism
//!   halts — the "does not progress" punishment.

use specfaith::core::actions::{DeviationSurface, ExternalActionKind};
use specfaith::core::equilibrium::DeviationSpec;
use specfaith::fpss::deviation::SpoofShortRoutes;
use specfaith::fpss::msg::RouteRow;
use specfaith::prelude::*;

/// Spoofs routing announcements during the first construction attempt
/// only, then behaves. Attempts are counted via `declare_cost`, which the
/// node calls exactly once per construction start (initial + each
/// restart).
#[derive(Debug)]
struct TransientSpoof {
    attempts: u32,
    inner: SpoofShortRoutes,
}

impl TransientSpoof {
    fn new() -> Self {
        TransientSpoof {
            attempts: 0,
            inner: SpoofShortRoutes,
        }
    }
}

impl RationalStrategy for TransientSpoof {
    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new(
            "transient-spoof",
            DeviationSurface::only(ExternalActionKind::Computation),
        )
        .in_phase("construction-2")
    }

    fn declare_cost(&mut self, true_cost: Cost) -> Cost {
        self.attempts += 1;
        true_cost
    }

    fn announce_routing(&mut self, me: NodeId, honest: Vec<RouteRow>) -> Vec<RouteRow> {
        if self.attempts <= 1 {
            self.inner.announce_routing(me, honest)
        } else {
            honest
        }
    }
}

fn scenario_with(max_restarts: u32) -> (specfaith::graph::generators::Figure1, Scenario) {
    let net = figure1();
    let scenario = Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::Single {
            src: net.x,
            dst: net.z,
            packets: 4,
        })
        .mechanism(Mechanism::Faithful {
            epsilon: Money::new(1),
            max_restarts,
            progress_value: Money::new(1_000_000),
            settlement: Default::default(),
        })
        .build();
    (net, scenario)
}

fn scenario() -> (specfaith::graph::generators::Figure1, Scenario) {
    scenario_with(2)
}

#[test]
fn honest_network_certifies_first_try() {
    let (_, scenario) = scenario();
    let run = scenario.run(1);
    assert_eq!(run.restarts(), 0);
    assert!(run.green_lighted());
}

#[test]
fn transient_deviant_costs_one_restart_then_proceeds() {
    let (net, scenario) = scenario();
    let run = scenario.run_with_deviant(net.c, Box::new(TransientSpoof::new()), 1);
    assert_eq!(run.restarts(), 1, "first attempt mismatches, second passes");
    assert!(run.green_lighted(), "the repaired run certifies");
    assert!(!run.halted());
    assert!(run.detected, "the restart is visible enforcement");
}

#[test]
fn transient_deviation_still_does_not_profit() {
    let (net, scenario) = scenario();
    let faithful = scenario.run(1);
    let run = scenario.run_with_deviant(net.c, Box::new(TransientSpoof::new()), 1);
    assert!(
        run.utilities[net.c.index()] <= faithful.utilities[net.c.index()],
        "transient spoofing gains nothing: {} vs {}",
        run.utilities[net.c.index()],
        faithful.utilities[net.c.index()]
    );
}

#[test]
fn persistent_deviant_halts_after_budget() {
    let (net, scenario) = scenario_with(2);
    let run = scenario.run_with_deviant(net.c, Box::new(SpoofShortRoutes), 1);
    assert_eq!(run.restarts(), 2, "budget fully spent");
    assert!(run.halted());
    assert!(!run.green_lighted());
    // Halting zeroes everyone's utility — the deviant forfeits its whole
    // faithful surplus.
    assert!(run.utilities.iter().all(|u| *u == Money::ZERO));
}

#[test]
fn restart_budget_is_configurable() {
    let (net, strict) = scenario_with(0);
    let run = strict.run_with_deviant(net.c, Box::new(SpoofShortRoutes), 1);
    assert_eq!(run.restarts(), 0);
    assert!(run.halted(), "zero budget halts immediately on mismatch");
}
