//! Network-model integration tests: the Ideal-model compatibility pin,
//! throughput/contention behavior, and faithful-mechanism detection under
//! loss, partitions, and churn.
//!
//! Two kinds of guarantee live here:
//!
//! 1. **Byte-identical compat** — [`NetModel::Ideal`] with no dynamics is
//!    the default and must reproduce the pre-network-subsystem engine
//!    exactly, for both engines, down to message and byte totals. The
//!    goldens were captured on the commit *before* the network subsystem
//!    landed and must never drift.
//! 2. **Documented failure modes** — the paper (§5, Discussion) warns
//!    that failures outside the rational-manipulation model (loss,
//!    partitions, churn) can be indistinguishable from manipulation.
//!    These tests pin exactly how the faithful mechanism reacts: when it
//!    recovers via restarts, when it falsely flags honest networks, and
//!    when it silently loses liveness.

use specfaith::fpss::deviation::MisreportCost;
use specfaith::prelude::*;
use specfaith_core::id::NodeId;

/// The n=64 preset shared by both golden pins.
fn preset_n64() -> ScenarioBuilder {
    Scenario::builder()
        .topology(TopologySource::RandomBiconnected {
            n: 64,
            extra_edges: 32,
        })
        .costs(CostModel::Random { lo: 1, hi: 20 })
        .traffic(TrafficModel::Random {
            flows: 8,
            max_packets: 3,
        })
        .instance_seed(2004)
}

/// The Figure-1 faithful scenario used by the failure-mode probes.
fn figure1_faithful() -> ScenarioBuilder {
    let net = specfaith::graph::generators::figure1();
    Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::Flows(vec![
            Flow {
                src: net.x,
                dst: net.z,
                packets: 4,
            },
            Flow {
                src: net.d,
                dst: net.z,
                packets: 4,
            },
        ]))
        .mechanism(Mechanism::faithful())
}

fn util_checksum(run: &RunReport) -> i64 {
    run.utilities.iter().map(|u| u.value()).sum()
}

// ---------------------------------------------------------------------
// 1. Byte-identical Ideal pin
// ---------------------------------------------------------------------

/// Plain engine, n=64 preset, default (Ideal, no dynamics) network:
/// byte-identical to the pre-network-subsystem engine.
#[test]
fn ideal_plain_run_is_byte_identical_to_pre_network_goldens() {
    let run = preset_n64().build().run(7);
    assert_eq!(util_checksum(&run), 1_399_779);
    assert_eq!(run.stats.total_msgs(), 159_200);
    assert_eq!(run.stats.total_bytes(), 7_587_288);
    assert_eq!(run.delivered(), 159_200);
    assert_eq!(run.stats.timers_fired, 8);
    assert_eq!(run.tables_match_centralized(), Some(true));
    assert!(!run.detected);
    // The ideal default also touches none of the new machinery.
    assert_eq!(run.dropped(), 0);
    assert_eq!(run.rescheduled(), 0);
}

/// Faithful engine, n=64 preset, default network: byte-identical to the
/// pre-network-subsystem engine.
#[test]
fn ideal_faithful_run_is_byte_identical_to_pre_network_goldens() {
    let run = preset_n64()
        .mechanism(Mechanism::faithful())
        .reference_check(ReferenceCheck::Sampled { sources: 8 })
        .build()
        .run(7);
    assert_eq!(util_checksum(&run), 65_399_779);
    assert_eq!(run.stats.total_msgs(), 499_907);
    assert_eq!(run.stats.total_bytes(), 26_532_768);
    assert_eq!(run.delivered(), 499_907);
    assert_eq!(run.stats.timers_fired, 0);
    assert!(run.green_lighted());
    assert_eq!(run.restarts(), 0);
    assert_eq!(run.tables_match_centralized(), Some(true));
    assert!(!run.detected);
    assert_eq!(run.dropped(), 0);
    assert_eq!(run.rescheduled(), 0);
}

/// `.network(NetModel::Ideal)` is the default spelled out: both engines
/// produce identical reports with and without it.
#[test]
fn explicit_ideal_equals_the_default() {
    for mechanism in [Mechanism::Plain, Mechanism::faithful()] {
        let implicit = figure1_faithful().mechanism(mechanism.clone()).build();
        let explicit = figure1_faithful()
            .mechanism(mechanism)
            .network(NetModel::Ideal)
            .dynamics(Dynamics::new())
            .build();
        let a = implicit.run(1);
        let b = explicit.run(1);
        assert_eq!(a.utilities, b.utilities);
        assert_eq!(a.stats.total_msgs(), b.stats.total_msgs());
        assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
        assert_eq!(a.final_time, b.final_time);
        assert_eq!(a.detected, b.detected);
    }
}

// ---------------------------------------------------------------------
// 2. Throughput models
// ---------------------------------------------------------------------

/// Finite dedicated throughput delays the run but loses nothing and
/// changes no outcome: construction certifies, tables match, utilities
/// are the ideal run's.
#[test]
fn constant_throughput_delays_without_changing_outcomes() {
    let ideal = figure1_faithful().build().run(1);
    let constant = figure1_faithful()
        .network(NetModel::constant(1_000_000))
        .build()
        .run(1);
    assert!(constant.final_time > ideal.final_time);
    assert_eq!(constant.dropped(), 0);
    assert_eq!(constant.rescheduled(), 0, "dedicated links never contend");
    assert!(constant.green_lighted());
    assert!(!constant.detected);
    assert_eq!(constant.tables_match_centralized(), Some(true));
    assert_eq!(constant.utilities, ideal.utilities);
}

/// Fair-shared links under the construction flood actually contend: the
/// congested preset re-schedules thousands of in-flight deliveries, and
/// the protocol still converges to the certified outcome.
#[test]
fn shared_throughput_contends_and_still_certifies() {
    let ideal = figure1_faithful().build().run(1);
    let congested = figure1_faithful()
        .network(NetModel::congested())
        .build()
        .run(1);
    assert!(congested.rescheduled() > 0, "contention must re-schedule");
    assert_eq!(congested.dropped(), 0);
    assert!(congested.final_time > ideal.final_time);
    assert!(congested.green_lighted());
    assert!(!congested.detected);
    assert_eq!(congested.tables_match_centralized(), Some(true));
    assert_eq!(congested.utilities, ideal.utilities);
}

// ---------------------------------------------------------------------
// 3. Loss
// ---------------------------------------------------------------------

/// Plain FPSS under visible loss: dropped construction messages leave
/// converged tables diverging from the centralized reference. The
/// divergence is *observable* (`detected`), but plain FPSS has no
/// enforcement — the run still green-lights and executes (the paper's
/// point about specifying only the protocol, not the incentives).
#[test]
fn plain_fpss_under_loss_diverges_observably_but_unenforced() {
    let net = specfaith::graph::generators::figure1();
    let run = Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::Flows(vec![Flow {
            src: net.x,
            dst: net.z,
            packets: 4,
        }]))
        .network(NetModel::Ideal.with_loss(50))
        .build()
        .run(1);
    assert!(run.dropped() > 0);
    assert_eq!(run.tables_match_centralized(), Some(false));
    assert!(run.detected);
    assert!(run.green_lighted(), "plain FPSS has no gate to fail");
}

/// The faithful mechanism under congestion plus 1% loss, honest profile:
/// this seed's drops happen to spare the construction-critical messages,
/// so the run certifies cleanly — loss does not *always* false-flag.
#[test]
fn faithful_mechanism_can_survive_light_loss() {
    let run = figure1_faithful()
        .network(NetModel::congested().with_loss(10))
        .build()
        .run(1);
    assert!(run.dropped() > 0);
    assert!(run.green_lighted());
    assert!(!run.detected);
    assert_eq!(run.tables_match_centralized(), Some(true));
}

/// §5's warning, executable: the same 1% loss under a *misreporting*
/// deviant drops construction-critical messages, the bank's checkpoints
/// flag the mismatch, and the restart budget burns out into a halt.
/// Note the control: under Ideal the misreport alone is NOT detected
/// (cost declarations are private information — VCG makes honesty
/// rational, checkers cannot observe the lie). The halt here is
/// loss-induced: message loss is indistinguishable from manipulation.
#[test]
fn loss_not_misreporting_is_what_the_mechanism_flags() {
    let net = specfaith::graph::generators::figure1();
    let deviation = || Box::new(MisreportCost { delta: 3 });
    let ideal = figure1_faithful()
        .build()
        .run_with_deviant(net.c, deviation(), 1);
    assert!(!ideal.detected, "a private-information lie is unobservable");
    assert!(ideal.green_lighted());

    let lossy = figure1_faithful()
        .network(NetModel::congested().with_loss(10))
        .build()
        .run_with_deviant(net.c, deviation(), 1);
    assert!(lossy.detected);
    assert!(lossy.halted(), "restart budget exhausted under loss");
    assert!(lossy.restarts() > 0);
    assert_eq!(lossy.tables_match_centralized(), None);
    assert!(
        lossy.utilities.iter().all(|u| u.value() == 0),
        "the halt collectively punishes the honest majority too"
    );
}

// ---------------------------------------------------------------------
// 4. Partitions and churn
// ---------------------------------------------------------------------

/// A transient partition during construction is repaired by the bank's
/// restart machinery: checkpoints flag the inconsistent mirrors
/// (`detected` — a false alarm against an honest network), but once the
/// partition heals a restart converges and certifies, and nobody loses
/// utility.
#[test]
fn healed_partition_recovers_via_restarts() {
    let run = figure1_faithful()
        .dynamics(
            Dynamics::new()
                .at(
                    40,
                    TopologyEvent::Partition {
                        island: vec![NodeId::new(0), NodeId::new(5)],
                    },
                )
                .at(90, TopologyEvent::Heal),
        )
        .build()
        .run(1);
    assert!(run.dropped() > 0, "the partition must actually bite");
    assert!(run.detected, "honest nodes false-flagged while split");
    assert!(run.restarts() > 0);
    assert!(run.green_lighted(), "post-heal restart certifies");
    assert_eq!(run.tables_match_centralized(), Some(true));
    assert!(run.utilities.iter().any(|u| u.is_positive()));
}

/// A permanent partition exhausts the restart budget: the mechanism
/// halts and zeroes every node's utility — correct refusal to certify,
/// at the price of collectively punishing the honest mainland.
#[test]
fn permanent_partition_halts_the_mechanism() {
    let run = figure1_faithful()
        .dynamics(Dynamics::new().at(
            40,
            TopologyEvent::Partition {
                island: vec![NodeId::new(0), NodeId::new(5)],
            },
        ))
        .build()
        .run(1);
    assert!(run.detected);
    assert!(run.halted());
    assert_eq!(run.tables_match_centralized(), None);
    assert!(run.utilities.iter().all(|u| u.value() == 0));
}

/// The documented liveness hole: islanding the bank's overlay node
/// (id `n` — 6 on Figure 1) severs the checkpoint channel itself. The
/// bank's requests are the messages being dropped, so nothing ever
/// reports a mismatch: no restarts, no halt, no detection — the run
/// silently drains without certifying and all surplus is lost. The
/// mechanism's enforcement assumes the enforcer stays reachable.
#[test]
fn islanding_the_bank_silently_stalls_certification() {
    let run = figure1_faithful()
        .dynamics(Dynamics::new().at(
            40,
            TopologyEvent::Partition {
                island: vec![NodeId::new(6)],
            },
        ))
        .build()
        .run(1);
    assert!(!run.green_lighted(), "nothing certifies");
    assert!(!run.halted(), "...but nothing halts either");
    assert!(!run.detected, "and nothing is flagged");
    assert_eq!(run.restarts(), 0);
    assert_eq!(run.tables_match_centralized(), None);
    assert!(run.utilities.iter().all(|u| u.value() == 0));
}

/// Node churn mid-construction behaves like a short partition of one:
/// the down node's silence false-flags it, and once it returns a restart
/// re-converges and certifies with full utility.
#[test]
fn node_churn_recovers_like_a_healed_partition() {
    let run = figure1_faithful()
        .dynamics(
            Dynamics::new()
                .at(40, TopologyEvent::NodeDown(NodeId::new(2)))
                .at(90, TopologyEvent::NodeUp(NodeId::new(2))),
        )
        .build()
        .run(1);
    assert!(run.dropped() > 0);
    assert!(run.detected);
    assert!(run.restarts() > 0);
    assert!(run.green_lighted());
    assert_eq!(run.tables_match_centralized(), Some(true));
    assert!(run.utilities.iter().any(|u| u.is_positive()));
}
