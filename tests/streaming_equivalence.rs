//! The streaming equivalence suite (CI's named streaming gate).
//!
//! Pins the streaming correctness contract end to end through the
//! scenario engine: after **every** applied [`TopologyEvent`] — cost
//! re-declarations and (plain mechanism) node churn alike — the live
//! session's converged tables are byte-identical to a cold run on the
//! updated topology and declarations, across the generator families.
//! Star topologies are pinned to their documented fate instead: FPSS
//! requires biconnectivity, so a star never reaches streaming at all.
//!
//! Also pins the faithful mechanism's documented liveness hole: churn
//! that would island the bank from any node is *refused* (reported as
//! [`StreamStatus::Unsupported`]) rather than hanging the signed-hash
//! certification round forever.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use specfaith::scenario::{
    CostModel, Mechanism, Scenario, ScenarioError, StreamStatus, TopologyEvent, TopologySource,
    TrafficModel,
};
use specfaith_core::id::NodeId;
use specfaith_fpss::runner::converged_table_digests;
use specfaith_graph::costs::CostVector;
use specfaith_graph::generators::{grid, random_biconnected, scale_free, wheel};
use specfaith_graph::topology::Topology;
use specfaith_netsim::Latency;
use std::collections::BTreeSet;

/// One topology per streaming-capable generator family. (The star family
/// is covered by `stars_never_reach_streaming` below: not biconnected,
/// rejected at build time.)
fn family_topology(family: usize, n: usize, rng: &mut StdRng) -> Topology {
    match family % 4 {
        0 => grid(3, n.max(6) / 3),
        1 => scale_free(n.max(5), 2, rng),
        2 => wheel(n.max(4)),
        _ => random_biconnected(n.max(5), n / 2, rng),
    }
}

/// Decodes one proptest-drawn event against the current down set:
/// `pick` chooses the node, `kind` the event class, `cost` the new
/// declaration for cost events.
fn decode_event(
    kind: usize,
    pick: usize,
    cost: u64,
    n: usize,
    down: &BTreeSet<NodeId>,
) -> TopologyEvent {
    let node = NodeId::from_index(pick % n);
    match kind % 4 {
        // Cost deltas dominate the mix, as they do in a real overlay.
        0 | 1 => TopologyEvent::NodeCost { node, cost },
        2 => TopologyEvent::NodeDown(node),
        _ => match down.iter().next() {
            Some(&dead) => TopologyEvent::NodeUp(dead),
            None => TopologyEvent::NodeCost { node, cost },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole pin, through `Scenario::stream_session`: after every
    /// applied event of a random sequence (cost deltas + node churn),
    /// the streamed tables are byte-identical to a cold run on the
    /// updated topology and declarations (live nodes compared when
    /// nodes are down; a downed node's purged tables have no cold
    /// counterpart).
    #[test]
    fn streamed_tables_equal_cold_tables_after_every_event(
        seed in 0u64..200,
        n in 6usize..11,
        family in 0usize..4,
        events in proptest::collection::vec((0usize..4, 0usize..16, 0u64..15), 3..7),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = family_topology(family, n, &mut rng);
        let n = topo.num_nodes();
        let costs = CostVector::random(n, 1, 12, &mut rng);
        let scenario = Scenario::builder()
            .topology(TopologySource::Explicit(topo.clone()))
            .costs(CostModel::Explicit(costs))
            .traffic(TrafficModel::single_by_index(0, n - 1, 2))
            .build();
        let mut session = scenario.stream_session(seed);
        let mut down: BTreeSet<NodeId> = BTreeSet::new();
        for (i, &(kind, pick, cost)) in events.iter().enumerate() {
            let event = decode_event(kind, pick, cost, n, &down);
            let outcome = session.apply_event(&event);
            match outcome.status {
                StreamStatus::Applied => {
                    prop_assert!(outcome.messages > 0, "event {i}: {event:?} sent nothing");
                    match &event {
                        TopologyEvent::NodeDown(node) => { down.insert(*node); }
                        TopologyEvent::NodeUp(node) => { down.remove(node); }
                        _ => {}
                    }
                    if down.is_empty() {
                        prop_assert!(
                            outcome.verified == Some(true),
                            "event {i}: {event:?} must re-verify, got {:?}",
                            outcome.verified
                        );
                    }
                }
                // Rejections (downed/unknown nodes, cut vertices) must
                // leave the fixed point untouched — checked below by
                // comparing against the cold oracle for the *tracked*
                // state, which a leaked rejected event would falsify.
                _ => prop_assert!(
                    outcome.messages == 0,
                    "event {i}: {event:?} was refused but sent messages"
                ),
            }
            // The cold oracle on the same topology and declarations.
            let reduced = down
                .iter()
                .fold(topo.clone(), |t, &dead| t.without_node(dead));
            let cold = converged_table_digests(
                &reduced,
                session.declared(),
                Latency::DEFAULT,
                seed.wrapping_add(1 + i as u64),
            );
            let streamed = session.table_digests();
            for node in topo.nodes() {
                if down.contains(&node) {
                    continue;
                }
                prop_assert!(
                    streamed[node.index()] == cold[node.index()],
                    "event {i} ({event:?}): node {node} diverged from the cold fixed point"
                );
            }
        }
    }
}

#[test]
fn stars_never_reach_streaming() {
    // FPSS needs a biconnected graph (prices are avoid-path costs); every
    // star has a cut hub, so the scenario layer rejects it before any
    // engine — streaming included — can run.
    let err = Scenario::builder()
        .topology(TopologySource::Star(8))
        .try_build()
        .unwrap_err();
    assert_eq!(err, ScenarioError::NotBiconnected { nodes: 8 });
}

#[test]
fn node_down_islanding_the_bank_reports_the_liveness_hole() {
    // Removing a node from K6 keeps the topology biconnected, so the
    // *plain* engine streams it. The faithful bank cannot: certification
    // waits on signed hash reports from every node, and a departed node
    // leaves that round stalled forever (the paper's §4.2 reliable-network
    // assumption). The streaming engine must report the documented hole —
    // promptly — instead of hanging.
    let faithful = Scenario::builder()
        .topology(TopologySource::Complete(6))
        .traffic(TrafficModel::single_by_index(0, 5, 2))
        .mechanism(Mechanism::faithful())
        .build();
    let report = faithful.stream(&[TopologyEvent::NodeDown(NodeId::new(2))], 1);
    assert_eq!(report.events[0].status, StreamStatus::Unsupported);
    assert_eq!(report.events[0].messages, 0);
    assert_eq!(report.events[0].verified, None);
    // The held certification is intact: execution still green-lights.
    assert!(report.final_report.green_lighted());
    assert!(!report.final_report.detected);

    // The same event streams fine under the plain mechanism.
    let plain = Scenario::builder()
        .topology(TopologySource::Complete(6))
        .traffic(TrafficModel::single_by_index(0, 5, 2))
        .build();
    let mut session = plain.stream_session(1);
    let outcome = session.apply_event(&TopologyEvent::NodeDown(NodeId::new(2)));
    assert_eq!(outcome.status, StreamStatus::Applied);
}
