//! §5 (Discussion) made executable: how the faithful machinery interacts
//! with **non-rational** failures and with the phase-1 flood.
//!
//! "Simply introducing other failures, such as general omissions or even
//! failstop, may cause the system to falsely detect and punish
//! manipulation. Further work needs to explore how other failure models
//! affect faithfulness in systems with the rational-manipulation failure
//! model."
//!
//! Experiment E13 quantifies that warning: one fail-stop node halts the
//! whole mechanism and zeroes everyone's utility — correct detection, but
//! collective punishment of an honest network.

use specfaith::fpss::deviation::{DropCostFlood, FailStop, TamperCostFlood};
use specfaith::prelude::*;

fn scenario() -> (specfaith::graph::generators::Figure1, Scenario) {
    let net = figure1();
    let scenario = Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::Flows(vec![
            Flow {
                src: net.x,
                dst: net.z,
                packets: 4,
            },
            Flow {
                src: net.d,
                dst: net.z,
                packets: 4,
            },
        ]))
        .mechanism(Mechanism::faithful())
        .build();
    (net, scenario)
}

#[test]
fn e13_failstop_halts_and_punishes_everyone() {
    let (net, scenario) = scenario();
    let faithful = scenario.run(1);
    let run = scenario.run_with_deviant(net.c, Box::new(FailStop), 1);
    // The silent node's announced tables never match the recomputed
    // mirrors, so the bank (correctly) refuses to certify — and the whole
    // honest network forfeits its surplus with it.
    assert!(run.detected);
    assert!(
        run.halted(),
        "fail-stop is indistinguishable from manipulation"
    );
    for id in scenario.topology().nodes() {
        assert_eq!(run.utilities[id.index()], Money::ZERO);
        assert!(
            faithful.utilities[id.index()].is_positive(),
            "the forfeited surplus was real"
        );
    }
}

/// A 5-ring where node 1 is the exclusive 2-hop relay between node 0 and
/// node 2: 0's declaration reaches 2 *through the tamperer first* (the
/// long way around takes one more hop), so the poison deterministically
/// wins the first-write-wins race at node 2 — but NOT at node 3, which
/// hears the truth via node 4 first. The resulting DATA1 split is exactly
/// what checkpoint hash comparison exposes.
fn ring5(mechanism: Mechanism) -> Scenario {
    Scenario::builder()
        .topology(TopologySource::Ring(5))
        .costs(CostModel::Explicit(CostVector::from_values(&[
            2, 1, 1, 1, 1,
        ])))
        .traffic(TrafficModel::single_by_index(2, 4, 4))
        .mechanism(mechanism)
        .build()
}

#[test]
fn tampered_cost_flood_is_caught_in_faithful() {
    let scenario = ring5(Mechanism::faithful());
    let run = scenario.run_with_deviant(
        NodeId::new(1),
        Box::new(TamperCostFlood { multiplier: 100 }),
        1,
    );
    // Poisoned DATA1 copies make principal and checker tables disagree.
    assert!(
        run.detected,
        "DATA1 divergence must surface at a checkpoint"
    );
    assert!(!run.green_lighted());
    let faithful = scenario.run(1);
    assert!(
        run.utilities[1] < faithful.utilities[1],
        "flood tampering forfeits the progress surplus"
    );
}

#[test]
fn dropped_cost_flood_is_survived_by_redundancy() {
    // Biconnectivity routes the flood around a single silent node — the
    // §3.9 redundancy argument. The run certifies; the deviation is a
    // harmless (and gainless) no-op.
    let (net, scenario) = scenario();
    let faithful = scenario.run(1);
    let run = scenario.run_with_deviant(net.c, Box::new(DropCostFlood), 1);
    assert!(run.green_lighted(), "flood redundancy defeats suppression");
    assert!(!run.halted());
    assert!(run.utilities[net.c.index()] <= faithful.utilities[net.c.index()]);
}

#[test]
fn tampered_cost_flood_corrupts_plain_fpss() {
    let plain = ring5(Mechanism::Plain);
    let run = plain.run_with_deviant(
        NodeId::new(1),
        Box::new(TamperCostFlood { multiplier: 100 }),
        1,
    );
    assert_eq!(
        run.tables_match_centralized(),
        Some(false),
        "poisoned DATA1 must corrupt someone's converged tables"
    );
}

#[test]
fn full_catalog_with_flood_deviations_remains_ex_post_nash() {
    let (_, scenario) = scenario();
    let report = scenario.equilibrium_report(1, &Catalog::standard());
    // 13 strategies × 6 nodes.
    assert_eq!(report.outcomes.len(), 78);
    assert!(report.is_ex_post_nash(), "{report}");
    for outcome in &report.outcomes {
        if !outcome.detected {
            assert!(
                !outcome.strictly_profitable(),
                "undetected AND profitable: {}",
                outcome.deviation
            );
        }
    }
}
