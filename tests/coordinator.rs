//! The live-coordinator guarantee: a work-stealing coordinated sweep is
//! **byte-identical** to the monolithic sweep — under any worker count,
//! any scheduling, and every injected failure.
//!
//! The battery runs real coordinators and real in-process workers over
//! loopback TCP on the paper's Figure 1 grid (cheap enough for
//! debug-mode CI, large enough for many leases), asserting full
//! `assert_eq!` report identity — which implies fingerprint identity —
//! for 1 / 4 / oversubscribed workers and for each `FaultPlan` path:
//! slow worker (work stealing), killed worker (EOF reissue, retry
//! counter observably > 0), hung worker (lease-timeout reissue),
//! duplicated result line (tolerated), and corrupted result line
//! (connection dropped, lease reissued). Raw protocol clients then pin
//! the typed `MergeError`s: conflicting duplicate cells, malformed cell
//! coordinates, and cross-worker baseline conflicts.
//!
//! The committed `n = 64` quick-grid fingerprint
//! (`SWEEP_fingerprint_quick.json`) is too slow to re-derive here in
//! debug mode (~65 s of release-mode work per run); the CI
//! `sweep-coordinator` job pins it in release with 3 worker processes
//! and a scripted mid-run kill. This file covers the same code paths on
//! grids sized for `cargo test`, plus a sampled `n = 64` identity check
//! mirroring `tests/sharded_sweep.rs`.

use specfaith::fpss::deviation::standard_catalog;
use specfaith::prelude::*;
use specfaith::scenario::{Catalog, CoordListener, FragmentCell, Frame, GridManifest};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

const INSTANCE: &str = "itest-coord";
const SEEDS: [u64; 2] = [11, 12];

fn figure1_scenario() -> Scenario {
    Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::single_by_index(5, 4, 4))
        .mechanism(Mechanism::faithful())
        .build()
}

/// The first two standard deviations — a 24-cell grid over two seeds:
/// enough leases to steal, cheap enough for debug-mode CI.
fn small_catalog() -> Catalog {
    Catalog::from_factory(|deviant| standard_catalog(deviant).into_iter().take(2).collect())
}

/// Test-sized coordinator config: 2-cell leases for plenty of stealing,
/// generous lease timeout (workers heartbeat anyway), short linger so
/// completed runs wind down fast.
fn test_config() -> CoordConfig {
    CoordConfig {
        lease_cells: 2,
        lease_timeout: Duration::from_secs(10),
        max_attempts: 5,
        retry_backoff: Duration::from_millis(20),
        idle_timeout: Duration::from_secs(60),
        linger: Duration::from_millis(300),
    }
}

/// Runs one coordinator plus the given in-process workers over loopback
/// TCP and returns the coordinator outcome and every worker's result.
#[allow(clippy::type_complexity)]
fn coordinate(
    worker_configs: Vec<WorkerConfig>,
    config: CoordConfig,
) -> (
    Result<CoordOutcome, CoordError>,
    Vec<Result<WorkerSummary, WorkerError>>,
) {
    let scenario = figure1_scenario();
    let coordinator = Coordinator::new(&scenario, &SEEDS, &small_catalog(), INSTANCE, config);
    let listener =
        CoordListener::bind(&CoordAddr::parse("tcp:127.0.0.1:0").expect("addr")).expect("bind");
    let addr = listener.local_addr().clone();
    let handles: Vec<_> = worker_configs
        .into_iter()
        .map(|worker| {
            let scenario = scenario.clone();
            let addr = addr.clone();
            thread::spawn(move || {
                run_worker(&scenario, &SEEDS, &small_catalog(), INSTANCE, &addr, worker)
            })
        })
        .collect();
    let outcome = coordinator.serve(listener);
    let summaries = handles
        .into_iter()
        .map(|handle| handle.join().expect("worker thread"))
        .collect();
    (outcome, summaries)
}

fn monolithic() -> SweepReport {
    figure1_scenario().sweep(&SEEDS, &small_catalog())
}

fn assert_identical(outcome: &CoordOutcome, reference: &SweepReport) {
    assert_eq!(
        outcome.report, *reference,
        "coordinated report diverged from the monolithic sweep"
    );
    assert_eq!(
        outcome.report.to_canonical_json(),
        reference.to_canonical_json()
    );
    assert_eq!(outcome.fingerprint, reference.fingerprint());
}

/// 1 worker, 4 workers, and 9 workers over 6 leases (oversubscribed:
/// most workers go idle or never receive work) all produce the
/// byte-identical monolithic report.
#[test]
fn coordinated_report_is_byte_identical_for_any_worker_count() {
    let reference = monolithic();
    for workers in [1usize, 4, 9] {
        let mut config = test_config();
        if workers == 9 {
            config.lease_cells = 4; // 6 leases for 9 workers
        }
        let configs = (0..workers)
            .map(|i| WorkerConfig::named(&format!("w-{i}")))
            .collect();
        let (outcome, summaries) = coordinate(configs, config);
        let outcome = outcome.unwrap_or_else(|e| panic!("{workers} workers: {e}"));
        assert_identical(&outcome, &reference);
        assert_eq!(outcome.stats.grid_cells, 24);
        assert_eq!(outcome.stats.leases_reissued, 0, "{workers} workers");
        for summary in summaries {
            summary.expect("fault-free workers succeed");
        }
        let evaluated: usize = outcome.stats.workers.iter().map(|w| w.cells).sum();
        assert_eq!(evaluated, 24, "{workers} workers: every cell exactly once");
    }
}

/// Work stealing: a deliberately slow worker keeps only the leases it
/// can finish; the fast worker drains the rest of the queue.
#[test]
fn fast_worker_steals_cells_from_a_slow_worker() {
    let slow = WorkerConfig {
        fault: FaultPlan {
            delay_per_cell: Some(Duration::from_millis(400)),
            ..FaultPlan::none()
        },
        ..WorkerConfig::named("slow")
    };
    let (outcome, summaries) = coordinate(vec![slow, WorkerConfig::named("fast")], test_config());
    let outcome = outcome.expect("run completes");
    assert_identical(&outcome, &monolithic());
    let cells = |name: &str| {
        summaries
            .iter()
            .map(|s| s.as_ref().expect("workers succeed"))
            .find(|s| s.name == name)
            .expect("summary present")
            .cells
    };
    assert!(
        cells("fast") > cells("slow"),
        "fast worker must out-evaluate the slow one: fast={} slow={}",
        cells("fast"),
        cells("slow")
    );
}

/// A worker killed mid-lease: the EOF reclaims its lease, the reissue
/// counter observably increments, and the merged report is unaffected.
#[test]
fn killed_worker_lease_is_reissued_and_report_unaffected() {
    let victim = WorkerConfig {
        fault: FaultPlan {
            kill_after_cells: Some(3),
            ..FaultPlan::none()
        },
        ..WorkerConfig::named("victim")
    };
    let (outcome, summaries) =
        coordinate(vec![victim, WorkerConfig::named("steady")], test_config());
    let outcome = outcome.expect("run survives the kill");
    assert_identical(&outcome, &monolithic());
    assert!(
        outcome.stats.leases_reissued > 0,
        "the killed worker's lease must be observably re-issued"
    );
    let victim = summaries
        .into_iter()
        .map(|s| s.expect("both workers end cleanly"))
        .find(|s| s.name == "victim")
        .expect("victim summary");
    assert!(victim.killed, "the kill fault must have fired");
}

/// A worker that hangs (alive connection, no heartbeats): the lease
/// *timeout* — not EOF — reclaims its lease.
#[test]
fn hung_worker_lease_times_out_and_is_reissued() {
    let mut config = test_config();
    config.lease_timeout = Duration::from_millis(1500);
    let victim = WorkerConfig {
        fault: FaultPlan {
            hang_after_cells: Some(1),
            ..FaultPlan::none()
        },
        heartbeat: Duration::from_millis(300),
        ..WorkerConfig::named("victim")
    };
    let steady = WorkerConfig {
        heartbeat: Duration::from_millis(300),
        ..WorkerConfig::named("steady")
    };
    let (outcome, summaries) = coordinate(vec![victim, steady], config);
    let outcome = outcome.expect("run survives the hang");
    assert_identical(&outcome, &monolithic());
    assert!(
        outcome.stats.leases_reissued > 0,
        "the hung worker's lease must time out and be re-issued"
    );
    let victim = summaries
        .into_iter()
        .map(|s| s.expect("both workers end cleanly"))
        .find(|s| s.name == "victim")
        .expect("victim summary");
    assert!(victim.hung, "the hang fault must have fired");
}

/// A bit-identical duplicate result line is tolerated and counted, not
/// fatal — late results of reissued leases look exactly like this.
#[test]
fn duplicate_result_line_is_tolerated_and_counted() {
    let duplicator = WorkerConfig {
        fault: FaultPlan {
            duplicate_result: Some(0),
            ..FaultPlan::none()
        },
        ..WorkerConfig::named("duplicator")
    };
    let (outcome, summaries) = coordinate(
        vec![duplicator, WorkerConfig::named("steady")],
        test_config(),
    );
    let outcome = outcome.expect("duplicates are tolerated");
    assert_identical(&outcome, &monolithic());
    assert!(
        outcome.stats.duplicate_results > 0,
        "the duplicated cells must be counted"
    );
    for summary in summaries {
        summary.expect("duplicating is not fatal to the worker");
    }
}

/// A corrupted (unparsable) result line costs the sender its connection
/// and its lease a reissue; the run still completes byte-identically.
#[test]
fn corrupted_result_line_drops_the_connection_and_reissues() {
    let corruptor = WorkerConfig {
        fault: FaultPlan {
            corrupt_result: Some(0),
            ..FaultPlan::none()
        },
        ..WorkerConfig::named("corruptor")
    };
    let (outcome, summaries) = coordinate(
        vec![corruptor, WorkerConfig::named("steady")],
        test_config(),
    );
    let outcome = outcome.expect("run survives the corruption");
    assert_identical(&outcome, &monolithic());
    assert!(
        outcome.stats.corrupt_lines > 0,
        "corruption must be counted"
    );
    assert!(
        outcome.stats.leases_reissued > 0,
        "the corrupted lease must be re-issued"
    );
    let corruptor = summaries
        .into_iter()
        .find_map(|s| match s {
            Err(e) => Some(e),
            Ok(s) if s.name == "corruptor" => panic!("corruptor must lose its connection"),
            Ok(_) => None,
        })
        .expect("the corruptor fails");
    assert!(
        matches!(corruptor, WorkerError::Disconnected | WorkerError::Io(_)),
        "unexpected corruptor error: {corruptor}"
    );
}

/// A worker whose manifest disagrees is rejected at hello — the live
/// `ManifestMismatch` — while a matching worker completes the run.
#[test]
fn mismatched_manifest_worker_is_rejected_while_the_run_completes() {
    let scenario = figure1_scenario();
    let coordinator =
        Coordinator::new(&scenario, &SEEDS, &small_catalog(), INSTANCE, test_config());
    let listener =
        CoordListener::bind(&CoordAddr::parse("tcp:127.0.0.1:0").expect("addr")).expect("bind");
    let addr = listener.local_addr().clone();
    let imposter = {
        let scenario = scenario.clone();
        let addr = addr.clone();
        thread::spawn(move || {
            run_worker(
                &scenario,
                &SEEDS,
                &small_catalog(),
                "imposter-grid",
                &addr,
                WorkerConfig::named("imposter"),
            )
        })
    };
    let good = {
        let scenario = scenario.clone();
        let addr = addr.clone();
        thread::spawn(move || {
            run_worker(
                &scenario,
                &SEEDS,
                &small_catalog(),
                INSTANCE,
                &addr,
                WorkerConfig::named("good"),
            )
        })
    };
    let outcome = coordinator.serve(listener).expect("run completes");
    assert_identical(&outcome, &monolithic());
    assert!(
        matches!(
            imposter.join().expect("imposter thread"),
            Err(WorkerError::Rejected(_))
        ),
        "the mismatched worker must be rejected"
    );
    good.join()
        .expect("good thread")
        .expect("good worker succeeds");
}

// ---------------------------------------------------------------------------
// Raw protocol clients: drive the socket directly to pin the typed
// MergeError paths a well-behaved worker never triggers.

struct RawClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawClient {
    fn connect(addr: &CoordAddr) -> RawClient {
        let CoordAddr::Tcp(text) = addr else {
            panic!("raw clients are TCP-only");
        };
        let stream = TcpStream::connect(text.as_str()).expect("connect");
        RawClient {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send(&mut self, frame: &Frame) {
        self.send_line(&frame.to_line());
    }

    fn send_line(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Frame {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        Frame::parse(line.trim_end()).expect("coordinator frames parse")
    }

    /// Hello with the coordinator's own manifest; expects welcome.
    fn handshake(addr: &CoordAddr, manifest: &GridManifest, name: &str) -> RawClient {
        let mut client = RawClient::connect(addr);
        client.send(&Frame::Hello {
            worker: name.to_string(),
            manifest: manifest.clone(),
        });
        assert!(
            matches!(client.recv(), Frame::Welcome { .. }),
            "matching manifest must be welcomed"
        );
        client
    }
}

/// Serves a coordinator on loopback TCP in a background thread, hands
/// the test closure the address and manifest, then returns the serve
/// result.
fn serve_raw(
    drive: impl FnOnce(&CoordAddr, &GridManifest) + Send + 'static,
) -> Result<CoordOutcome, CoordError> {
    let scenario = figure1_scenario();
    let coordinator =
        Coordinator::new(&scenario, &SEEDS, &small_catalog(), INSTANCE, test_config());
    let manifest = coordinator.manifest().clone();
    let listener =
        CoordListener::bind(&CoordAddr::parse("tcp:127.0.0.1:0").expect("addr")).expect("bind");
    let addr = listener.local_addr().clone();
    let driver = thread::spawn(move || drive(&addr, &manifest));
    let outcome = coordinator.serve(listener);
    driver.join().expect("driver thread");
    outcome
}

/// The cells of one lease, fabricated with coordinates the manifest
/// implies (utilities are arbitrary — the coordinator cannot check
/// those, only their cross-worker consistency).
fn fabricate_cells(manifest: &GridManifest, cells: &[usize], utility: i64) -> Vec<FragmentCell> {
    let agents = manifest.agents.len();
    let deviations = manifest.deviations.len();
    cells
        .iter()
        .map(|&index| FragmentCell {
            index,
            seed: manifest.seeds[index / (agents * deviations)],
            agent: manifest.agents[(index / deviations) % agents],
            deviation: index % deviations,
            deviant_utility: Money::new(utility),
            detected: false,
        })
        .collect()
}

/// Re-sending a lease's result with *different* contents is the live
/// `MergeError::DuplicateCell` — unlike the bit-identical duplicate,
/// which is tolerated.
#[test]
fn conflicting_duplicate_cell_is_a_typed_merge_error() {
    let outcome = serve_raw(|addr, manifest| {
        let mut client = RawClient::handshake(addr, manifest, "raw-dup");
        client.send(&Frame::Ready);
        let Frame::Lease { lease, cells } = client.recv() else {
            panic!("expected a lease");
        };
        client.send(&Frame::Result {
            lease,
            secs: 0.1,
            cells: fabricate_cells(manifest, &cells, 7),
        });
        client.send(&Frame::Result {
            lease,
            secs: 0.1,
            cells: fabricate_cells(manifest, &cells, 8), // conflicting contents
        });
        // Drain until the coordinator aborts or closes.
        let mut line = String::new();
        while client.reader.read_line(&mut line).is_ok_and(|n| n > 0) {
            line.clear();
        }
    });
    assert!(
        matches!(
            outcome,
            Err(CoordError::Merge(MergeError::DuplicateCell { .. }))
        ),
        "expected DuplicateCell, got {outcome:?}"
    );
}

/// A result whose stored coordinates disagree with its grid index is
/// the live `MergeError::MalformedCell`.
#[test]
fn malformed_cell_coordinates_are_a_typed_merge_error() {
    let outcome = serve_raw(|addr, manifest| {
        let mut client = RawClient::handshake(addr, manifest, "raw-malformed");
        client.send(&Frame::Ready);
        let Frame::Lease { lease, cells } = client.recv() else {
            panic!("expected a lease");
        };
        let mut fabricated = fabricate_cells(manifest, &cells, 7);
        fabricated[0].agent += 1; // index/coordinate disagreement
        client.send(&Frame::Result {
            lease,
            secs: 0.1,
            cells: fabricated,
        });
        let mut line = String::new();
        while client.reader.read_line(&mut line).is_ok_and(|n| n > 0) {
            line.clear();
        }
    });
    assert!(
        matches!(
            outcome,
            Err(CoordError::Merge(MergeError::MalformedCell { .. }))
        ),
        "expected MalformedCell, got {outcome:?}"
    );
}

/// Two workers reporting different honest baselines for the same seed
/// is the live `MergeError::BaselineConflict` — the cross-worker
/// determinism check.
#[test]
fn baseline_conflict_across_workers_is_a_typed_merge_error() {
    let outcome = serve_raw(|addr, manifest| {
        let nodes = manifest.agents.len();
        let honest: Vec<(u64, Vec<Money>)> = manifest
            .seeds
            .iter()
            .map(|&seed| (seed, vec![Money::new(0); nodes]))
            .collect();
        let mut conflicting = honest.clone();
        conflicting[0].1[0] = Money::new(1);

        let mut first = RawClient::handshake(addr, manifest, "raw-base-a");
        first.send(&Frame::Baselines {
            secs: 0.1,
            baselines: honest,
        });
        let mut second = RawClient::handshake(addr, manifest, "raw-base-b");
        second.send(&Frame::Baselines {
            secs: 0.1,
            baselines: conflicting,
        });
        for client in [&mut first, &mut second] {
            let mut line = String::new();
            while client.reader.read_line(&mut line).is_ok_and(|n| n > 0) {
                line.clear();
            }
        }
    });
    assert!(
        matches!(
            outcome,
            Err(CoordError::Merge(MergeError::BaselineConflict { .. }))
        ),
        "expected BaselineConflict, got {outcome:?}"
    );
}

/// The headline size check, mirroring `tests/sharded_sweep.rs`: a
/// sampled `n = 64` grid coordinated across two workers is
/// byte-identical to `sweep_sampled` — per-cell seeds depend only on
/// `(seed, agent, deviation)`, never on who evaluated the cell.
#[test]
fn coordinated_sampled_n64_sweep_is_byte_identical_to_monolithic() {
    let scenario = Scenario::builder()
        .topology(TopologySource::RandomBiconnected {
            n: 64,
            extra_edges: 32,
        })
        .instance_seed(2004)
        .traffic(TrafficModel::single_by_index(0, 63, 3))
        .mechanism(Mechanism::Plain)
        .build();
    let catalog = small_catalog();
    let seeds = [2004u64];
    let agents = [0usize, 17, 63];

    let monolithic = scenario.sweep_sampled(&seeds, &catalog, &agents);
    let coordinator = Coordinator::sampled(
        &scenario,
        &seeds,
        &catalog,
        &agents,
        "itest-n64",
        test_config(),
    );
    let listener =
        CoordListener::bind(&CoordAddr::parse("tcp:127.0.0.1:0").expect("addr")).expect("bind");
    let addr = listener.local_addr().clone();
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let scenario = scenario.clone();
            let addr = addr.clone();
            thread::spawn(move || {
                run_worker_sampled(
                    &scenario,
                    &seeds,
                    &small_catalog(),
                    &agents,
                    "itest-n64",
                    &addr,
                    WorkerConfig::named(&format!("n64-{i}")),
                )
            })
        })
        .collect();
    let outcome = coordinator.serve(listener).expect("run completes");
    for worker in workers {
        worker
            .join()
            .expect("worker thread")
            .expect("worker succeeds");
    }
    assert_eq!(outcome.report, monolithic);
    assert_eq!(
        outcome.report.to_canonical_json(),
        monolithic.to_canonical_json()
    );
    assert_eq!(outcome.fingerprint, monolithic.fingerprint());
}
