//! Fuzzing the two wire parsers — `specfaith-sweep-fragment-v1`
//! documents ([`SweepFragment::from_json`]) and `specfaith-coord-v1`
//! protocol lines (`Frame::parse`) — with the crate's deterministic
//! proptest stand-in.
//!
//! The contract under test is *never panic*: arbitrary truncation, byte
//! substitution, unknown-key injection, i128 boundary integers,
//! interleaved protocol frames, pathological nesting depth, and raw
//! byte soup must all come back as `Ok` or a typed `Err` string —
//! a worker feeding garbage to the coordinator may cost itself a
//! connection, but it must never crash the merge. Round-trip identity
//! (`to_json → from_json → to_json`) is pinned alongside, so the
//! tolerance for junk provably does not come at the price of losing
//! real data.

use proptest::prelude::*;
use specfaith::fpss::deviation::standard_catalog;
use specfaith::prelude::*;
use specfaith::scenario::{Catalog, FragmentCell, Frame, GridManifest, ShardTiming};

/// A structurally valid fragment built by hand (no sweep needed — the
/// parsers only see the document, not the physics behind it).
fn template_fragment() -> SweepFragment {
    let specs = small_specs();
    SweepFragment {
        shard: ShardSpec::new(1, 3),
        instance: "fuzz-instance".to_string(),
        instance_fingerprint: "fnv1a64:00000000deadbeef".to_string(),
        seeds: vec![11, 12],
        agents: vec![0, 3, 5],
        deviations: specs,
        baselines: vec![
            (11, vec![Money::new(-4), Money::new(0), Money::new(17)]),
            (12, vec![Money::new(2), Money::new(-9), Money::new(0)]),
        ],
        cells: vec![
            FragmentCell {
                index: 1,
                seed: 11,
                agent: 0,
                deviation: 1,
                deviant_utility: Money::new(-123),
                detected: true,
            },
            FragmentCell {
                index: 4,
                seed: 11,
                agent: 5,
                deviation: 0,
                deviant_utility: Money::new(42),
                detected: false,
            },
        ],
        timing: ShardTiming {
            baseline_secs: 1.5,
            cells_secs: 0.25,
        },
    }
}

fn small_specs() -> Vec<DeviationSpec> {
    Catalog::from_factory(|deviant| standard_catalog(deviant).into_iter().take(2).collect()).specs()
}

/// One of every protocol frame, as its wire line.
fn frame_lines() -> Vec<String> {
    let fragment = template_fragment();
    let manifest = GridManifest {
        instance: fragment.instance.clone(),
        instance_fingerprint: fragment.instance_fingerprint.clone(),
        seeds: fragment.seeds.clone(),
        agents: fragment.agents.clone(),
        deviations: fragment.deviations.clone(),
    };
    vec![
        Frame::Hello {
            worker: "fuzz-worker".to_string(),
            manifest,
        }
        .to_line(),
        Frame::Welcome { grid_cells: 12 }.to_line(),
        Frame::Reject {
            reason: "manifest mismatch: \"quoted\" and \\escaped".to_string(),
        }
        .to_line(),
        Frame::Baselines {
            secs: 0.125,
            baselines: fragment.baselines.clone(),
        }
        .to_line(),
        Frame::Ready.to_line(),
        Frame::Lease {
            lease: 7,
            cells: vec![0, 1, 2, 3],
        }
        .to_line(),
        Frame::Idle { retry_ms: 50 }.to_line(),
        Frame::Heartbeat { lease: u64::MAX }.to_line(),
        Frame::Result {
            lease: 7,
            secs: 0.5,
            cells: fragment.cells.clone(),
        }
        .to_line(),
        Frame::Done.to_line(),
        Frame::Abort {
            reason: "fuzz".to_string(),
        }
        .to_line(),
    ]
}

/// Clips `cut` to a char boundary of `text` (the documents are ASCII,
/// but the fuzz inputs need not stay that way).
fn clamp_to_boundary(text: &str, mut cut: usize) -> usize {
    cut %= text.len() + 1;
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    cut
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A truncated fragment document parses to an error — never a panic,
    /// and never a silently short fragment. (Cutting only the final
    /// newline leaves the document valid, hence the boundary carve-out.)
    #[test]
    fn truncated_fragment_errors_without_panicking(cut in any::<usize>()) {
        let document = template_fragment().to_json();
        let cut = clamp_to_boundary(&document, cut);
        let parsed = SweepFragment::from_json(&document[..cut]);
        if parsed.is_ok() {
            prop_assert!(
                cut + 1 >= document.len(),
                "a truncation at byte {cut}/{} parsed cleanly",
                document.len()
            );
        }
    }

    /// A truncated protocol line errors — every proper prefix of a
    /// single-line frame loses at least its closing brace.
    #[test]
    fn truncated_frame_errors_without_panicking(pick in any::<usize>(), cut in any::<usize>()) {
        let lines = frame_lines();
        let line = &lines[pick % lines.len()];
        let cut = clamp_to_boundary(line, cut);
        prop_assume!(cut < line.len());
        prop_assert!(
            Frame::parse(&line[..cut]).is_err(),
            "a truncation at byte {cut}/{} parsed cleanly: {:?}",
            line.len(),
            &line[..cut]
        );
    }

    /// Single-byte substitutions anywhere in a fragment document or a
    /// frame line must return (Ok or Err), never panic — this drives the
    /// parser through every mid-token corruption the mutation reaches.
    #[test]
    fn mutated_bytes_never_panic(pick in any::<usize>(), pos in any::<usize>(), byte in any::<u8>()) {
        let lines = frame_lines();
        let document = template_fragment().to_json();
        let target = if pick % 2 == 0 {
            document
        } else {
            lines[pick % lines.len()].clone()
        };
        let mut bytes = target.into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        let mutated = String::from_utf8_lossy(&bytes);
        let _ = SweepFragment::from_json(&mutated);
        let _ = Frame::parse(&mutated);
    }

    /// Unknown keys — flat or deeply structured — are tolerated by both
    /// parsers: the documents still parse and carry the same payload, so
    /// a newer writer can extend the format without breaking this reader.
    #[test]
    fn unknown_keys_are_tolerated(tag in any::<u64>()) {
        let reference = template_fragment();
        let document = reference.to_json();
        let extras = format!(
            ",\n  \"zz_unknown_{tag}\": {tag},\n  \"zz_structured\": \
             {{\"a\": [1, -2.5, null, {{\"b\": [true, \"x\"]}}]}}\n}}"
        );
        let extended = document.trim_end().trim_end_matches('}').to_string() + &extras;
        let parsed = SweepFragment::from_json(&extended);
        prop_assert!(parsed.is_ok(), "unknown keys rejected: {parsed:?}");
        let parsed = parsed.unwrap();
        prop_assert_eq!(&parsed.cells, &reference.cells);
        prop_assert_eq!(&parsed.seeds, &reference.seeds);
        prop_assert_eq!(&parsed.baselines, &reference.baselines);

        let line = format!(
            "{{\"frame\": \"heartbeat\", \"lease\": 9, \"zz_unknown_{tag}\": [{tag}]}}"
        );
        prop_assert_eq!(Frame::parse(&line), Ok(Frame::Heartbeat { lease: 9 }));
    }

    /// Raw byte soup — not even JSON-shaped — never panics either parser.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let soup = String::from_utf8_lossy(&bytes);
        let _ = SweepFragment::from_json(&soup);
        let _ = Frame::parse(&soup);
    }

    /// Hand-constructed fragments with arbitrary payload values survive
    /// `to_json → from_json → to_json` byte-identically — junk tolerance
    /// does not cost real data.
    #[test]
    fn fragment_round_trip_is_identity(
        cell in ((0usize..1_000_000, any::<u64>(), 0usize..4096), (any::<i64>(), any::<bool>())),
    ) {
        let ((index, seed, agent), (utility, detected)) = cell;
        let mut fragment = template_fragment();
        fragment.cells.push(FragmentCell {
            index,
            seed,
            agent,
            deviation: index % 2,
            deviant_utility: Money::new(utility),
            detected,
        });
        let document = fragment.to_json();
        let reparsed = SweepFragment::from_json(&document).expect("own output parses");
        prop_assert_eq!(&reparsed.to_json(), &document);
        prop_assert_eq!(&reparsed.cells, &fragment.cells);
        prop_assert_eq!(&reparsed.seeds, &fragment.seeds);
        prop_assert_eq!(&reparsed.agents, &fragment.agents);
        prop_assert_eq!(&reparsed.baselines, &fragment.baselines);
    }
}

/// Integer boundaries: the JSON layer accumulates into i128, so
/// `i128::MAX`/`i128::MIN` must *parse* (then fail the u64/i64 range
/// checks with errors), and one digit beyond i128 must be a parse error
/// — never a panic, never a silent wrap.
#[test]
fn i128_boundary_integers_error_cleanly() {
    let max = i128::MAX; // 170141183460469231731687303715884105727
    let min = i128::MIN;
    let beyond = format!("{max}9");

    for huge in [max.to_string(), min.to_string(), beyond.clone()] {
        let document = template_fragment()
            .to_json()
            .replace("\"seeds\": [11, 12]", &format!("\"seeds\": [{huge}]"));
        let parsed = SweepFragment::from_json(&document);
        assert!(parsed.is_err(), "seed {huge} must not fit u64: {parsed:?}");

        let line = format!("{{\"frame\": \"heartbeat\", \"lease\": {huge}}}");
        assert!(
            Frame::parse(&line).is_err(),
            "lease {huge} must not fit u64"
        );
    }

    // The actual u64/i64 boundaries do fit, exactly.
    let line = format!("{{\"frame\": \"heartbeat\", \"lease\": {}}}", u64::MAX);
    assert_eq!(
        Frame::parse(&line),
        Ok(Frame::Heartbeat { lease: u64::MAX })
    );
    let document = template_fragment().to_json().replace(
        "\"deviant_utility\": -123",
        &format!("\"deviant_utility\": {}", i64::MIN),
    );
    let parsed = SweepFragment::from_json(&document).expect("i64::MIN utility fits");
    assert_eq!(parsed.cells[0].deviant_utility, Money::new(i64::MIN));
}

/// Feeding protocol frames to the fragment parser (and vice versa) — the
/// realistic cross-wiring when a worker writes its socket lines into a
/// spool file — errors cleanly in both directions.
#[test]
fn interleaved_protocol_frames_error_cleanly() {
    for line in frame_lines() {
        let parsed = SweepFragment::from_json(&line);
        assert!(parsed.is_err(), "frame accepted as a fragment: {line}");
    }
    let document = template_fragment().to_json();
    assert!(
        Frame::parse(&document).is_err(),
        "a fragment document accepted as a protocol frame"
    );
    // A spool file with frames interleaved into the document.
    let interleaved = format!("{}\n{document}", frame_lines().join("\n"));
    assert!(SweepFragment::from_json(&interleaved).is_err());
}

/// Pathological nesting (10 000 deep) hits the parser's depth cap as an
/// error — not a stack overflow, which `catch_unwind` could never save.
#[test]
fn pathological_nesting_depth_errors_instead_of_overflowing() {
    let depth = 10_000;
    let arrays = format!("{}{}", "[".repeat(depth), "]".repeat(depth));
    assert!(SweepFragment::from_json(&arrays).is_err());

    let framed = format!("{{\"frame\": \"ready\", \"zz\": {arrays}}}");
    let parsed = Frame::parse(&framed);
    assert!(parsed.is_err(), "deep nesting must be rejected: {parsed:?}");

    let objects = format!("{}\"x\"{}", "{\"a\": ".repeat(depth), "}".repeat(depth));
    assert!(SweepFragment::from_json(&objects).is_err());

    // At a tame depth the same shape is accepted wherever junk keys are.
    let shallow = format!(
        "{{\"frame\": \"ready\", \"zz\": {}{}}}",
        "[".repeat(64),
        "]".repeat(64)
    );
    assert_eq!(Frame::parse(&shallow), Ok(Frame::Ready));
}
