//! The large-n workload, scaled down to test size: the sparse presets
//! build and converge, reference checks can be destination-sampled, the
//! avoid-tree index stays proportional to queries even at n = 1024, and
//! run-scoped caches are byte-identical to the global-registry path.

use rand::rngs::StdRng;
use rand::SeedableRng;
use specfaith::prelude::*;
use specfaith::scenario::Catalog;
use specfaith_fpss::deviation::MisreportCost;
use specfaith_graph::cache::RouteCache;
use specfaith_graph::generators::scale_free;

/// The large presets at a CI-friendly size: one honest run per family,
/// converging to the (sampled) centralized reference.
#[test]
fn large_presets_build_and_converge() {
    let scale_free = ScenarioBuilder::large_scale_free(96)
        .instance_seed(7)
        .build();
    assert_eq!(scale_free.num_nodes(), 96);
    assert!(scale_free.topology().is_biconnected());
    let run = scale_free.run(1);
    assert!(!run.truncated);
    assert_eq!(run.tables_match_centralized(), Some(true));

    let grid = ScenarioBuilder::large_grid(8).instance_seed(7).build();
    assert_eq!(grid.num_nodes(), 64);
    let run = grid.run(1);
    assert!(!run.truncated);
    assert_eq!(run.tables_match_centralized(), Some(true));
}

/// Run-scoped caches and the sampled reference check change nothing
/// observable about a preset run (the large-n pin, plain engine).
#[test]
fn scoped_and_sampled_runs_match_the_full_global_path() {
    let build = |check: ReferenceCheck, scope: CacheScope| {
        ScenarioBuilder::large_scale_free(48)
            .instance_seed(3)
            .reference_check(check)
            .route_scope(scope)
            .build()
    };
    let full_global = build(ReferenceCheck::Full, CacheScope::global()).run(2);
    let sampled_scoped = build(
        ReferenceCheck::Sampled { sources: 8 },
        CacheScope::unbounded(),
    )
    .run(2);
    assert_eq!(full_global.utilities, sampled_scoped.utilities);
    assert_eq!(
        full_global.stats.total_msgs(),
        sampled_scoped.stats.total_msgs()
    );
    assert_eq!(full_global.tables_match_centralized(), Some(true));
    assert_eq!(sampled_scoped.tables_match_centralized(), Some(true));
}

/// An agent-sampled sweep at preset scale: cells evaluate, cells are
/// reproducible via `run_with_deviant` + `cell_seed` (the same identity
/// the full grid satisfies), and the sweep's scope shares the honest
/// cache across declaration-preserving cells.
#[test]
fn sampled_sweep_probes_large_instances() {
    let scenario = ScenarioBuilder::large_scale_free(48)
        .instance_seed(11)
        .build();
    let catalog = Catalog::from_factory(|_| vec![Box::new(MisreportCost { delta: 5 })]);
    let agents = [0usize, 47];
    let report = scenario.sweep_sampled(&[5], &catalog, &agents);
    assert_eq!(report.per_seed.len(), 1);
    let per_seed = &report.per_seed[0].1;
    assert_eq!(per_seed.outcomes.len(), agents.len());
    // Reproduce one sampled cell exactly.
    let outcome = &per_seed.outcomes[0];
    let rerun = scenario.run_with_deviant(
        NodeId::from_index(outcome.agent),
        Box::new(MisreportCost { delta: 5 }),
        specfaith::scenario::cell_seed(5, outcome.agent as u64, 0),
    );
    assert_eq!(outcome.deviant_utility, rerun.utilities[outcome.agent]);
    assert_eq!(outcome.detected, rerun.detected);
}

/// The sparse avoid-tree index at the real n = 1024: construction
/// allocates no avoid slots, queries allocate exactly one slot each —
/// memory proportional to trees computed, never n² (a dense table would
/// hold ~1M slots before the first query).
#[test]
fn avoid_tree_memory_is_query_proportional_at_n_1024() {
    let n = 1024;
    let mut rng = StdRng::seed_from_u64(2026);
    let topo = scale_free(n, 2, &mut rng);
    let costs = CostVector::random(n, 1, 20, &mut rng);
    let cache = RouteCache::new(topo, costs);
    assert_eq!(cache.avoid_trees_cached(), 0);
    // One source's VCG queries: an avoid tree per distinct on-path
    // transit — the per-source footprint of a reference check.
    let src = NodeId::from_index(0);
    let transits: std::collections::BTreeSet<NodeId> = cache
        .tree(src)
        .iter()
        .flatten()
        .flat_map(|path| path.transit_nodes().to_vec())
        .collect();
    for &k in &transits {
        let _ = cache.tree_avoiding(src, k);
    }
    assert_eq!(
        cache.avoid_trees_cached(),
        transits.len(),
        "exactly one slot per queried pair"
    );
    assert!(
        transits.len() < n,
        "a source's transit set is far below n² (got {})",
        transits.len()
    );
    assert_eq!(cache.trees_computed(), 1 + transits.len());
}
