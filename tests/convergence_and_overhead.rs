//! Distributed-equals-centralized convergence (experiment E4) and the
//! overhead of faithfulness (experiment E8) across topology families,
//! expressed entirely through the scenario builder.

use specfaith::prelude::*;

#[test]
fn convergence_on_topology_families() {
    let families: Vec<(&str, TopologySource)> = vec![
        ("ring-8", TopologySource::Ring(8)),
        ("wheel-7", TopologySource::Wheel(7)),
        ("grid-3x3", TopologySource::Grid(3, 3)),
        (
            "random-10",
            TopologySource::RandomBiconnected {
                n: 10,
                extra_edges: 5,
            },
        ),
        (
            "scale-free-10",
            TopologySource::ScaleFree {
                n: 10,
                attachments: 2,
            },
        ),
    ];
    for (label, topology) in families {
        let scenario = Scenario::builder()
            .topology(topology)
            .costs(CostModel::Random { lo: 0, hi: 12 })
            .traffic(TrafficModel::Random {
                flows: 3,
                max_packets: 2,
            })
            .instance_seed(77)
            .mechanism(Mechanism::Plain)
            .build();
        let run = scenario.run(5);
        assert!(!run.truncated, "{label} truncated");
        assert_eq!(
            run.tables_match_centralized(),
            Some(true),
            "{label}: distributed FPSS diverged from centralized VCG"
        );
    }
}

#[test]
fn faithful_lifecycle_works_on_topology_families() {
    let families: Vec<(&str, TopologySource)> = vec![
        ("ring-6", TopologySource::Ring(6)),
        ("wheel-6", TopologySource::Wheel(6)),
        ("grid-2x3", TopologySource::Grid(2, 3)),
    ];
    for (label, topology) in families {
        let scenario = Scenario::builder()
            .topology(topology)
            .costs(CostModel::Random { lo: 1, hi: 10 })
            .traffic(TrafficModel::Random {
                flows: 3,
                max_packets: 2,
            })
            .instance_seed(78)
            .mechanism(Mechanism::faithful())
            .build();
        let run = scenario.run(5);
        assert!(run.green_lighted(), "{label} failed to certify");
        assert!(!run.detected, "{label} false positive");
    }
}

#[test]
fn overhead_grows_but_stays_a_constant_factor() {
    let mut factors = Vec::new();
    for n in [6usize, 10, 14] {
        let scenario = Scenario::builder()
            .topology(TopologySource::RandomBiconnected {
                n,
                extra_edges: n / 2,
            })
            .costs(CostModel::Random { lo: 1, hi: 10 })
            .traffic(TrafficModel::Random {
                flows: 4,
                max_packets: 2,
            })
            .instance_seed(79 + n as u64)
            .build();
        let report = measure_overhead(scenario.topology(), scenario.costs(), scenario.traffic(), 5);
        assert!(report.msg_factor() > 1.0, "n={n}: {report}");
        assert!(
            report.msg_factor() < 25.0,
            "n={n}: overhead exploded: {report}"
        );
        factors.push(report.msg_factor());
    }
    // The paper's warning is about cost, not asymptotics: the factor
    // should not blow up with n (checkers are per-edge, a local notion).
    let spread = factors.iter().cloned().fold(f64::MIN, f64::max)
        / factors.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 6.0, "factor spread {spread}: {factors:?}");
}

#[test]
fn deterministic_runs_reproduce_exactly() {
    let net = figure1();
    let scenario = Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::Single {
            src: net.x,
            dst: net.z,
            packets: 5,
        })
        .mechanism(Mechanism::faithful())
        .build();
    let a = scenario.run(123);
    let b = scenario.run(123);
    assert_eq!(a.utilities, b.utilities);
    assert_eq!(a.stats.total_msgs(), b.stats.total_msgs());
    assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
}
