//! Distributed-equals-centralized convergence (experiment E4) and the
//! overhead of faithfulness (experiment E8) across topology families.

use rand::rngs::StdRng;
use rand::SeedableRng;
use specfaith::graph::generators::{grid, ring, wheel};
use specfaith::prelude::*;

#[test]
fn convergence_on_topology_families() {
    let mut rng = StdRng::seed_from_u64(77);
    let families: Vec<(&str, Topology)> = vec![
        ("ring-8", ring(8)),
        ("wheel-7", wheel(7)),
        ("grid-3x3", grid(3, 3)),
        ("random-10", random_biconnected(10, 5, &mut rng)),
    ];
    for (label, topo) in families {
        let n = topo.num_nodes();
        let costs = CostVector::random(n, 0, 12, &mut rng);
        let traffic = TrafficMatrix::random(n, 3, 2, &mut rng);
        let run = PlainFpssSim::new(topo, costs, traffic).run_faithful(5);
        assert!(!run.truncated, "{label} truncated");
        assert!(
            run.tables_match_centralized,
            "{label}: distributed FPSS diverged from centralized VCG"
        );
    }
}

#[test]
fn faithful_lifecycle_works_on_topology_families() {
    let mut rng = StdRng::seed_from_u64(78);
    let families: Vec<(&str, Topology)> = vec![
        ("ring-6", ring(6)),
        ("wheel-6", wheel(6)),
        ("grid-2x3", grid(2, 3)),
    ];
    for (label, topo) in families {
        let n = topo.num_nodes();
        let costs = CostVector::random(n, 1, 10, &mut rng);
        let traffic = TrafficMatrix::random(n, 3, 2, &mut rng);
        let run = FaithfulSim::new(topo, costs, traffic).run_faithful(5);
        assert!(run.green_lighted, "{label} failed to certify");
        assert!(!run.detected, "{label} false positive");
    }
}

#[test]
fn overhead_grows_but_stays_a_constant_factor() {
    let mut rng = StdRng::seed_from_u64(79);
    let mut factors = Vec::new();
    for n in [6usize, 10, 14] {
        let topo = random_biconnected(n, n / 2, &mut rng);
        let costs = CostVector::random(n, 1, 10, &mut rng);
        let traffic = TrafficMatrix::random(n, 4, 2, &mut rng);
        let report = measure_overhead(&topo, &costs, &traffic, 5);
        assert!(report.msg_factor() > 1.0, "n={n}: {report}");
        assert!(
            report.msg_factor() < 25.0,
            "n={n}: overhead exploded: {report}"
        );
        factors.push(report.msg_factor());
    }
    // The paper's warning is about cost, not asymptotics: the factor
    // should not blow up with n (checkers are per-edge, a local notion).
    let spread = factors.iter().cloned().fold(f64::MIN, f64::max)
        / factors.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 6.0, "factor spread {spread}: {factors:?}");
}

#[test]
fn deterministic_runs_reproduce_exactly() {
    let net = figure1();
    let traffic = TrafficMatrix::single(net.x, net.z, 5);
    let sim = FaithfulSim::new(net.topology.clone(), net.costs.clone(), traffic);
    let a = sim.run_faithful(123);
    let b = sim.run_faithful(123);
    assert_eq!(a.utilities, b.utilities);
    assert_eq!(a.stats.total_msgs(), b.stats.total_msgs());
    assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
}
