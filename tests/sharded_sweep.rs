//! The distributed-sweep guarantee: sharded execution merged back
//! together is **byte-identical** to the single-process sweep.
//!
//! Two layers pin this. The property test shows the strided shard
//! partition is a disjoint exact cover of the cell grid for *arbitrary*
//! shard counts (including more shards than cells). The integration
//! tests then run real scenarios — the paper's Figure 1 and the bench's
//! standard `n = 64` size — through `sweep_shard` / `SweepFragment::merge`
//! and `assert_eq!` the merged report (and its canonical JSON and
//! fingerprint) against the monolithic sweep, including a round trip of
//! every fragment through its JSON wire format. The CI `sweep-shards` /
//! `sweep-merge` job pair re-checks the same identity across machines via
//! the committed fingerprint baseline.

use proptest::prelude::*;
use specfaith::fpss::deviation::standard_catalog;
use specfaith::prelude::*;
use specfaith::scenario::Catalog;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every grid index lands in exactly one shard, for any (total,
    /// count) — count routinely exceeds total here, so empty shards are
    /// exercised too.
    #[test]
    fn shard_partition_is_a_disjoint_exact_cover(
        total in 0usize..300,
        count in 1usize..40,
    ) {
        let mut owners = vec![0u32; total];
        for index in 0..count {
            for cell in ShardSpec::new(index, count).cell_indices(total) {
                prop_assert!(cell < total, "shard {index}/{count} claimed out-of-grid cell {cell}");
                owners[cell] += 1;
            }
        }
        prop_assert!(
            owners.iter().all(|&claims| claims == 1),
            "partition of {total} cells into {count} shards is not an exact cover: {owners:?}"
        );
    }
}

fn figure1_scenario() -> Scenario {
    Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::single_by_index(5, 4, 4))
        .mechanism(Mechanism::faithful())
        .build()
}

/// The first two standard deviations — enough grid to shard, cheap
/// enough for debug-mode CI.
fn small_catalog() -> Catalog {
    Catalog::from_factory(|deviant| standard_catalog(deviant).into_iter().take(2).collect())
}

/// The headline pin at the bench's standard instance size: a sampled
/// `n = 64` sweep split three ways merges back byte-identical to the
/// monolithic run — same report, same canonical JSON, same fingerprint.
#[test]
fn merged_shards_are_byte_identical_to_the_monolithic_sweep_at_n64() {
    let scenario = Scenario::builder()
        .topology(TopologySource::RandomBiconnected {
            n: 64,
            extra_edges: 32,
        })
        .instance_seed(2004)
        .traffic(TrafficModel::single_by_index(0, 63, 3))
        .mechanism(Mechanism::Plain)
        .build();
    let catalog = small_catalog();
    let seeds = [2004u64];
    let agents = [0usize, 17, 63];

    let monolithic = scenario.sweep_sampled(&seeds, &catalog, &agents);
    let fragments: Vec<SweepFragment> = (0..3)
        .map(|index| {
            scenario.sweep_shard_sampled(
                &seeds,
                &catalog,
                &agents,
                ShardSpec::new(index, 3),
                "itest-n64",
            )
        })
        .collect();
    let merged = SweepFragment::merge(&fragments).expect("complete shard set merges");

    assert_eq!(merged, monolithic, "merged report diverged from monolithic");
    assert_eq!(merged.to_canonical_json(), monolithic.to_canonical_json());
    assert_eq!(merged.fingerprint(), monolithic.fingerprint());
}

/// Full-catalog, multi-seed Figure 1, with every fragment pushed through
/// its JSON wire format before merging — the exact path the CI job pair
/// exercises (emit fragment, parse fragment, merge).
#[test]
fn figure1_shards_round_trip_through_json_and_merge_to_the_full_sweep() {
    let scenario = figure1_scenario();
    let catalog = Catalog::standard();
    let seeds = [42u64, 43];

    let monolithic = scenario.sweep(&seeds, &catalog);
    let parsed: Vec<SweepFragment> = (0..4)
        .map(|index| {
            let fragment =
                scenario.sweep_shard(&seeds, &catalog, ShardSpec::new(index, 4), "itest-fig1");
            SweepFragment::from_json(&fragment.to_json()).expect("fragment JSON round-trips")
        })
        .collect();
    let merged = SweepFragment::merge(&parsed).expect("parsed fragments merge");

    assert_eq!(merged, monolithic);
    assert_eq!(merged.fingerprint(), monolithic.fingerprint());
    assert!(merged.is_ex_post_nash(), "{merged}");
}

/// More shards than grid cells: the surplus shards carry no cells but
/// still participate (and are required) in the merge.
#[test]
fn oversharded_figure1_sweep_still_merges_exactly() {
    let scenario = figure1_scenario();
    let catalog = small_catalog();
    let seeds = [9u64];
    let total_cells = 6 * catalog.len();
    let count = total_cells + 8;

    let fragments: Vec<SweepFragment> = (0..count)
        .map(|index| {
            scenario.sweep_shard(&seeds, &catalog, ShardSpec::new(index, count), "itest-over")
        })
        .collect();
    assert!(
        fragments.iter().any(|fragment| fragment.cells.is_empty()),
        "with {count} shards over {total_cells} cells some shards must be empty"
    );
    let merged = SweepFragment::merge(&fragments).expect("oversharded set merges");
    assert_eq!(merged, scenario.sweep(&seeds, &catalog));
}

/// Merge refuses incomplete shard sets and fragments from different
/// sweeps — the conflicts the CI merge job turns into exit code 3.
#[test]
fn merge_rejects_incomplete_and_mismatched_shard_sets() {
    let scenario = figure1_scenario();
    let catalog = small_catalog();
    let seeds = [5u64];

    let half0 = scenario.sweep_shard(&seeds, &catalog, ShardSpec::new(0, 2), "itest-a");
    let half1 = scenario.sweep_shard(&seeds, &catalog, ShardSpec::new(1, 2), "itest-a");
    let foreign = scenario.sweep_shard(&seeds, &catalog, ShardSpec::new(1, 2), "itest-b");

    assert!(matches!(
        SweepFragment::merge(std::slice::from_ref(&half0)),
        Err(MergeError::ShardSetIncomplete { .. })
    ));
    assert!(matches!(
        SweepFragment::merge(&[half0.clone(), foreign]),
        Err(MergeError::ManifestMismatch { .. })
    ));

    // Order-insensitive: the complete set merges regardless of argument
    // order.
    let merged = SweepFragment::merge(&[half1, half0]).expect("complete set merges");
    assert_eq!(merged, scenario.sweep(&seeds, &catalog));
}
