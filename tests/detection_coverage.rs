//! Detection coverage (experiment E7): every deviation in the standard
//! catalog that has any externally visible effect is flagged by the
//! enforcement layer, and the flagging mechanism matches the paper's
//! argument (construction deviations → hash mismatch → restart/halt;
//! execution deviations → reconciliation penalty).

use specfaith::fpss::deviation::standard_catalog;
use specfaith::prelude::*;

fn figure1_scenario() -> (specfaith::graph::generators::Figure1, Scenario) {
    let net = figure1();
    let scenario = Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::Flows(vec![
            Flow {
                src: net.x,
                dst: net.z,
                packets: 4,
            },
            Flow {
                src: net.d,
                dst: net.z,
                packets: 4,
            },
            Flow {
                src: net.z,
                dst: net.x,
                packets: 2,
            },
        ]))
        .mechanism(Mechanism::faithful())
        .build();
    (net, scenario)
}

/// Deviations with *effects* must be detected. Two catalog entries can be
/// no-ops for particular nodes (a node with no transit traffic "drops"
/// nothing; a cost misreport is legitimate information revelation, not a
/// detectable protocol violation), so coverage is asserted per category.
#[test]
fn construction_deviations_always_hash_mismatch() {
    let (net, scenario) = figure1_scenario();
    for deviant in [net.a, net.c, net.d] {
        for strategy in standard_catalog(deviant) {
            let spec = strategy.spec();
            if spec.phase() != Some("construction-2") {
                continue;
            }
            let run = scenario.run_with_deviant(deviant, strategy, 5);
            assert!(
                run.detected,
                "deviant {deviant} playing {spec} escaped detection"
            );
            assert!(
                !run.green_lighted(),
                "deviant {deviant} playing {spec} was green-lighted"
            );
        }
    }
}

#[test]
fn execution_deviations_are_penalized_when_effective() {
    let (net, scenario) = figure1_scenario();
    // C transits traffic; X pays. Both deviants have real opportunities.
    let cases = [
        (net.c, "drop-transit-packets"),
        (net.x, "underreport-payments(10%)"),
        (net.c, "drop-and-underreport"),
    ];
    for (deviant, name) in cases {
        let strategy = standard_catalog(deviant)
            .into_iter()
            .find(|s| s.spec().name() == name)
            .expect("catalog name");
        let run = scenario.run_with_deviant(deviant, strategy, 5);
        assert!(run.green_lighted(), "{name}: honest construction certifies");
        assert!(run.detected, "{name} escaped detection");
        assert!(
            run.penalties()[deviant.index()].is_positive(),
            "{name}: no penalty charged"
        );
    }
}

#[test]
fn cost_misreports_are_legitimate_but_useless() {
    // Information revelation is allowed to be untruthful — the mechanism
    // does not *detect* it, it makes it pointless (strategyproofness).
    let (net, scenario) = figure1_scenario();
    let faithful = scenario.run(5);
    for delta in [5i64, -1] {
        let strategy = standard_catalog(net.c)
            .into_iter()
            .find(|s| s.spec().name() == format!("misreport-cost({delta:+})"))
            .expect("catalog name");
        let run = scenario.run_with_deviant(net.c, strategy, 5);
        assert!(run.green_lighted(), "misreports still certify");
        assert!(
            run.utilities[net.c.index()] <= faithful.utilities[net.c.index()],
            "misreport({delta}) must not profit"
        );
    }
}

#[test]
fn faithful_baseline_triggers_nothing() {
    let (_, scenario) = figure1_scenario();
    for seed in [1u64, 2, 3] {
        let run = scenario.run(seed);
        assert!(!run.detected, "seed {seed}: false positive");
        assert_eq!(run.restarts(), 0);
        assert!(run.penalties().iter().all(|p| *p == Money::ZERO));
    }
}

#[test]
fn detection_rate_in_sweep_matches_expectation() {
    let (_, scenario) = figure1_scenario();
    let report = scenario.equilibrium_report(5, &Catalog::standard());
    // Every *effective* deviation is detected; ineffective ones (no-op for
    // that node) and legitimate misreports are not. The overall rate must
    // be well above half on this traffic pattern.
    let rate = report.detection_rate().expect("deviations were tested");
    assert!(rate > 0.5, "detection rate {rate}");
    // And crucially: every undetected deviation is also unprofitable.
    for outcome in &report.outcomes {
        if !outcome.detected {
            assert!(
                !outcome.strictly_profitable(),
                "undetected AND profitable: {}",
                outcome.deviation
            );
        }
    }
}
