//! Integration test for the paper's Theorem 1: the extended FPSS
//! specification is a faithful implementation — the full deviation catalog
//! is unprofitable for every node, across topologies and cost profiles.

use rand::rngs::StdRng;
use rand::SeedableRng;
use specfaith::core::faithfulness::FaithfulnessCertificate;
use specfaith::core::mechanism::{check_strategyproof, MisreportGrid};
use specfaith::core::vcg::VcgMechanism;
use specfaith::fpss::pricing::RoutingProblem;
use specfaith::prelude::*;

fn figure1_scenario(traffic: Vec<Flow>, mechanism: Mechanism) -> Scenario {
    Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::Flows(traffic))
        .mechanism(mechanism)
        .build()
}

#[test]
fn figure1_is_ex_post_nash_under_the_catalog() {
    let net = figure1();
    let scenario = figure1_scenario(
        vec![
            Flow {
                src: net.x,
                dst: net.z,
                packets: 4,
            },
            Flow {
                src: net.d,
                dst: net.z,
                packets: 4,
            },
        ],
        Mechanism::faithful(),
    );
    let report = scenario.equilibrium_report(9, &Catalog::standard());
    assert!(report.is_ex_post_nash(), "{report}");
    assert!(report.strong_cc_holds());
    assert!(report.strong_ac_holds());
    assert!(report.ic_holds());
}

#[test]
fn random_instances_are_ex_post_nash() {
    for seed in [1u64, 2] {
        let scenario = Scenario::builder()
            .topology(TopologySource::RandomBiconnected {
                n: 6,
                extra_edges: 3,
            })
            .costs(CostModel::Random { lo: 1, hi: 20 })
            .traffic(TrafficModel::Random {
                flows: 4,
                max_packets: 3,
            })
            .instance_seed(seed)
            .mechanism(Mechanism::faithful())
            .build();
        let report = scenario.equilibrium_report(seed, &Catalog::standard());
        assert!(report.is_ex_post_nash(), "seed {seed}: {report}");
    }
}

#[test]
fn proposition2_certificate_assembles_faithful() {
    // Leg 1: centralized strategyproofness on the same instance.
    let net = figure1();
    let flows = vec![(net.x, net.z, 4u64), (net.d, net.z, 4)];
    let mech = VcgMechanism::new(RoutingProblem::new(net.topology.clone(), flows.clone()));
    let mut rng = StdRng::seed_from_u64(5);
    let mut profiles = vec![net.costs.as_slice().to_vec()];
    for _ in 0..4 {
        profiles.push(CostVector::random(6, 0, 25, &mut rng).as_slice().to_vec());
    }
    let sp = check_strategyproof(&mech, &profiles, &MisreportGrid::standard());
    assert!(sp.is_strategyproof(), "{sp}");

    // Legs 2–3: deviation sweeps on two cost profiles.
    let traffic: Vec<Flow> = flows
        .iter()
        .map(|&(src, dst, packets)| Flow { src, dst, packets })
        .collect();
    let catalog = Catalog::standard();
    let mut suite = EquilibriumSuite::new();
    for (label, costs) in [
        ("paper-costs", net.costs.clone()),
        ("uniform-costs", CostVector::uniform(6, 3)),
    ] {
        let scenario = Scenario::builder()
            .topology(TopologySource::Figure1)
            .costs(CostModel::Explicit(costs))
            .traffic(TrafficModel::Flows(traffic.clone()))
            .mechanism(Mechanism::faithful())
            .build();
        suite.push(label, scenario.equilibrium_report(1, &catalog));
    }
    let certificate = FaithfulnessCertificate::assemble(sp.is_strategyproof(), &suite);
    assert!(certificate.is_faithful(), "{certificate}");
    // The catalog covers all three phases.
    assert_eq!(certificate.phases.len(), 3, "{certificate}");
}

#[test]
fn plain_fpss_fails_exactly_where_faithful_holds() {
    // The same deviations that Theorem 1 neutralizes are profitable in
    // plain FPSS — the contrast that motivates the whole construction.
    // In scenario terms: flip one Mechanism knob, keep everything else.
    use specfaith::fpss::deviation::{DropTransitPackets, UnderreportPayments};

    let net = figure1();
    let traffic = vec![
        Flow {
            src: net.x,
            dst: net.z,
            packets: 4,
        },
        Flow {
            src: net.d,
            dst: net.z,
            packets: 4,
        },
    ];
    let plain = figure1_scenario(traffic.clone(), Mechanism::Plain);
    let faithful = figure1_scenario(traffic, Mechanism::faithful());
    let plain_base = plain.run(3);
    let faithful_base = faithful.run(3);

    // Transit C dropping packets: profitable in plain, losing in faithful.
    let plain_drop = plain.run_with_deviant(net.c, Box::new(DropTransitPackets), 3);
    assert!(plain_drop.utilities[net.c.index()] > plain_base.utilities[net.c.index()]);
    let faithful_drop = faithful.run_with_deviant(net.c, Box::new(DropTransitPackets), 3);
    assert!(faithful_drop.utilities[net.c.index()] < faithful_base.utilities[net.c.index()]);

    // Payer X underreporting: profitable in plain, losing in faithful.
    let cheat = || Box::new(UnderreportPayments { keep_percent: 0 });
    let plain_cheat = plain.run_with_deviant(net.x, cheat(), 3);
    assert!(plain_cheat.utilities[net.x.index()] > plain_base.utilities[net.x.index()]);
    let faithful_cheat = faithful.run_with_deviant(net.x, cheat(), 3);
    assert!(faithful_cheat.utilities[net.x.index()] < faithful_base.utilities[net.x.index()]);
}
