//! Canonical table hashing for bank checkpoints.
//!
//! \[BANK1\]/\[BANK2\] compare routing/pricing tables between principals and
//! checkers by hash. For the comparison to be meaningful, two semantically
//! equal tables must hash identically regardless of which node produced
//! them — so this hasher defines a canonical, self-delimiting encoding:
//! every field is written with a fixed-width tag and length, and callers
//! feed table rows in a canonical (sorted) order.

use crate::sha256::{Digest, Sha256};

/// Streaming canonical hasher for structured table data.
///
/// Each `put_*` call writes a 1-byte type tag followed by fixed-width
/// big-endian bytes, making the encoding prefix-free: no two distinct
/// field sequences share an encoding.
///
/// # Example
///
/// ```
/// use specfaith_crypto::tablehash::TableHasher;
///
/// let mut a = TableHasher::new("routing-table");
/// a.put_u32(1).put_u64(20).put_i64(-3);
/// let mut b = TableHasher::new("routing-table");
/// b.put_u32(1).put_u64(20).put_i64(-3);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Clone, Debug)]
pub struct TableHasher {
    inner: Sha256,
}

impl TableHasher {
    /// Starts a hash for a table with the given domain label.
    ///
    /// The label separates hash domains, so a routing table and a pricing
    /// table with coincidentally identical bytes never collide.
    pub fn new(domain: &str) -> Self {
        let mut inner = Sha256::new();
        inner.update(&(domain.len() as u64).to_be_bytes());
        inner.update(domain.as_bytes());
        TableHasher { inner }
    }

    /// Feeds a `u32` field.
    pub fn put_u32(&mut self, value: u32) -> &mut Self {
        self.inner.update(&[0x01]);
        self.inner.update(&value.to_be_bytes());
        self
    }

    /// Feeds a `u64` field.
    pub fn put_u64(&mut self, value: u64) -> &mut Self {
        self.inner.update(&[0x02]);
        self.inner.update(&value.to_be_bytes());
        self
    }

    /// Feeds an `i64` field.
    pub fn put_i64(&mut self, value: i64) -> &mut Self {
        self.inner.update(&[0x03]);
        self.inner.update(&value.to_be_bytes());
        self
    }

    /// Feeds a length-prefixed byte string.
    pub fn put_bytes(&mut self, value: &[u8]) -> &mut Self {
        self.inner.update(&[0x04]);
        self.inner.update(&(value.len() as u64).to_be_bytes());
        self.inner.update(value);
        self
    }

    /// Feeds a marker separating table rows.
    ///
    /// Row markers keep `[row(a,b)][row(c)]` distinct from
    /// `[row(a)][row(b,c)]`.
    pub fn row_boundary(&mut self) -> &mut Self {
        self.inner.update(&[0x05]);
        self
    }

    /// Finishes and returns the table digest.
    pub fn finish(self) -> Digest {
        self.inner.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_sequences_hash_equal() {
        let mut a = TableHasher::new("t");
        a.put_u32(7).row_boundary().put_i64(-1);
        let mut b = TableHasher::new("t");
        b.put_u32(7).row_boundary().put_i64(-1);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn domains_separate() {
        let mut a = TableHasher::new("routing");
        a.put_u32(7);
        let mut b = TableHasher::new("pricing");
        b.put_u32(7);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn type_tags_prevent_cross_width_collisions() {
        // u32(0) followed by u32(1) must differ from u64(1).
        let mut a = TableHasher::new("t");
        a.put_u32(0).put_u32(1);
        let mut b = TableHasher::new("t");
        b.put_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn row_boundaries_disambiguate_grouping() {
        let mut a = TableHasher::new("t");
        a.put_u32(1).put_u32(2).row_boundary().put_u32(3);
        let mut b = TableHasher::new("t");
        b.put_u32(1).row_boundary().put_u32(2).put_u32(3);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_strings_are_length_prefixed() {
        let mut a = TableHasher::new("t");
        a.put_bytes(b"ab").put_bytes(b"c");
        let mut b = TableHasher::new("t");
        b.put_bytes(b"a").put_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn domain_label_is_length_prefixed() {
        // "ab" + field vs "a" + different-first-field must not collide via
        // label/field boundary ambiguity.
        let mut a = TableHasher::new("ab");
        a.put_bytes(b"");
        let mut b = TableHasher::new("a");
        b.put_bytes(b"b");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn single_field_change_changes_digest() {
        let mut a = TableHasher::new("t");
        a.put_u64(100).put_i64(5);
        let mut b = TableHasher::new("t");
        b.put_u64(100).put_i64(6);
        assert_ne!(a.finish(), b.finish());
    }
}
