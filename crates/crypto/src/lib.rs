//! # specfaith-crypto
//!
//! Cryptographic substrate for the faithful FPSS extension.
//!
//! The paper's §4.2 needs two primitives:
//!
//! 1. **Table hashing** — the bank compares routing/pricing tables between a
//!    principal and its checkers, and "a hash of the entire table is
//!    sufficient" (\[BANK1\]/\[BANK2\]). [`mod@sha256`] implements FIPS 180-4
//!    SHA-256 from scratch (no dependencies), and [`TableHasher`] provides
//!    canonical hashing helpers for tables.
//! 2. **Signed bank channels** — "all communication between the bank and a
//!    node is signed with acknowledgments to ensure communication
//!    compatibility". [`mac`] implements HMAC-SHA256, and [`auth`] builds a
//!    per-node authenticated channel on top of it.
//!
//! ## Substitution note (documented in DESIGN.md)
//!
//! The paper assumes generic "signing". Because the *only verifier* of these
//! messages is the trusted bank, a per-node key shared with the bank plus
//! HMAC gives the same guarantee on that channel — transit nodes can neither
//! forge nor undetectably modify node↔bank messages — without needing
//! public-key cryptography.

pub mod auth;
pub mod mac;
pub mod sha256;
pub mod tablehash;

pub use auth::{AuthError, Authenticated, ChannelKey};
pub use mac::hmac_sha256;
pub use sha256::{sha256, Digest, Sha256};
pub use tablehash::TableHasher;
