//! Authenticated node↔bank channel.
//!
//! §4.2: "All communication between the bank and a node is signed with
//! acknowledgments to ensure communication compatibility of these
//! messages." Each node holds a [`ChannelKey`] shared with the bank;
//! [`ChannelKey::seal`] attaches an HMAC tag binding the payload bytes, the
//! sender identity, and a sequence number (preventing replay of stale
//! payment reports); the bank's [`ChannelKey::open`] verifies all three.

use crate::mac::{hmac_sha256, verify_mac};
use crate::sha256::Digest;
use std::fmt;

/// A symmetric key shared between one node and the bank.
#[derive(Clone, PartialEq, Eq)]
pub struct ChannelKey {
    key: [u8; 32],
    owner: u32,
}

impl fmt::Debug for ChannelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "ChannelKey(owner=n{})", self.owner)
    }
}

/// A payload together with its authentication envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Authenticated {
    /// Claimed sender (raw node id).
    pub sender: u32,
    /// Monotonic per-sender sequence number.
    pub sequence: u64,
    /// The payload bytes.
    pub payload: Vec<u8>,
    /// HMAC over `(sender, sequence, payload)`.
    pub tag: Digest,
}

/// Why verification failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuthError {
    /// The tag does not match the payload/sender/sequence.
    BadTag,
    /// The message claims a different sender than the key's owner.
    WrongSender,
    /// The sequence number did not advance (replay or reordering).
    StaleSequence {
        /// Highest sequence number accepted so far.
        last_accepted: u64,
    },
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::BadTag => f.write_str("MAC verification failed"),
            AuthError::WrongSender => f.write_str("sender does not own this channel key"),
            AuthError::StaleSequence { last_accepted } => {
                write!(f, "stale sequence (last accepted {last_accepted})")
            }
        }
    }
}

impl std::error::Error for AuthError {}

impl ChannelKey {
    /// Derives a per-node key from bank key material and the node id.
    ///
    /// In production the bank would generate independent random keys; a
    /// deterministic KDF keeps simulator runs reproducible while preserving
    /// the property that distinct nodes hold unrelated keys.
    pub fn derive(bank_secret: &[u8], owner: u32) -> Self {
        let tag = hmac_sha256(bank_secret, &owner.to_be_bytes());
        ChannelKey {
            key: *tag.as_bytes(),
            owner,
        }
    }

    /// The node this key belongs to (raw id).
    pub fn owner(&self) -> u32 {
        self.owner
    }

    fn mac(&self, sender: u32, sequence: u64, payload: &[u8]) -> Digest {
        let mut message = Vec::with_capacity(12 + payload.len());
        message.extend_from_slice(&sender.to_be_bytes());
        message.extend_from_slice(&sequence.to_be_bytes());
        message.extend_from_slice(payload);
        hmac_sha256(&self.key, &message)
    }

    /// Seals a payload for transmission to (or from) the bank.
    pub fn seal(&self, sequence: u64, payload: Vec<u8>) -> Authenticated {
        let tag = self.mac(self.owner, sequence, &payload);
        Authenticated {
            sender: self.owner,
            sequence,
            payload,
            tag,
        }
    }

    /// Verifies an envelope and enforces sequence freshness.
    ///
    /// `last_accepted` is the highest sequence number previously accepted
    /// from this sender (use 0 before any message; sequence numbers start
    /// at 1).
    ///
    /// # Errors
    ///
    /// [`AuthError::WrongSender`] if the envelope claims a different owner,
    /// [`AuthError::BadTag`] on MAC mismatch, and
    /// [`AuthError::StaleSequence`] when the sequence does not advance.
    pub fn open(&self, envelope: &Authenticated, last_accepted: u64) -> Result<Vec<u8>, AuthError> {
        if envelope.sender != self.owner {
            return Err(AuthError::WrongSender);
        }
        let expected = self.mac(envelope.sender, envelope.sequence, &envelope.payload);
        if !verify_mac(&expected, &envelope.tag) {
            return Err(AuthError::BadTag);
        }
        if envelope.sequence <= last_accepted {
            return Err(AuthError::StaleSequence { last_accepted });
        }
        Ok(envelope.payload.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ChannelKey {
        ChannelKey::derive(b"bank-root-secret", 7)
    }

    #[test]
    fn roundtrip() {
        let k = key();
        let env = k.seal(1, b"payment report".to_vec());
        assert_eq!(k.open(&env, 0).expect("valid"), b"payment report");
    }

    #[test]
    fn tampered_payload_rejected() {
        let k = key();
        let mut env = k.seal(1, b"owe 10".to_vec());
        env.payload = b"owe 00".to_vec();
        assert_eq!(k.open(&env, 0), Err(AuthError::BadTag));
    }

    #[test]
    fn tampered_tag_rejected() {
        let k = key();
        let mut env = k.seal(1, b"owe 10".to_vec());
        let mut raw = *env.tag.as_bytes();
        raw[31] ^= 0xff;
        env.tag = Digest(raw);
        assert_eq!(k.open(&env, 0), Err(AuthError::BadTag));
    }

    #[test]
    fn forged_sender_rejected() {
        let k = key();
        let other = ChannelKey::derive(b"bank-root-secret", 8);
        // Node 8 tries to pass off a message as node 7.
        let mut env = other.seal(1, b"impersonation".to_vec());
        env.sender = 7;
        assert_eq!(k.open(&env, 0), Err(AuthError::BadTag));
    }

    #[test]
    fn wrong_owner_claim_rejected() {
        let k = key();
        let env = ChannelKey::derive(b"bank-root-secret", 8).seal(1, b"x".to_vec());
        assert_eq!(k.open(&env, 0), Err(AuthError::WrongSender));
    }

    #[test]
    fn replay_rejected() {
        let k = key();
        let env = k.seal(3, b"report".to_vec());
        assert!(k.open(&env, 0).is_ok());
        assert_eq!(
            k.open(&env, 3),
            Err(AuthError::StaleSequence { last_accepted: 3 })
        );
    }

    #[test]
    fn distinct_owners_get_unrelated_keys() {
        let a = ChannelKey::derive(b"secret", 1);
        let b = ChannelKey::derive(b"secret", 2);
        assert_ne!(a.seal(1, b"m".to_vec()).tag, b.seal(1, b"m".to_vec()).tag);
    }

    #[test]
    fn debug_never_leaks_key_material() {
        let k = key();
        let shown = format!("{k:?}");
        assert_eq!(shown, "ChannelKey(owner=n7)");
    }

    #[test]
    fn sequence_binding_prevents_tag_reuse_across_sequences() {
        let k = key();
        let env1 = k.seal(1, b"m".to_vec());
        let mut env2 = env1.clone();
        env2.sequence = 2;
        assert_eq!(k.open(&env2, 1), Err(AuthError::BadTag));
    }
}
