//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The bank's checkpointing protocol compares hashes of routing and pricing
//! tables between principals and checkers, so the hash must be identical
//! across nodes and runs. This implementation is a direct transcription of
//! the FIPS 180-4 specification, validated against the published test
//! vectors (see the test module).

use std::fmt;

/// A 256-bit digest.
///
/// # Example
///
/// ```
/// use specfaith_crypto::sha256::sha256;
///
/// let d = sha256(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lowercase hex rendering of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for byte in self.0 {
            s.push_str(&format!("{byte:02x}"));
        }
        s
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", &self.to_hex()[..8])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use specfaith_crypto::sha256::{sha256, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), sha256(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bits: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sha256({} bits ingested)", self.length_bits)
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.length_bits = self
            .length_bits
            .checked_add((data.len() as u64) * 8)
            .expect("message too long for SHA-256");
        let mut input = data;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut buf = [0u8; 64];
            buf.copy_from_slice(block);
            self.compress(&buf);
            input = rest;
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let length_bits = self.length_bits;
        // Append 0x80, pad with zeros to 56 mod 64, then the 64-bit length.
        self.buffer[self.buffered] = 0x80;
        self.buffered += 1;
        if self.buffered > 56 {
            for byte in &mut self.buffer[self.buffered..] {
                *byte = 0;
            }
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
        }
        for byte in &mut self.buffer[self.buffered..56] {
            *byte = 0;
        }
        self.buffer[56..].copy_from_slice(&length_bits.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVP test vectors.
    #[test]
    fn empty_message() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn exactly_one_block_padding_boundary() {
        // 55 bytes: padding fits in the same block; 56 bytes: needs an extra.
        let d55 = sha256(&[b'x'; 55]);
        let d56 = sha256(&[b'x'; 56]);
        let d64 = sha256(&[b'x'; 64]);
        assert_ne!(d55, d56);
        assert_ne!(d56, d64);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        for chunk_size in [1usize, 3, 7, 63, 64, 65, 128, 500] {
            let mut h = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk size {chunk_size}");
        }
    }

    #[test]
    fn digest_display_and_debug() {
        let d = sha256(b"abc");
        assert_eq!(d.to_string(), d.to_hex());
        assert!(format!("{d:?}").starts_with("Digest(ba7816bf"));
    }

    #[test]
    fn digests_differ_on_single_bit_flip() {
        let a = sha256(b"faithful");
        let b = sha256(b"faithfum");
        assert_ne!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn incremental_matches_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
            let split = split.min(data.len());
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), sha256(&data));
        }

        #[test]
        fn different_lengths_of_zeros_differ(a in 0usize..512, b in 0usize..512) {
            prop_assume!(a != b);
            prop_assert_ne!(sha256(&vec![0u8; a]), sha256(&vec![0u8; b]));
        }
    }
}
