//! Centralized VCG reference for FPSS routing.
//!
//! `pᵏᵢⱼ = ĉ_k + d_{G−k}(i,j) − d_G(i,j)` computed directly with graph
//! queries. The distributed computation in [`crate::compute`] must converge
//! to exactly these values (property-tested in [`crate::runner`]); checkers
//! rely on that equality, and the strategyproofness of the whole mechanism
//! (Proposition 2's first leg) is tested against this reference via
//! [`RoutingProblem`].

use crate::state::{PricingTable, RoutingTable};
use specfaith_core::id::NodeId;
use specfaith_core::money::{Cost, Money};
use specfaith_core::vcg::CostMinimizationProblem;
use specfaith_graph::cache::{CacheScope, RouteCache};
use specfaith_graph::costs::CostVector;
use specfaith_graph::lcp::{lcp_tree, lcp_tree_avoiding};
use specfaith_graph::path::PathMetric;
use specfaith_graph::topology::Topology;

/// The VCG per-packet payment from `src` to transit `k` for traffic to
/// `dst`, borrowing every route from `routes`. Returns `None` when `k` is
/// not a transit node on the `src`→`dst` LCP (no payment due), or when
/// `src` cannot reach `dst`.
///
/// This is the primary implementation: both the `src` tree and the
/// `(src, k)` avoid tree are computed at most once per [`RouteCache`],
/// shared across every destination and every caller of the cache. The
/// avoid tree itself is no longer a fresh `d_{G−k}` Dijkstra: the cache
/// repairs it from its own `src` tree (re-relaxing only the subtree
/// detached by removing `k` — see [`specfaith_graph::repair`]), which is
/// exactly equivalent and pinned so by the repair-equivalence suite.
///
/// # Panics
///
/// Panics if the graph is not biconnected enough for the query (no
/// `k`-avoiding path), mirroring FPSS's biconnectivity assumption.
pub fn vcg_payment_in(routes: &RouteCache, src: NodeId, dst: NodeId, k: NodeId) -> Option<Money> {
    let best = routes.path(src, dst)?;
    if !best.transit_nodes().contains(&k) {
        return None;
    }
    let avoid_tree = routes.tree_avoiding(src, k);
    Some(payment_from_tree(routes.costs(), best, &avoid_tree, dst, k))
}

/// The payment formula given the LCP and a prefetched `(src, k)` avoid
/// tree — the shared core of [`vcg_payment_in`] and the per-source table
/// builder (which hoists the avoid-tree handle out of its destination
/// loop instead of re-fetching it per query).
///
/// # Panics
///
/// Panics if the avoid tree has no `dst` entry (the graph is not
/// biconnected enough for the query).
fn payment_from_tree(
    costs: &CostVector,
    best: &PathMetric,
    avoid_tree: &[Option<PathMetric>],
    dst: NodeId,
    k: NodeId,
) -> Money {
    let detour = avoid_tree[dst.index()]
        .as_ref()
        .expect("biconnected graph admits a k-avoiding path");
    let c_k = costs.cost(k).value() as i64;
    let d = best.cost().value() as i64;
    let d_avoid = detour.cost().value() as i64;
    Money::new(c_k + d_avoid - d)
}

/// [`vcg_payment_in`] against `scope`'s [`RouteCache`] for
/// `(topo, declared)` — repeated calls under the same declared costs
/// share all Dijkstra work with every other user of the scope.
pub fn vcg_payment_scoped(
    scope: &CacheScope,
    topo: &Topology,
    declared: &CostVector,
    src: NodeId,
    dst: NodeId,
    k: NodeId,
) -> Option<Money> {
    vcg_payment_in(&scope.cache(topo, declared), src, dst, k)
}

/// [`vcg_payment_in`] against the process-shared [`RouteCache`] for
/// `(topo, declared)` — the compatibility default for callers with no
/// [`CacheScope`] of their own.
pub fn vcg_payment(
    topo: &Topology,
    declared: &CostVector,
    src: NodeId,
    dst: NodeId,
    k: NodeId,
) -> Option<Money> {
    vcg_payment_scoped(&CacheScope::global(), topo, declared, src, dst, k)
}

/// The routing and pricing tables node `src` *should* converge to under
/// `routes`' declared costs — one source's slice of
/// [`expected_tables_in`], for callers (large-`n` sampled reference
/// checks) that must not pay for all `n` sources.
pub fn expected_tables_for(routes: &RouteCache, src: NodeId) -> (RoutingTable, PricingTable) {
    let tree = routes.tree(src);
    let mut routing = RoutingTable::new();
    let mut pricing = PricingTable::new();
    // The same transit recurs across many destinations of one source;
    // fetch each (src, k) avoid-tree handle from the sparse index once
    // and index it per destination.
    let mut avoid_trees: std::collections::BTreeMap<NodeId, specfaith_graph::cache::AvoidTree> =
        std::collections::BTreeMap::new();
    for entry in tree.iter().flatten() {
        let dst = entry.destination();
        routing.install(dst, entry.nodes().to_vec());
        for &k in entry.transit_nodes() {
            let avoid_tree = avoid_trees
                .entry(k)
                .or_insert_with(|| routes.tree_avoiding(src, k));
            let price = payment_from_tree(routes.costs(), entry, avoid_tree, dst, k);
            pricing.insert(
                dst,
                k,
                crate::state::PriceEntry {
                    price,
                    tags: Default::default(),
                },
            );
        }
    }
    (routing, pricing)
}

/// The routing and pricing tables every node *should* converge to under
/// `routes`' declared costs: `(routing[i], pricing[i])` per node.
///
/// Pricing tags are not modeled centrally (they are an artifact of the
/// distributed iteration); comparisons against this reference use paths
/// and prices only.
pub fn expected_tables_in(routes: &RouteCache) -> Vec<(RoutingTable, PricingTable)> {
    routes
        .topology()
        .nodes()
        .map(|src| expected_tables_for(routes, src))
        .collect()
}

/// [`expected_tables_in`] against `scope`'s [`RouteCache`] for
/// `(topo, declared)` — run engines pass their run-scoped cache registry
/// here so every cell of a sweep shares (and then releases) the reference
/// Dijkstra work.
pub fn expected_tables_scoped(
    scope: &CacheScope,
    topo: &Topology,
    declared: &CostVector,
) -> Vec<(RoutingTable, PricingTable)> {
    expected_tables_in(&scope.cache(topo, declared))
}

/// [`expected_tables_in`] against the process-shared [`RouteCache`] for
/// `(topo, declared)` — the compatibility default for callers with no
/// [`CacheScope`] of their own.
pub fn expected_tables(
    topo: &Topology,
    declared: &CostVector,
) -> Vec<(RoutingTable, PricingTable)> {
    expected_tables_scoped(&CacheScope::global(), topo, declared)
}

/// One source's slice of [`expected_tables_uncached`]: the pre-`RouteCache`
/// per-pair-query reference path, for the large-`n` benchmark arm (where
/// all `n` uncached sources would take hours, a sampled handful minutes).
///
/// Retained **only** for benchmark reference arms; never call this from
/// product code. Unlike the cached path, every avoid tree here is a
/// fresh `d_{G−k}` Dijkstra via [`lcp_tree_avoiding`] — this arm is the
/// independent oracle the repaired trees are measured against.
#[doc(hidden)]
pub fn expected_tables_uncached_for(
    topo: &Topology,
    declared: &CostVector,
    src: NodeId,
) -> (RoutingTable, PricingTable) {
    let pair_query = |src: NodeId, dst: NodeId| lcp_tree(topo, declared, src)[dst.index()].clone();
    let avoid_query = |src: NodeId, dst: NodeId, k: NodeId| {
        lcp_tree_avoiding(topo, declared, src, Some(k))[dst.index()].clone()
    };
    let tree = lcp_tree(topo, declared, src);
    let mut routing = RoutingTable::new();
    let mut pricing = PricingTable::new();
    for entry in tree.iter().flatten() {
        let dst = entry.destination();
        routing.install(dst, entry.nodes().to_vec());
        for &k in entry.transit_nodes() {
            let best = pair_query(src, dst).expect("dst on tree");
            let detour =
                avoid_query(src, dst, k).expect("biconnected graph admits a k-avoiding path");
            let price = Money::new(
                declared.cost(k).value() as i64 + detour.cost().value() as i64
                    - best.cost().value() as i64,
            );
            pricing.insert(
                dst,
                k,
                crate::state::PriceEntry {
                    price,
                    tags: Default::default(),
                },
            );
        }
    }
    (routing, pricing)
}

/// The pre-`RouteCache` reference implementation: every single-pair query
/// recomputes (and clones from) a full per-source tree, exactly as
/// `lcp()`/`lcp_avoiding()` did before their deprecation.
///
/// Retained **only** so the sweep regression benchmark can measure the
/// uncached baseline on the same machine as the cached path; never call
/// this from product code.
#[doc(hidden)]
pub fn expected_tables_uncached(
    topo: &Topology,
    declared: &CostVector,
) -> Vec<(RoutingTable, PricingTable)> {
    topo.nodes()
        .map(|src| expected_tables_uncached_for(topo, declared, src))
        .collect()
}

/// Compares a node's converged tables against the centralized reference,
/// ignoring pricing tags. Returns `true` on exact agreement of paths and
/// prices.
pub fn tables_agree(
    routing: &RoutingTable,
    pricing: &PricingTable,
    expected_routing: &RoutingTable,
    expected_pricing: &PricingTable,
) -> bool {
    if routing
        .iter()
        .any(|(dst, path)| expected_routing.path(dst) != Some(path))
        || expected_routing
            .iter()
            .any(|(dst, path)| routing.path(dst) != Some(path))
    {
        return false;
    }
    let prices_of = |t: &PricingTable| -> Vec<((NodeId, NodeId), Money)> {
        t.iter().map(|(k, e)| (k, e.price)).collect()
    };
    prices_of(pricing) == prices_of(expected_pricing)
}

/// The whole FPSS routing mechanism as a centralized cost-minimization
/// problem, for the strategyproofness tester (experiment E3): given a
/// traffic matrix, the allocation is the set of LCPs under declared costs,
/// and each node's cost is its true transit cost times the packets it
/// carries.
#[derive(Clone, Debug)]
pub struct RoutingProblem {
    topo: Topology,
    /// `(src, dst, packets)` flows.
    flows: Vec<(NodeId, NodeId, u64)>,
    /// Problem-scoped route caches: a strategyproofness check sweeps a
    /// misreport grid of declared-cost vectors, each wanting its own
    /// cache; scoping them to the problem keeps them from thrashing (or
    /// being thrashed by) the process-wide registry, and releases them
    /// when the problem drops.
    routes: CacheScope,
}

impl RoutingProblem {
    /// A routing problem over a biconnected topology and traffic flows.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not biconnected (VCG would be ill-defined)
    /// or a flow's endpoints coincide.
    pub fn new(topo: Topology, flows: Vec<(NodeId, NodeId, u64)>) -> Self {
        assert!(topo.is_biconnected(), "FPSS requires a biconnected graph");
        assert!(
            flows.iter().all(|&(s, d, _)| s != d),
            "flows need distinct endpoints"
        );
        RoutingProblem {
            topo,
            flows,
            routes: CacheScope::unbounded(),
        }
    }

    fn total_cost(&self, paths: &[PathMetric]) -> Money {
        self.flows
            .iter()
            .zip(paths)
            .map(|(&(_, _, packets), path)| {
                Money::new(path.cost().value() as i64).scale(packets as i64)
            })
            .sum()
    }
}

impl CostMinimizationProblem for RoutingProblem {
    type Decl = Cost;
    type Alloc = Vec<PathMetric>;

    fn num_agents(&self) -> usize {
        self.topo.num_nodes()
    }

    fn optimal(&self, decls: &[Cost]) -> Option<(Vec<PathMetric>, Money)> {
        let declared = CostVector::from_costs(decls.to_vec());
        let routes = self.routes.cache(&self.topo, &declared);
        let paths: Option<Vec<PathMetric>> = self
            .flows
            .iter()
            .map(|&(src, dst, _)| routes.path(src, dst).cloned())
            .collect();
        let paths = paths?;
        let total = self.total_cost(&paths);
        Some((paths, total))
    }

    fn optimal_excluding(
        &self,
        decls: &[Cost],
        excluded: usize,
    ) -> Option<(Vec<PathMetric>, Money)> {
        let declared = CostVector::from_costs(decls.to_vec());
        let routes = self.routes.cache(&self.topo, &declared);
        let avoid = NodeId::from_index(excluded);
        let paths: Option<Vec<PathMetric>> = self
            .flows
            .iter()
            .map(|&(src, dst, _)| {
                if src == avoid || dst == avoid {
                    // The excluded node's own traffic endpoints are
                    // unaffected by its exclusion as a *transit*.
                    routes.path(src, dst).cloned()
                } else {
                    routes.path_avoiding(src, dst, avoid)
                }
            })
            .collect();
        let paths = paths?;
        let total = self.total_cost(&paths);
        Some((paths, total))
    }

    fn cost_under(&self, decl: &Cost, alloc: &Vec<PathMetric>, agent: usize) -> Money {
        let agent = NodeId::from_index(agent);
        let carried: i64 = self
            .flows
            .iter()
            .zip(alloc)
            .filter(|((_, _, _), path)| path.transit_nodes().contains(&agent))
            .map(|(&(_, _, packets), _)| packets as i64)
            .sum();
        Money::new(decl.value() as i64).scale(carried)
    }

    fn participates(&self, alloc: &Vec<PathMetric>, agent: usize) -> bool {
        let agent = NodeId::from_index(agent);
        alloc.iter().any(|p| p.transit_nodes().contains(&agent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaith_core::mechanism::{check_strategyproof, MisreportGrid};
    use specfaith_core::vcg::{vcg, VcgMechanism};
    use specfaith_graph::generators::figure1;

    #[test]
    fn figure1_payment_to_c_is_its_marginal_contribution() {
        let net = figure1();
        // D→Z transits C; d(D,Z)=1, d_{G−C}(D,Z)=min(B=1000, X,A=105)=105.
        let p =
            vcg_payment(&net.topology, &net.costs, net.d, net.z, net.c).expect("C transits D→Z");
        assert_eq!(p, Money::new(1 + 105 - 1));
    }

    #[test]
    fn payment_is_none_off_path() {
        let net = figure1();
        // B is not on the X→Z LCP.
        assert_eq!(
            vcg_payment(&net.topology, &net.costs, net.x, net.z, net.b),
            None
        );
    }

    #[test]
    fn example1_truthful_payment_is_invariant_to_own_declaration() {
        // The heart of strategyproofness: C's payment for D→Z traffic is
        // 105 regardless of what C declares (as long as it stays on the
        // LCP), so inflating its declaration cannot raise its income.
        let net = figure1();
        for declared_c in [1u64, 2, 3, 5] {
            let lied = net.costs.with_cost(net.c, Cost::new(declared_c));
            let p = vcg_payment(&net.topology, &lied, net.d, net.z, net.c).expect("C still on LCP");
            assert_eq!(p, Money::new(105), "declared {declared_c}");
        }
    }

    #[test]
    fn expected_tables_are_consistent_with_direct_queries() {
        let net = figure1();
        let tables = expected_tables(&net.topology, &net.costs);
        let (routing_x, pricing_x) = &tables[net.x.index()];
        assert_eq!(
            routing_x.path(net.z),
            Some(&[net.x, net.d, net.c, net.z][..])
        );
        assert_eq!(
            pricing_x.price(net.z, net.c),
            vcg_payment(&net.topology, &net.costs, net.x, net.z, net.c)
        );
    }

    #[test]
    fn routing_problem_vcg_matches_direct_payments() {
        let net = figure1();
        let flows = vec![(net.x, net.z, 3u64)];
        let problem = RoutingProblem::new(net.topology.clone(), flows);
        let decls: Vec<Cost> = net.costs.as_slice().to_vec();
        let outcome = vcg(&problem, &decls).expect("feasible");
        // Transit D is paid 3 packets × p^D; same for C.
        let p_d = vcg_payment(&net.topology, &net.costs, net.x, net.z, net.d).expect("on LCP");
        let p_c = vcg_payment(&net.topology, &net.costs, net.x, net.z, net.c).expect("on LCP");
        assert_eq!(outcome.payments[net.d.index()], p_d.scale(3));
        assert_eq!(outcome.payments[net.c.index()], p_c.scale(3));
        assert_eq!(outcome.payments[net.b.index()], Money::ZERO);
    }

    #[test]
    fn fpss_mechanism_is_strategyproof_on_figure1() {
        let net = figure1();
        let flows = vec![(net.x, net.z, 1u64), (net.d, net.z, 1), (net.z, net.x, 2)];
        let mech = VcgMechanism::new(RoutingProblem::new(net.topology.clone(), flows));
        let profiles = vec![net.costs.as_slice().to_vec()];
        let report = check_strategyproof(&mech, &profiles, &MisreportGrid::standard());
        assert!(report.is_strategyproof(), "{report}");
    }

    #[test]
    fn tables_agree_detects_differences() {
        let net = figure1();
        let tables = expected_tables(&net.topology, &net.costs);
        let (r, p) = &tables[net.x.index()];
        assert!(tables_agree(r, p, r, p));
        let mut r2 = r.clone();
        r2.install(net.z, vec![net.x, net.a, net.z]);
        assert!(!tables_agree(&r2, p, r, p));
    }
}
