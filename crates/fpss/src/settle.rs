//! Settlement: turning execution-phase state into realized utilities.
//!
//! In **plain FPSS** there is no bank: payments flow exactly as payers
//! report them ("whatever accounting and charging mechanisms are used"),
//! nobody audits transit work, and the settlement here simply tallies the
//! consequences. This is the substrate on which the §4.3 manipulations are
//! profitable — experiment E5.
//!
//! The faithful extension replaces this with bank-reconciled settlement
//! (`specfaith-faithful`), where reports are corrected and deviations
//! penalized.

use specfaith_core::id::NodeId;
use specfaith_core::money::{Cost, Money};
use std::collections::BTreeMap;

/// What one node ends the execution phase with (post-strategy reports,
/// plus ground-truth counters for utility computation).
#[derive(Clone, Debug)]
pub struct ExecutionSummary {
    /// The reporting node.
    pub node: NodeId,
    /// \[DATA4\] as *reported* (a deviant may underreport).
    pub reported_owed: Vec<(NodeId, Money)>,
    /// The node's true per-packet transit cost.
    pub true_cost: Cost,
    /// Packets the node actually transited (incurring true cost each).
    pub carried: u64,
    /// Packets the node originated, per destination.
    pub originated: BTreeMap<NodeId, u64>,
    /// Packets delivered *to* this node, keyed by originator.
    pub delivered_from: BTreeMap<NodeId, u64>,
}

/// Utility model parameters shared by plain and faithful settlement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SettlementConfig {
    /// Value a source derives from each packet that reaches its
    /// destination. Must exceed any possible per-packet path price, so
    /// that participating is worthwhile (sources would not send
    /// otherwise).
    pub per_packet_value: Money,
}

impl Default for SettlementConfig {
    fn default() -> Self {
        SettlementConfig {
            per_packet_value: Money::new(100_000),
        }
    }
}

/// Plain-FPSS settlement: utilities when payments flow exactly as payers
/// report them and no one audits.
///
/// `uᵢ = W·delivered(i) + Σⱼ reportedⱼ→ᵢ − Σ reportedᵢ→· − cᵢ·carriedᵢ`
pub fn settle_plain(summaries: &[ExecutionSummary], config: &SettlementConfig) -> Vec<Money> {
    let n = summaries.len();
    let mut utilities = vec![Money::ZERO; n];
    // Delivered packets credited to their originators.
    for summary in summaries {
        for (&src, &count) in &summary.delivered_from {
            utilities[src.index()] += config.per_packet_value.scale(count as i64);
        }
    }
    for summary in summaries {
        let payer = summary.node.index();
        for &(to, amount) in &summary.reported_owed {
            utilities[payer] -= amount;
            utilities[to.index()] += amount;
        }
        utilities[payer] -=
            Money::new(summary.true_cost.value() as i64).scale(summary.carried as i64);
    }
    utilities
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn summary(node: u32) -> ExecutionSummary {
        ExecutionSummary {
            node: n(node),
            reported_owed: Vec::new(),
            true_cost: Cost::new(2),
            carried: 0,
            originated: BTreeMap::new(),
            delivered_from: BTreeMap::new(),
        }
    }

    #[test]
    fn delivered_packets_credit_the_source() {
        let mut dst = summary(1);
        dst.delivered_from.insert(n(0), 3);
        let utilities = settle_plain(
            &[summary(0), dst],
            &SettlementConfig {
                per_packet_value: Money::new(10),
            },
        );
        assert_eq!(utilities[0], Money::new(30));
        assert_eq!(utilities[1], Money::ZERO);
    }

    #[test]
    fn reported_payments_transfer() {
        let mut payer = summary(0);
        payer.reported_owed = vec![(n(1), Money::new(7))];
        let utilities = settle_plain(&[payer, summary(1)], &SettlementConfig::default());
        assert_eq!(utilities[0], Money::new(-7));
        assert_eq!(utilities[1], Money::new(7));
    }

    #[test]
    fn transit_cost_charged_on_carried_packets() {
        let mut transit = summary(1);
        transit.carried = 4;
        let utilities = settle_plain(&[summary(0), transit], &SettlementConfig::default());
        assert_eq!(utilities[1], Money::new(-8));
    }

    #[test]
    fn underreporting_shifts_utility_from_payee_to_payer() {
        let honest = {
            let mut payer = summary(0);
            payer.reported_owed = vec![(n(1), Money::new(100))];
            settle_plain(&[payer, summary(1)], &SettlementConfig::default())
        };
        let cheating = {
            let mut payer = summary(0);
            payer.reported_owed = vec![(n(1), Money::new(10))];
            settle_plain(&[payer, summary(1)], &SettlementConfig::default())
        };
        assert!(cheating[0] > honest[0], "cheater gains");
        assert!(cheating[1] < honest[1], "payee loses");
    }
}
