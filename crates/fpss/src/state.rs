//! The per-node data of FPSS §4.1: DATA1–DATA4, with canonical bank hashes.

use crate::msg::{PriceRow, RouteRow};
use specfaith_core::id::NodeId;
use specfaith_core::money::{Cost, Money};
use specfaith_crypto::sha256::Digest;
use specfaith_crypto::tablehash::TableHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// \[DATA1\] Transit-cost list: this node's knowledge of declared transit
/// costs across the network, filled by the phase-1 flood.
///
/// Stored densely by node index: the list sits on the innermost loops of
/// every routing/pricing recomputation (once per candidate path node), so
/// lookups must be array reads, not tree walks. Node ids are dense
/// (`0..n`) by construction, making the representation exact.
#[derive(Clone, Debug, Default)]
pub struct TransitCostList {
    /// `costs[node.index()]`; `None` = not yet learned. May carry trailing
    /// `None`s, which never affect equality or iteration.
    costs: Vec<Option<Cost>>,
    known: usize,
}

impl TransitCostList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `origin`'s declared cost. Returns `true` when this is new
    /// information (first declaration wins; FPSS assumes a static network,
    /// so re-declarations are duplicates from the flood).
    pub fn learn(&mut self, origin: NodeId, declared: Cost) -> bool {
        let at = origin.index();
        if at >= self.costs.len() {
            self.costs.resize(at + 1, None);
        }
        if self.costs[at].is_some() {
            return false;
        }
        self.costs[at] = Some(declared);
        self.known += 1;
        true
    }

    /// Overwrites `origin`'s declared cost (the streaming-mode complement
    /// of [`TransitCostList::learn`]: re-declarations are *changes*, not
    /// flood duplicates). Returns `true` when the stored value changed.
    pub fn update(&mut self, origin: NodeId, declared: Cost) -> bool {
        let at = origin.index();
        if at >= self.costs.len() {
            self.costs.resize(at + 1, None);
        }
        if self.costs[at] == Some(declared) {
            return false;
        }
        if self.costs[at].is_none() {
            self.known += 1;
        }
        self.costs[at] = Some(declared);
        true
    }

    /// Forgets `origin`'s declared cost (node churn: a departed node's
    /// cost must become unknown again so a later [`TransitCostList::learn`]
    /// from its re-flood wins). Returns whether a cost was present.
    pub fn forget(&mut self, origin: NodeId) -> bool {
        let at = origin.index();
        match self.costs.get_mut(at) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.known -= 1;
                true
            }
            _ => false,
        }
    }

    /// The declared cost of `node`, if known.
    pub fn declared(&self, node: NodeId) -> Option<Cost> {
        self.costs.get(node.index()).copied().flatten()
    }

    /// Number of nodes with known costs.
    pub fn len(&self) -> usize {
        self.known
    }

    /// Whether no costs are known yet.
    pub fn is_empty(&self) -> bool {
        self.known == 0
    }

    /// Iterates `(node, declared cost)` in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Cost)> + '_ {
        self.costs
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (NodeId::from_index(i), c)))
    }

    /// Sum of declared costs of the *intermediate* nodes of `path`.
    /// Returns `None` if any intermediate's cost is unknown.
    pub fn path_cost(&self, path: &[NodeId]) -> Option<Cost> {
        if path.len() <= 2 {
            return Some(Cost::ZERO);
        }
        path[1..path.len() - 1]
            .iter()
            .try_fold(Cost::ZERO, |acc, v| self.declared(*v).map(|c| acc + c))
    }

    /// The cost of the candidate route `[owner] ++ path`, whose
    /// intermediates are every `path` node except the last: what the
    /// routing update rule charges a neighbor-advertised path, costed
    /// locally (\[CHECK1\]). Returns `None` if any such cost is unknown.
    pub fn extension_cost(&self, path: &[NodeId]) -> Option<Cost> {
        if path.len() <= 1 {
            return Some(Cost::ZERO);
        }
        path[..path.len() - 1]
            .iter()
            .try_fold(Cost::ZERO, |acc, v| self.declared(*v).map(|c| acc + c))
    }

    /// Canonical hash (for completeness; the bank compares DATA2/DATA3*).
    pub fn digest(&self) -> Digest {
        let mut h = TableHasher::new("fpss/data1");
        for (node, cost) in self.iter() {
            h.put_u32(node.raw()).put_u64(cost.value()).row_boundary();
        }
        h.finish()
    }
}

impl PartialEq for TransitCostList {
    fn eq(&self, other: &Self) -> bool {
        // Trailing unlearned slots are representation, not content.
        self.known == other.known && self.iter().eq(other.iter())
    }
}

impl Eq for TransitCostList {}

/// \[DATA2\] Routing table: this node's current lowest-cost path per
/// destination.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoutingTable {
    routes: BTreeMap<NodeId, Vec<NodeId>>,
}

impl RoutingTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current path to `dst`, if any (starts at the owner, ends at
    /// `dst`).
    pub fn path(&self, dst: NodeId) -> Option<&[NodeId]> {
        self.routes.get(&dst).map(Vec::as_slice)
    }

    /// The next hop toward `dst`, if a route exists.
    pub fn next_hop(&self, dst: NodeId) -> Option<NodeId> {
        self.routes.get(&dst).and_then(|p| p.get(1)).copied()
    }

    /// Installs a route, returning `true` if the entry changed.
    pub fn install(&mut self, dst: NodeId, path: Vec<NodeId>) -> bool {
        if self.routes.get(&dst).map(Vec::as_slice) == Some(path.as_slice()) {
            return false;
        }
        self.routes.insert(dst, path);
        true
    }

    /// Removes the route to `dst`, returning whether one was present.
    pub fn remove(&mut self, dst: NodeId) -> bool {
        self.routes.remove(&dst).is_some()
    }

    /// Number of destinations with routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Iterates `(dst, path)` in destination order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[NodeId])> + '_ {
        self.routes.iter().map(|(&d, p)| (d, p.as_slice()))
    }

    /// The table as announcement rows.
    pub fn to_rows(&self) -> Vec<RouteRow> {
        self.iter()
            .map(|(dst, path)| RouteRow {
                dst,
                path: path.to_vec(),
            })
            .collect()
    }

    /// Canonical hash compared by \[BANK1\].
    pub fn digest(&self) -> Digest {
        let mut h = TableHasher::new("fpss/data2");
        for (dst, path) in &self.routes {
            h.put_u32(dst.raw());
            for v in path {
                h.put_u32(v.raw());
            }
            h.row_boundary();
        }
        h.finish()
    }
}

/// One entry of the extended pricing table \[DATA3*\]: the per-packet price
/// of a transit node plus the identity tags of §4.2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PriceEntry {
    /// Per-packet VCG payment.
    pub price: Money,
    /// The neighbor(s) whose information produced this entry (union on
    /// pricing ties) — the spoof-detection extension of the paper.
    pub tags: BTreeSet<NodeId>,
}

/// \[DATA3*\] Pricing table: per `(destination, transit)` pair, the
/// per-packet payment this node owes that transit, with identity tags.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PricingTable {
    entries: BTreeMap<(NodeId, NodeId), PriceEntry>,
}

impl PricingTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The entry for traffic to `dst` transiting `transit`.
    pub fn entry(&self, dst: NodeId, transit: NodeId) -> Option<&PriceEntry> {
        self.entries.get(&(dst, transit))
    }

    /// The price for `(dst, transit)`, if present.
    pub fn price(&self, dst: NodeId, transit: NodeId) -> Option<Money> {
        self.entry(dst, transit).map(|e| e.price)
    }

    /// Total per-packet payment this node owes along its route to `dst`.
    pub fn total_price_to(&self, dst: NodeId) -> Money {
        self.entries
            .iter()
            .filter(|((d, _), _)| *d == dst)
            .map(|(_, e)| e.price)
            .sum()
    }

    /// Replaces the whole table (the recompute functions build fresh
    /// tables). Returns `(changed rows, retracted keys)` — exactly what
    /// must be announced to neighbors. Retractions matter for the checker
    /// protocol: the announced table accumulated by checkers must track
    /// removals, or the \[BANK2\] hash comparison would flag honest nodes.
    pub fn replace(&mut self, new: PricingTable) -> (Vec<PriceRow>, Vec<(NodeId, NodeId)>) {
        let mut changed = Vec::new();
        for (&(dst, transit), entry) in &new.entries {
            if self.entries.get(&(dst, transit)) != Some(entry) {
                changed.push(PriceRow {
                    dst,
                    transit,
                    price: entry.price,
                    tags: entry.tags.clone(),
                });
            }
        }
        let retracted: Vec<(NodeId, NodeId)> = self
            .entries
            .keys()
            .filter(|key| !new.entries.contains_key(*key))
            .copied()
            .collect();
        self.entries = new.entries;
        (changed, retracted)
    }

    /// Removes an entry, returning whether it was present.
    pub fn remove(&mut self, dst: NodeId, transit: NodeId) -> bool {
        self.entries.remove(&(dst, transit)).is_some()
    }

    /// Inserts a single entry (used by mirrors and tests).
    pub fn insert(&mut self, dst: NodeId, transit: NodeId, entry: PriceEntry) {
        self.entries.insert((dst, transit), entry);
    }

    /// Iterates the transits currently priced for `dst`, in transit order.
    pub fn transits_for(&self, dst: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.entries
            .range((dst, NodeId::new(0))..=(dst, NodeId::new(u32::MAX)))
            .map(|(&(_, transit), _)| transit)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `((dst, transit), entry)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = ((NodeId, NodeId), &PriceEntry)> + '_ {
        self.entries.iter().map(|(&k, v)| (k, v))
    }

    /// The table as announcement rows.
    pub fn to_rows(&self) -> Vec<PriceRow> {
        self.iter()
            .map(|((dst, transit), e)| PriceRow {
                dst,
                transit,
                price: e.price,
                tags: e.tags.clone(),
            })
            .collect()
    }

    /// Canonical hash compared by \[BANK2\]. Includes the identity tags —
    /// that inclusion is what catches spoofed pricing messages (§4.3).
    pub fn digest(&self) -> Digest {
        let mut h = TableHasher::new("fpss/data3*");
        for (&(dst, transit), entry) in &self.entries {
            h.put_u32(dst.raw())
                .put_u32(transit.raw())
                .put_i64(entry.price.value());
            for tag in &entry.tags {
                h.put_u32(tag.raw());
            }
            h.row_boundary();
        }
        h.finish()
    }

    /// Ablation of the paper's DATA3* extension: the hash the *original*
    /// FPSS \[DATA3\] would give — prices only, no identity tags. Exists to
    /// demonstrate (in tests and EXPERIMENTS.md) that without tags in the
    /// hash, a pure tag forgery passes \[BANK2\] undetected.
    pub fn digest_without_tags(&self) -> Digest {
        let mut h = TableHasher::new("fpss/data3");
        for (&(dst, transit), entry) in &self.entries {
            h.put_u32(dst.raw())
                .put_u32(transit.raw())
                .put_i64(entry.price.value());
            h.row_boundary();
        }
        h.finish()
    }
}

/// \[DATA4\] Payment ledger: amounts this node owes each transit node for
/// traffic it originated.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PaymentLedger {
    owed: BTreeMap<NodeId, Money>,
}

impl PaymentLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accrues `amount` owed to `transit`.
    pub fn accrue(&mut self, transit: NodeId, amount: Money) {
        let slot = self.owed.entry(transit).or_insert(Money::ZERO);
        *slot += amount;
    }

    /// The amount owed to `transit`.
    pub fn owed_to(&self, transit: NodeId) -> Money {
        self.owed.get(&transit).copied().unwrap_or(Money::ZERO)
    }

    /// Total owed across all transits.
    pub fn total_owed(&self) -> Money {
        self.owed.values().copied().sum()
    }

    /// Iterates `(transit, amount)` in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Money)> + '_ {
        self.owed.iter().map(|(&k, &v)| (k, v))
    }

    /// The ledger as a vector of `(transit, amount)` pairs.
    pub fn to_entries(&self) -> Vec<(NodeId, Money)> {
        self.iter().collect()
    }
}

impl fmt::Display for PaymentLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "owes ")?;
        let mut first = true;
        for (node, amount) in &self.owed {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{node}:{amount}")?;
            first = false;
        }
        if first {
            write!(f, "nothing")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn data1_first_declaration_wins() {
        let mut list = TransitCostList::new();
        assert!(list.learn(n(1), Cost::new(5)));
        assert!(!list.learn(n(1), Cost::new(9)));
        assert_eq!(list.declared(n(1)), Some(Cost::new(5)));
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn data1_update_overwrites_and_forget_unlearns() {
        let mut list = TransitCostList::new();
        assert!(list.learn(n(1), Cost::new(5)));
        // Overwrite: changes win, identical values report no change.
        assert!(list.update(n(1), Cost::new(9)));
        assert!(!list.update(n(1), Cost::new(9)));
        assert_eq!(list.declared(n(1)), Some(Cost::new(9)));
        assert_eq!(list.len(), 1);
        // Update on an unknown node learns it.
        assert!(list.update(n(3), Cost::new(2)));
        assert_eq!(list.len(), 2);
        // Forget makes the slot unknown and re-opens first-write-wins.
        assert!(list.forget(n(1)));
        assert!(!list.forget(n(1)));
        assert_eq!(list.declared(n(1)), None);
        assert_eq!(list.len(), 1);
        assert!(list.learn(n(1), Cost::new(4)));
        assert_eq!(list.declared(n(1)), Some(Cost::new(4)));
    }

    #[test]
    fn data1_path_cost_counts_intermediates_only() {
        let mut list = TransitCostList::new();
        for (id, c) in [(0, 10), (1, 2), (2, 3), (3, 10)] {
            list.learn(n(id), Cost::new(c));
        }
        assert_eq!(
            list.path_cost(&[n(0), n(1), n(2), n(3)]),
            Some(Cost::new(5))
        );
        assert_eq!(list.path_cost(&[n(0), n(3)]), Some(Cost::ZERO));
        assert_eq!(list.path_cost(&[n(0)]), Some(Cost::ZERO));
    }

    #[test]
    fn data1_path_cost_requires_known_costs() {
        let mut list = TransitCostList::new();
        list.learn(n(0), Cost::new(1));
        assert_eq!(list.path_cost(&[n(0), n(9), n(1)]), None);
    }

    #[test]
    fn data2_install_reports_changes() {
        let mut table = RoutingTable::new();
        assert!(table.install(n(1), vec![n(0), n(1)]));
        assert!(!table.install(n(1), vec![n(0), n(1)]));
        assert!(table.install(n(1), vec![n(0), n(2), n(1)]));
        assert_eq!(table.next_hop(n(1)), Some(n(2)));
    }

    #[test]
    fn data2_digest_changes_with_contents() {
        let mut a = RoutingTable::new();
        a.install(n(1), vec![n(0), n(1)]);
        let mut b = RoutingTable::new();
        b.install(n(1), vec![n(0), n(2), n(1)]);
        assert_ne!(a.digest(), b.digest());
        let mut c = RoutingTable::new();
        c.install(n(1), vec![n(0), n(1)]);
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn data3_replace_returns_changed_rows() {
        let mut table = PricingTable::new();
        let mut next = PricingTable::new();
        next.insert(
            n(1),
            n(2),
            PriceEntry {
                price: Money::new(4),
                tags: [n(3)].into_iter().collect(),
            },
        );
        let (changed, retracted) = table.replace(next.clone());
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].price, Money::new(4));
        assert!(retracted.is_empty());
        // Replacing with identical contents reports nothing.
        let (changed, retracted) = table.replace(next);
        assert!(changed.is_empty() && retracted.is_empty());
        // Replacing with an empty table retracts the entry.
        let (changed, retracted) = table.replace(PricingTable::new());
        assert!(changed.is_empty());
        assert_eq!(retracted, vec![(n(1), n(2))]);
    }

    #[test]
    fn data3_digest_covers_tags() {
        let entry = |tags: &[u32]| PriceEntry {
            price: Money::new(4),
            tags: tags.iter().map(|&t| n(t)).collect(),
        };
        let mut a = PricingTable::new();
        a.insert(n(1), n(2), entry(&[3]));
        let mut b = PricingTable::new();
        b.insert(n(1), n(2), entry(&[4]));
        assert_ne!(a.digest(), b.digest(), "tags are part of the hash");
    }

    #[test]
    fn data3_total_price_sums_transits() {
        let mut table = PricingTable::new();
        for (t, p) in [(2, 4), (3, 6)] {
            table.insert(
                n(1),
                n(t),
                PriceEntry {
                    price: Money::new(p),
                    tags: BTreeSet::new(),
                },
            );
        }
        assert_eq!(table.total_price_to(n(1)), Money::new(10));
        assert_eq!(table.total_price_to(n(9)), Money::ZERO);
    }

    #[test]
    fn data4_accrues() {
        let mut ledger = PaymentLedger::new();
        ledger.accrue(n(1), Money::new(3));
        ledger.accrue(n(1), Money::new(4));
        ledger.accrue(n(2), Money::new(1));
        assert_eq!(ledger.owed_to(n(1)), Money::new(7));
        assert_eq!(ledger.total_owed(), Money::new(8));
        assert_eq!(ledger.to_entries().len(), 2);
    }

    #[test]
    fn data4_display() {
        let mut ledger = PaymentLedger::new();
        assert_eq!(ledger.to_string(), "owes nothing");
        ledger.accrue(n(1), Money::new(3));
        assert_eq!(ledger.to_string(), "owes n1:3");
    }
}
