//! FPSS protocol messages.
//!
//! # Wire-size contract
//!
//! Every message type's [`Payload::size_bytes`] is a **frozen** formula:
//! the network models in `specfaith-netsim` turn these byte counts into
//! serialization delays, fair-share contention, and per-run byte totals,
//! and those totals are pinned by the byte-identical golden tests in
//! `tests/network_models.rs`. Changing any formula below is a
//! reproducibility break, not a refactor — it must come with refreshed
//! goldens and a changelog entry. The formulas count 4 bytes per node id,
//! 8 per money amount / table key, plus a fixed header per enum variant:
//!
//! | Message | Bytes |
//! |---|---|
//! | `RouteRow` | `4 + 4·path.len()` |
//! | `PriceRow` | `4 + 4 + 8 + 4·tags.len()` |
//! | `Packet` | `12` |
//! | `CostAnnounce` | `12` |
//! | `CostUpdate` | `20` |
//! | `RoutingUpdate` | `8 + Σ rows` |
//! | `PricingUpdate` | `8 + Σ rows + 8·retractions.len()` |
//! | `Data` | inner `Packet` |

use specfaith_core::id::NodeId;
use specfaith_core::money::{Cost, Money};
use specfaith_netsim::Payload;
use std::collections::BTreeSet;

/// One row of a routing announcement: "my current lowest-cost path to
/// `dst` is `path`".
///
/// Rows deliberately carry **no cost field**: receivers recompute the cost
/// from their transit-cost list (DATA1) over the path's nodes, which is the
/// \[CHECK1\] verification built into the update rule itself. A node can
/// still lie about the *path* (claiming adjacency it does not have —
/// semi-private information), which is exactly manipulation 2 of §4.3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteRow {
    /// Destination this row routes toward.
    pub dst: NodeId,
    /// Claimed path, starting at the announcing node and ending at `dst`.
    pub path: Vec<NodeId>,
}

impl Payload for RouteRow {
    fn size_bytes(&self) -> usize {
        4 + 4 * self.path.len()
    }
}

/// One row of a pricing announcement: "the per-packet payment I would owe
/// transit `transit` for traffic to `dst` is `price`", plus the DATA3*
/// identity tags naming the neighbor(s) whose information produced the
/// entry (union on ties).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PriceRow {
    /// Traffic destination.
    pub dst: NodeId,
    /// The transit node being priced.
    pub transit: NodeId,
    /// VCG per-packet payment.
    pub price: Money,
    /// Identity tags: the neighbors that triggered/support this entry.
    pub tags: BTreeSet<NodeId>,
}

impl Payload for PriceRow {
    fn size_bytes(&self) -> usize {
        4 + 4 + 8 + 4 * self.tags.len()
    }
}

/// A routed data packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Originating node.
    pub src: NodeId,
    /// Final destination.
    pub dst: NodeId,
    /// Hop counter (TTL-style safety against forwarding loops).
    pub hops: u32,
}

impl Payload for Packet {
    fn size_bytes(&self) -> usize {
        12
    }
}

/// Messages of the plain FPSS protocol.
#[derive(Clone, Debug)]
pub enum FpssMsg {
    /// Construction phase 1: flooded declaration of a node's transit cost.
    CostAnnounce {
        /// The node whose cost is declared.
        origin: NodeId,
        /// The declared (not necessarily true) cost.
        declared: Cost,
    },
    /// Streaming mode: flooded *re*-declaration of a node's transit cost.
    /// Unlike [`FpssMsg::CostAnnounce`] (first-write-wins, assumes a static
    /// network), receivers overwrite on a strictly newer `epoch` and
    /// re-flood; stale or duplicate epochs are dropped, which terminates
    /// the flood exactly like the duplicate suppression of phase 1.
    CostUpdate {
        /// The node whose cost is re-declared.
        origin: NodeId,
        /// The new declared cost.
        declared: Cost,
        /// Per-origin monotone epoch (starts at 1 for the first update).
        epoch: u64,
    },
    /// Construction phase 2: changed routing rows.
    RoutingUpdate {
        /// The changed rows.
        rows: Vec<RouteRow>,
    },
    /// Construction phase 2: changed pricing rows, plus retractions of
    /// `(dst, transit)` entries that left the table (a transit node drops
    /// off a route when a better path is found mid-convergence).
    PricingUpdate {
        /// The changed rows.
        rows: Vec<PriceRow>,
        /// Entries removed from the announcer's table.
        retractions: Vec<(NodeId, NodeId)>,
    },
    /// Execution phase: a routed packet.
    Data(Packet),
}

impl Payload for FpssMsg {
    fn size_bytes(&self) -> usize {
        match self {
            FpssMsg::CostAnnounce { .. } => 12,
            FpssMsg::CostUpdate { .. } => 20,
            FpssMsg::RoutingUpdate { rows } => {
                8 + rows.iter().map(Payload::size_bytes).sum::<usize>()
            }
            FpssMsg::PricingUpdate { rows, retractions } => {
                8 + rows.iter().map(Payload::size_bytes).sum::<usize>() + 8 * retractions.len()
            }
            FpssMsg::Data(p) => p.size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sizes_scale_with_content() {
        let row = RouteRow {
            dst: n(1),
            path: vec![n(0), n(2), n(1)],
        };
        assert_eq!(row.size_bytes(), 16);
        let msg = FpssMsg::RoutingUpdate {
            rows: vec![row.clone(), row],
        };
        assert_eq!(msg.size_bytes(), 8 + 32);
    }

    #[test]
    fn price_row_counts_tags() {
        let row = PriceRow {
            dst: n(1),
            transit: n(2),
            price: Money::new(5),
            tags: [n(0), n(3)].into_iter().collect(),
        };
        assert_eq!(row.size_bytes(), 16 + 8);
    }

    #[test]
    fn packet_is_fixed_size() {
        let p = Packet {
            src: n(0),
            dst: n(1),
            hops: 3,
        };
        assert_eq!(FpssMsg::Data(p).size_bytes(), 12);
    }

    /// Pins every variant's wire-size formula (see the module docs): the
    /// network models convert these into delays and contention, and the
    /// golden byte totals in `tests/network_models.rs` depend on them.
    #[test]
    fn wire_sizes_are_frozen() {
        assert_eq!(
            FpssMsg::CostAnnounce {
                origin: n(3),
                declared: Cost::new(7),
            }
            .size_bytes(),
            12
        );
        assert_eq!(
            FpssMsg::CostUpdate {
                origin: n(3),
                declared: Cost::new(7),
                epoch: 1,
            }
            .size_bytes(),
            20
        );
        let empty_path = RouteRow {
            dst: n(1),
            path: Vec::new(),
        };
        assert_eq!(empty_path.size_bytes(), 4);
        assert_eq!(FpssMsg::RoutingUpdate { rows: Vec::new() }.size_bytes(), 8);
        let bare_price = PriceRow {
            dst: n(1),
            transit: n(2),
            price: Money::new(0),
            tags: BTreeSet::new(),
        };
        assert_eq!(bare_price.size_bytes(), 16);
        assert_eq!(
            FpssMsg::PricingUpdate {
                rows: vec![bare_price],
                retractions: vec![(n(1), n(2)), (n(3), n(4))],
            }
            .size_bytes(),
            8 + 16 + 16
        );
    }
}
