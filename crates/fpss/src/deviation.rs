//! The rational-deviation surface and the deviation library (§4.3).
//!
//! Every externally visible action of a node passes through its
//! [`RationalStrategy`]: declaring a cost (information revelation),
//! announcing routing/pricing rows and reporting payments (computation),
//! forwarding copies to checkers and forwarding packets (message passing).
//! The [`Faithful`] strategy is the identity everywhere; each deviation
//! overrides exactly the hooks named by its
//! [`DeviationSpec`] surface, which is how strong-CC and strong-AC are
//! tested *as defined* — deviations may combine arbitrary behavior within
//! their declared surface.
//!
//! The library implements the manipulations enumerated in §4.3:
//!
//! 1. drop / change / spoof forwarded routing-table update messages,
//! 2. miscompute LCPs, spoof LCP updates,
//! 3. drop / change / spoof forwarded pricing-table update messages,
//! 4. miscompute pricing tables,
//!
//! plus execution-phase manipulations (payment underreporting, packet
//! dropping) and the joint deviations Proposition 2 must rule out.

use crate::msg::{FpssMsg, Packet, PriceRow, RouteRow};
use crate::state::PricingTable;
use specfaith_core::actions::{DeviationSurface, ExternalActionKind};
use specfaith_core::equilibrium::DeviationSpec;
use specfaith_core::id::NodeId;
use specfaith_core::money::{Cost, Money};
use std::fmt;

/// Phase labels used by the deviation specs.
pub mod phases {
    /// Construction phase 1: transit-cost flooding.
    pub const CONSTRUCTION_1: &str = "construction-1";
    /// Construction phase 2: routing + pricing computation.
    pub const CONSTRUCTION_2: &str = "construction-2";
    /// Execution phase: traffic and payments.
    pub const EXECUTION: &str = "execution";
}

/// The hook surface through which a node takes every externally visible
/// action. Implementations deviate by overriding hooks; defaults are
/// faithful.
pub trait RationalStrategy: fmt::Debug {
    /// Whether this strategy is the honest baseline — every hook the
    /// identity, no internal state.
    fn is_faithful(&self) -> bool {
        false
    }

    /// Whether the destination-scoped incremental recompute fast path
    /// ([`crate::node::FpssCore::recompute_dsts`]) may serve this
    /// strategy. Safe exactly when the strategy's construction-phase
    /// *computation* hooks — [`RationalStrategy::announce_routing`],
    /// [`RationalStrategy::announce_pricing`],
    /// [`RationalStrategy::install_own_pricing`] — are the identity:
    /// the incremental path produces byte-identical changed rows but
    /// installs the recomputed pricing directly, bypassing
    /// `install_own_pricing`, so table-transforming deviations must keep
    /// the full recompute. Deviations confined to other surfaces
    /// (misreported declarations, tampered floods, packet drops, payment
    /// fraud, checker-forward manipulation) override this to `true` and
    /// take the same fast path honest nodes do — pinned byte-identical
    /// to the full recompute by the engine equivalence tests.
    ///
    /// Defaults to [`RationalStrategy::is_faithful`], so the honest
    /// baseline is incremental and unknown deviations conservatively get
    /// the full-table path.
    fn dst_scoped_recompute_safe(&self) -> bool {
        self.is_faithful()
    }

    /// The deviation's descriptor (name, action surface, phase attacked).
    fn spec(&self) -> DeviationSpec;

    /// Information revelation: the cost this node declares in the phase-1
    /// flood (its report `θ̂ᵢ`).
    fn declare_cost(&mut self, true_cost: Cost) -> Cost {
        true_cost
    }

    /// Message passing (construction phase 1): how to re-flood another
    /// node's cost declaration. `Some(declared)` forwards (possibly
    /// altered); `None` suppresses the re-flood.
    fn reflood_cost(&mut self, _origin: NodeId, declared: Cost) -> Option<Cost> {
        Some(declared)
    }

    /// Computation: the routing rows the node announces to neighbors after
    /// an honest recomputation produced `honest`.
    fn announce_routing(&mut self, _me: NodeId, honest: Vec<RouteRow>) -> Vec<RouteRow> {
        honest
    }

    /// Computation: the pricing rows the node announces.
    fn announce_pricing(&mut self, _me: NodeId, honest: Vec<PriceRow>) -> Vec<PriceRow> {
        honest
    }

    /// Computation: the pricing table the node *installs for its own use*
    /// (what it will pay from in execution).
    fn install_own_pricing(&mut self, _me: NodeId, honest: PricingTable) -> PricingTable {
        honest
    }

    /// Message passing (faithful extension only): the copy of an inbound
    /// construction message the node forwards to its checkers. `None`
    /// drops the forward; returning a modified message tampers with it.
    fn forward_to_checkers(&mut self, _original_from: NodeId, msg: FpssMsg) -> Option<FpssMsg> {
        Some(msg)
    }

    /// Message passing (execution): whether to forward a transit packet.
    fn forward_packet(&mut self, _me: NodeId, _packet: &Packet) -> bool {
        true
    }

    /// Computation (execution): the payment list the node reports
    /// (\[DATA4\]) after honest accrual produced `honest`.
    fn report_owed(&mut self, _me: NodeId, honest: Vec<(NodeId, Money)>) -> Vec<(NodeId, Money)> {
        honest
    }
}

/// The faithful strategy: every hook is the identity.
#[derive(Clone, Debug, Default)]
pub struct Faithful;

impl RationalStrategy for Faithful {
    fn is_faithful(&self) -> bool {
        true
    }

    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new("faithful", DeviationSurface::new())
    }
}

/// Honest behavior on the pre-incremental code path: every hook is the
/// identity (exactly like [`Faithful`]) but `is_faithful()` stays `false`,
/// so the node recomputes its full tables on every message.
///
/// Not a deviation — retained for the equivalence tests that pin the
/// incremental fast path byte-identical to the full recompute, and for
/// the sweep regression benchmark's reference arm.
#[doc(hidden)]
#[derive(Clone, Debug, Default)]
pub struct FullRecomputeFaithful;

impl RationalStrategy for FullRecomputeFaithful {
    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new("faithful-full-recompute", DeviationSurface::new())
    }
}

/// Wraps any strategy, delegating every hook verbatim while reporting
/// `dst_scoped_recompute_safe() == false` — forcing the wrapped strategy
/// onto the full-table recompute path it would otherwise skip.
///
/// Not a deviation — retained for the equivalence tests that pin
/// incremental-safe deviations (e.g. [`MisreportCost`]) byte-identical to
/// their full-recompute behavior.
#[doc(hidden)]
#[derive(Debug)]
pub struct ForceFullRecompute(pub Box<dyn RationalStrategy>);

impl RationalStrategy for ForceFullRecompute {
    // is_faithful and dst_scoped_recompute_safe keep their defaults:
    // always the full-table path.
    fn spec(&self) -> DeviationSpec {
        self.0.spec()
    }

    fn declare_cost(&mut self, true_cost: Cost) -> Cost {
        self.0.declare_cost(true_cost)
    }

    fn reflood_cost(&mut self, origin: NodeId, declared: Cost) -> Option<Cost> {
        self.0.reflood_cost(origin, declared)
    }

    fn announce_routing(&mut self, me: NodeId, honest: Vec<RouteRow>) -> Vec<RouteRow> {
        self.0.announce_routing(me, honest)
    }

    fn announce_pricing(&mut self, me: NodeId, honest: Vec<PriceRow>) -> Vec<PriceRow> {
        self.0.announce_pricing(me, honest)
    }

    fn install_own_pricing(&mut self, me: NodeId, honest: PricingTable) -> PricingTable {
        self.0.install_own_pricing(me, honest)
    }

    fn forward_to_checkers(&mut self, original_from: NodeId, msg: FpssMsg) -> Option<FpssMsg> {
        self.0.forward_to_checkers(original_from, msg)
    }

    fn forward_packet(&mut self, me: NodeId, packet: &Packet) -> bool {
        self.0.forward_packet(me, packet)
    }

    fn report_owed(&mut self, me: NodeId, honest: Vec<(NodeId, Money)>) -> Vec<(NodeId, Money)> {
        self.0.report_owed(me, honest)
    }
}

/// Misreport the declared transit cost by `delta` (information
/// revelation, construction phase 1). FPSS's strategyproofness should make
/// this unprofitable *everywhere*, even in the plain mechanism.
#[derive(Clone, Debug)]
pub struct MisreportCost {
    /// Signed adjustment to the true cost (clamped at zero).
    pub delta: i64,
}

impl RationalStrategy for MisreportCost {
    fn dst_scoped_recompute_safe(&self) -> bool {
        true
    }

    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new(
            format!("misreport-cost({:+})", self.delta),
            DeviationSurface::only(ExternalActionKind::InformationRevelation),
        )
        .in_phase(phases::CONSTRUCTION_1)
    }

    fn declare_cost(&mut self, true_cost: Cost) -> Cost {
        let declared = (true_cost.value() as i64).saturating_add(self.delta).max(0);
        Cost::new(declared as u64)
    }
}

/// Tamper with the phase-1 cost flood (message passing): re-flood other
/// nodes' declarations scaled by `multiplier`, poisoning downstream DATA1
/// copies. In plain FPSS this corrupts the first-write-wins transit-cost
/// lists of every node whose flood path crosses the tamperer; in the
/// faithful extension the resulting DATA1 divergence makes principal and
/// checker tables disagree at the first checkpoint.
#[derive(Clone, Debug)]
pub struct TamperCostFlood {
    /// Multiplier applied to re-flooded declarations.
    pub multiplier: u64,
}

impl RationalStrategy for TamperCostFlood {
    fn dst_scoped_recompute_safe(&self) -> bool {
        true
    }

    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new(
            format!("tamper-cost-flood(x{})", self.multiplier),
            DeviationSurface::only(ExternalActionKind::MessagePassing),
        )
        .in_phase(phases::CONSTRUCTION_1)
    }

    fn reflood_cost(&mut self, _origin: NodeId, declared: Cost) -> Option<Cost> {
        Some(Cost::new(
            (declared.value().saturating_mul(self.multiplier)).min(Cost::MAX_FINITE),
        ))
    }
}

/// Suppress the phase-1 cost flood entirely (message passing): never
/// re-flood other nodes' declarations. Biconnectivity routes the flood
/// around a single silent node, so in the honest-remainder network every
/// node still learns every cost — the redundancy argument of §3.9.
#[derive(Clone, Debug, Default)]
pub struct DropCostFlood;

impl RationalStrategy for DropCostFlood {
    fn dst_scoped_recompute_safe(&self) -> bool {
        true
    }

    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new(
            "drop-cost-flood",
            DeviationSurface::only(ExternalActionKind::MessagePassing),
        )
        .in_phase(phases::CONSTRUCTION_1)
    }

    fn reflood_cost(&mut self, _origin: NodeId, _declared: Cost) -> Option<Cost> {
        None
    }
}

/// Spoof LCP updates (§4.3 manipulation 2): announce fabricated routing
/// rows claiming direct adjacency to every destination, making paths
/// through this node look maximally attractive. Receivers cannot verify
/// adjacency (semi-private information), so in plain FPSS this attracts
/// traffic and inflates the node's VCG payments.
#[derive(Clone, Debug, Default)]
pub struct SpoofShortRoutes;

impl RationalStrategy for SpoofShortRoutes {
    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new(
            "spoof-short-routes",
            DeviationSurface::only(ExternalActionKind::Computation),
        )
        .in_phase(phases::CONSTRUCTION_2)
    }

    fn announce_routing(&mut self, me: NodeId, honest: Vec<RouteRow>) -> Vec<RouteRow> {
        honest
            .into_iter()
            .map(|row| {
                if row.dst != me && row.path.len() > 2 {
                    // Claim a fake direct link to the destination.
                    RouteRow {
                        dst: row.dst,
                        path: vec![me, row.dst],
                    }
                } else {
                    row
                }
            })
            .collect()
    }
}

/// Miscompute the node's own pricing table (§4.3 manipulation 4): install
/// prices scaled to `keep_percent`% for execution, so the node pays less
/// for the traffic it originates. Announcements carry the same deflated
/// rows (the lie must be consistent to have any hope of passing checks).
#[derive(Clone, Debug)]
pub struct DeflateOwnPricing {
    /// Percentage of the honest price retained (e.g. 50).
    pub keep_percent: u32,
}

impl DeflateOwnPricing {
    fn deflate(&self, price: Money) -> Money {
        Money::new(price.value() * i64::from(self.keep_percent) / 100)
    }
}

impl RationalStrategy for DeflateOwnPricing {
    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new(
            format!("deflate-own-pricing({}%)", self.keep_percent),
            DeviationSurface::only(ExternalActionKind::Computation),
        )
        .in_phase(phases::CONSTRUCTION_2)
    }

    fn install_own_pricing(&mut self, _me: NodeId, honest: PricingTable) -> PricingTable {
        let mut deflated = PricingTable::new();
        for ((dst, transit), entry) in honest.iter() {
            deflated.insert(
                dst,
                transit,
                crate::state::PriceEntry {
                    price: self.deflate(entry.price),
                    tags: entry.tags.clone(),
                },
            );
        }
        deflated
    }

    fn announce_pricing(&mut self, _me: NodeId, honest: Vec<PriceRow>) -> Vec<PriceRow> {
        honest
            .into_iter()
            .map(|row| PriceRow {
                price: self.deflate(row.price),
                ..row
            })
            .collect()
    }
}

/// Spoof pricing messages (§4.3 manipulation 3): announce pricing rows
/// with forged identity tags naming a non-neighbor, attempting to inject
/// price information that no checker can attribute.
#[derive(Clone, Debug)]
pub struct SpoofPricingTags {
    /// The forged tag planted in announced rows.
    pub forged_tag: NodeId,
    /// Price multiplier (percent) applied to the spoofed rows.
    pub price_percent: u32,
}

impl RationalStrategy for SpoofPricingTags {
    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new(
            "spoof-pricing-tags",
            DeviationSurface::only(ExternalActionKind::Computation),
        )
        .in_phase(phases::CONSTRUCTION_2)
    }

    fn announce_pricing(&mut self, _me: NodeId, honest: Vec<PriceRow>) -> Vec<PriceRow> {
        honest
            .into_iter()
            .map(|row| PriceRow {
                price: Money::new(row.price.value() * i64::from(self.price_percent) / 100),
                tags: [self.forged_tag].into_iter().collect(),
                ..row
            })
            .collect()
    }
}

/// Drop forwarded construction messages to checkers (§4.3 manipulations
/// 1/3, message passing). Only meaningful in the faithful extension (plain
/// FPSS has no checker forwards); in the plain mechanism it is a no-op.
#[derive(Clone, Debug, Default)]
pub struct DropCheckerForwards;

impl RationalStrategy for DropCheckerForwards {
    fn dst_scoped_recompute_safe(&self) -> bool {
        true
    }

    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new(
            "drop-checker-forwards",
            DeviationSurface::only(ExternalActionKind::MessagePassing),
        )
        .in_phase(phases::CONSTRUCTION_2)
    }

    fn forward_to_checkers(&mut self, _original_from: NodeId, _msg: FpssMsg) -> Option<FpssMsg> {
        None
    }
}

/// Tamper with forwarded construction messages (§4.3 manipulations 1/3):
/// forwarded pricing rows have their prices doubled; forwarded routing
/// rows have their paths truncated to fake directness.
#[derive(Clone, Debug, Default)]
pub struct TamperCheckerForwards;

impl RationalStrategy for TamperCheckerForwards {
    fn dst_scoped_recompute_safe(&self) -> bool {
        true
    }

    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new(
            "tamper-checker-forwards",
            DeviationSurface::only(ExternalActionKind::MessagePassing),
        )
        .in_phase(phases::CONSTRUCTION_2)
    }

    fn forward_to_checkers(&mut self, original_from: NodeId, msg: FpssMsg) -> Option<FpssMsg> {
        let tampered = match msg {
            FpssMsg::PricingUpdate { rows, retractions } => FpssMsg::PricingUpdate {
                rows: rows
                    .into_iter()
                    .map(|row| PriceRow {
                        price: row.price.scale(2),
                        ..row
                    })
                    .collect(),
                retractions,
            },
            FpssMsg::RoutingUpdate { rows } => FpssMsg::RoutingUpdate {
                rows: rows
                    .into_iter()
                    .map(|row| RouteRow {
                        path: vec![original_from, row.dst],
                        ..row
                    })
                    .collect(),
            },
            other => other,
        };
        Some(tampered)
    }
}

/// Drop transit packets in execution (message passing): keep collecting
/// payments while refusing the transit work that justifies them.
#[derive(Clone, Debug, Default)]
pub struct DropTransitPackets;

impl RationalStrategy for DropTransitPackets {
    fn dst_scoped_recompute_safe(&self) -> bool {
        true
    }

    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new(
            "drop-transit-packets",
            DeviationSurface::only(ExternalActionKind::MessagePassing),
        )
        .in_phase(phases::EXECUTION)
    }

    fn forward_packet(&mut self, me: NodeId, packet: &Packet) -> bool {
        packet.src == me || packet.dst == me
    }
}

/// Underreport the payment ledger (computation, execution): report only
/// `keep_percent`% of what is honestly owed.
#[derive(Clone, Debug)]
pub struct UnderreportPayments {
    /// Percentage of the honest amount reported.
    pub keep_percent: u32,
}

impl RationalStrategy for UnderreportPayments {
    fn dst_scoped_recompute_safe(&self) -> bool {
        true
    }

    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new(
            format!("underreport-payments({}%)", self.keep_percent),
            DeviationSurface::only(ExternalActionKind::Computation),
        )
        .in_phase(phases::EXECUTION)
    }

    fn report_owed(&mut self, _me: NodeId, honest: Vec<(NodeId, Money)>) -> Vec<(NodeId, Money)> {
        honest
            .into_iter()
            .map(|(to, amount)| {
                (
                    to,
                    Money::new(amount.value() * i64::from(self.keep_percent) / 100),
                )
            })
            .collect()
    }
}

/// The joint execution deviation: drop transit packets *and* underreport
/// payments — the kind of combined manipulation the "strong" properties
/// must rule out in one sweep.
#[derive(Clone, Debug)]
pub struct DropAndUnderreport {
    drop: DropTransitPackets,
    under: UnderreportPayments,
}

impl DropAndUnderreport {
    /// Drops all transit packets and reports `keep_percent`% of payments.
    pub fn new(keep_percent: u32) -> Self {
        DropAndUnderreport {
            drop: DropTransitPackets,
            under: UnderreportPayments { keep_percent },
        }
    }
}

impl RationalStrategy for DropAndUnderreport {
    fn dst_scoped_recompute_safe(&self) -> bool {
        true
    }

    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new(
            "drop-and-underreport",
            DeviationSurface::new()
                .with(ExternalActionKind::MessagePassing)
                .with(ExternalActionKind::Computation),
        )
        .in_phase(phases::EXECUTION)
    }

    fn forward_packet(&mut self, me: NodeId, packet: &Packet) -> bool {
        self.drop.forward_packet(me, packet)
    }

    fn report_owed(&mut self, me: NodeId, honest: Vec<(NodeId, Money)>) -> Vec<(NodeId, Money)> {
        self.under.report_owed(me, honest)
    }
}

/// The joint construction deviation: spoof short routes *and* tamper with
/// checker forwards, trying to keep the checkers' mirrors consistent with
/// the lie.
#[derive(Clone, Debug, Default)]
pub struct SpoofAndTamper {
    spoof: SpoofShortRoutes,
    tamper: TamperCheckerForwards,
}

impl RationalStrategy for SpoofAndTamper {
    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new(
            "spoof-routes-and-tamper-forwards",
            DeviationSurface::new()
                .with(ExternalActionKind::Computation)
                .with(ExternalActionKind::MessagePassing),
        )
        .in_phase(phases::CONSTRUCTION_2)
    }

    fn announce_routing(&mut self, me: NodeId, honest: Vec<RouteRow>) -> Vec<RouteRow> {
        self.spoof.announce_routing(me, honest)
    }

    fn forward_to_checkers(&mut self, original_from: NodeId, msg: FpssMsg) -> Option<FpssMsg> {
        self.tamper.forward_to_checkers(original_from, msg)
    }
}

/// A fail-stop failure expressed through the strategy surface: the node
/// declares its cost, then goes silent — no announcements, no checker
/// forwards, no packet forwarding, no reports. This is **not** a rational
/// deviation (it never benefits the node); it exists to study §5's
/// observation that "introducing other failures, such as general omissions
/// or even failstop, may cause the system to falsely detect and punish
/// manipulation" (experiment E13).
#[derive(Clone, Debug, Default)]
pub struct FailStop;

impl RationalStrategy for FailStop {
    fn spec(&self) -> DeviationSpec {
        DeviationSpec::new("fail-stop", DeviationSurface::all()).in_phase("failure-model")
    }

    fn reflood_cost(&mut self, _origin: NodeId, _declared: Cost) -> Option<Cost> {
        None
    }

    fn announce_routing(&mut self, _me: NodeId, _honest: Vec<RouteRow>) -> Vec<RouteRow> {
        Vec::new()
    }

    fn announce_pricing(&mut self, _me: NodeId, _honest: Vec<PriceRow>) -> Vec<PriceRow> {
        Vec::new()
    }

    fn forward_to_checkers(&mut self, _original_from: NodeId, _msg: FpssMsg) -> Option<FpssMsg> {
        None
    }

    fn forward_packet(&mut self, _me: NodeId, _packet: &Packet) -> bool {
        false
    }

    fn report_owed(&mut self, _me: NodeId, _honest: Vec<(NodeId, Money)>) -> Vec<(NodeId, Money)> {
        Vec::new()
    }
}

/// Builds a fresh instance of every deviation in the standard library.
///
/// `forged_tag` parameterizes [`SpoofPricingTags`] (any id that is not a
/// neighbor of the deviant — experiment harnesses pass a far-away node).
pub fn standard_catalog(forged_tag: NodeId) -> Vec<Box<dyn RationalStrategy>> {
    vec![
        Box::new(MisreportCost { delta: 5 }),
        Box::new(MisreportCost { delta: -1 }),
        Box::new(TamperCostFlood { multiplier: 100 }),
        Box::new(DropCostFlood),
        Box::new(SpoofShortRoutes),
        Box::new(DeflateOwnPricing { keep_percent: 50 }),
        Box::new(SpoofPricingTags {
            forged_tag,
            price_percent: 50,
        }),
        Box::new(DropCheckerForwards),
        Box::new(TamperCheckerForwards),
        Box::new(DropTransitPackets),
        Box::new(UnderreportPayments { keep_percent: 10 }),
        Box::new(DropAndUnderreport::new(10)),
        Box::new(SpoofAndTamper::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn faithful_is_identity_everywhere() {
        let mut f = Faithful;
        assert_eq!(f.declare_cost(Cost::new(5)), Cost::new(5));
        let rows = vec![RouteRow {
            dst: n(1),
            path: vec![n(0), n(1)],
        }];
        assert_eq!(f.announce_routing(n(0), rows.clone()), rows);
        assert!(f.forward_packet(
            n(0),
            &Packet {
                src: n(1),
                dst: n(2),
                hops: 0
            }
        ));
        assert!(f.spec().surface().is_empty());
    }

    #[test]
    fn misreport_clamps_at_zero() {
        let mut s = MisreportCost { delta: -10 };
        assert_eq!(s.declare_cost(Cost::new(3)), Cost::ZERO);
        let mut s = MisreportCost { delta: 4 };
        assert_eq!(s.declare_cost(Cost::new(3)), Cost::new(7));
    }

    #[test]
    fn spoof_short_routes_fakes_adjacency() {
        let mut s = SpoofShortRoutes;
        let rows = vec![
            RouteRow {
                dst: n(5),
                path: vec![n(0), n(2), n(5)],
            },
            RouteRow {
                dst: n(1),
                path: vec![n(0), n(1)],
            },
        ];
        let out = s.announce_routing(n(0), rows);
        assert_eq!(out[0].path, vec![n(0), n(5)]);
        assert_eq!(out[1].path, vec![n(0), n(1)], "already direct unchanged");
    }

    #[test]
    fn deflate_halves_prices() {
        let mut s = DeflateOwnPricing { keep_percent: 50 };
        let rows = vec![PriceRow {
            dst: n(1),
            transit: n(2),
            price: Money::new(10),
            tags: BTreeSet::new(),
        }];
        let out = s.announce_pricing(n(0), rows);
        assert_eq!(out[0].price, Money::new(5));
    }

    #[test]
    fn drop_transit_keeps_own_traffic() {
        let mut s = DropTransitPackets;
        let own = Packet {
            src: n(0),
            dst: n(2),
            hops: 0,
        };
        let transit = Packet {
            src: n(1),
            dst: n(2),
            hops: 1,
        };
        assert!(s.forward_packet(n(0), &own));
        assert!(!s.forward_packet(n(0), &transit));
    }

    #[test]
    fn underreport_scales() {
        let mut s = UnderreportPayments { keep_percent: 10 };
        let out = s.report_owed(n(0), vec![(n(1), Money::new(100))]);
        assert_eq!(out, vec![(n(1), Money::new(10))]);
    }

    #[test]
    fn joint_deviations_declare_joint_surfaces() {
        assert!(DropAndUnderreport::new(10).spec().surface().is_joint());
        assert!(SpoofAndTamper::default().spec().surface().is_joint());
    }

    #[test]
    fn catalog_covers_all_three_action_kinds_and_phases() {
        let catalog = standard_catalog(n(99));
        let surfaces: Vec<_> = catalog.iter().map(|s| s.spec()).collect();
        for kind in ExternalActionKind::ALL {
            assert!(
                surfaces.iter().any(|s| s.surface().touches(kind)),
                "no deviation touches {kind}"
            );
        }
        for phase in [
            phases::CONSTRUCTION_1,
            phases::CONSTRUCTION_2,
            phases::EXECUTION,
        ] {
            assert!(
                surfaces.iter().any(|s| s.phase() == Some(phase)),
                "no deviation attacks {phase}"
            );
        }
        assert!(surfaces.iter().any(|s| s.surface().is_joint()));
    }

    #[test]
    fn tamper_doubles_forwarded_prices() {
        let mut s = TamperCheckerForwards;
        let msg = FpssMsg::PricingUpdate {
            rows: vec![PriceRow {
                dst: n(1),
                transit: n(2),
                price: Money::new(7),
                tags: BTreeSet::new(),
            }],
            retractions: Vec::new(),
        };
        match s.forward_to_checkers(n(3), msg) {
            Some(FpssMsg::PricingUpdate { rows, .. }) => {
                assert_eq!(rows[0].price, Money::new(14))
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
