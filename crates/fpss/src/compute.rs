//! Pure FPSS recomputation functions.
//!
//! Everything a node computes in construction phase 2 — its routing table
//! from neighbors' advertised paths, and its pricing table from neighbors'
//! advertised prices — is implemented here as **pure functions of the
//! node's inputs**. Three callers share them:
//!
//! * the plain FPSS node ([`crate::node`]),
//! * the faithful principal, and
//! * every checker mirror (which recomputes what *its principal* should
//!   have computed from the forwarded inputs).
//!
//! Purity is not a style choice: the bank compares table hashes across
//! principal and checkers, so the recomputation must be a deterministic
//! function of the inputs and nothing else.

use crate::msg::{PriceRow, RouteRow};
use crate::state::{PriceEntry, PricingTable, RoutingTable, TransitCostList};
use specfaith_core::id::NodeId;
use specfaith_graph::path::PathMetric;
use std::collections::{BTreeMap, BTreeSet};

/// A node's record of what its neighbors have advertised: routes and
/// prices, exactly as received (the inputs to recomputation).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NeighborView {
    /// `(neighbor, dst) → neighbor's advertised path` (starting at the
    /// neighbor, ending at dst).
    routes: BTreeMap<(NodeId, NodeId), Vec<NodeId>>,
    /// `(neighbor, dst, transit) → neighbor's advertised per-packet price`.
    prices: BTreeMap<(NodeId, NodeId, NodeId), i64>,
}

impl NeighborView {
    /// An empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a route advertisement from `neighbor`. Returns `true` if
    /// the stored row changed. Rows whose path does not start at the
    /// neighbor or end at the row's destination are rejected (malformed).
    pub fn learn_route(&mut self, neighbor: NodeId, row: &RouteRow) -> bool {
        if row.path.first() != Some(&neighbor) || row.path.last() != Some(&row.dst) {
            return false;
        }
        let key = (neighbor, row.dst);
        if self.routes.get(&key) == Some(&row.path) {
            return false;
        }
        self.routes.insert(key, row.path.clone());
        true
    }

    /// Records a price advertisement from `neighbor`. Returns `true` if
    /// the stored value changed.
    pub fn learn_price(&mut self, neighbor: NodeId, row: &PriceRow) -> bool {
        let key = (neighbor, row.dst, row.transit);
        let value = row.price.value();
        if self.prices.get(&key) == Some(&value) {
            return false;
        }
        self.prices.insert(key, value);
        true
    }

    /// Removes a previously advertised price (the neighbor retracted it).
    /// Returns `true` if the view changed.
    pub fn retract_price(&mut self, neighbor: NodeId, dst: NodeId, transit: NodeId) -> bool {
        self.prices.remove(&(neighbor, dst, transit)).is_some()
    }

    /// The path `neighbor` advertised toward `dst`, if any.
    pub fn route(&self, neighbor: NodeId, dst: NodeId) -> Option<&[NodeId]> {
        self.routes.get(&(neighbor, dst)).map(Vec::as_slice)
    }

    /// The price `neighbor` advertised for `(dst, transit)`, if any.
    pub fn price(&self, neighbor: NodeId, dst: NodeId, transit: NodeId) -> Option<i64> {
        self.prices.get(&(neighbor, dst, transit)).copied()
    }
}

/// Recomputes the routing table of `me` from its transit-cost list and
/// neighbor advertisements.
///
/// For each destination, the candidate via neighbor `b` is `[me] ++
/// path_b(dst)`, **costed locally from DATA1** (advertised costs are never
/// trusted — this is the \[CHECK1\] verification built into the update rule).
/// Candidates are compared under the [`PathMetric`] total order, so every
/// honest node resolves ties identically.
pub fn recompute_routes(
    me: NodeId,
    neighbors: &[NodeId],
    data1: &TransitCostList,
    view: &NeighborView,
) -> RoutingTable {
    // Destinations: every node we have ever heard of.
    let mut dsts: BTreeSet<NodeId> = data1.iter().map(|(n, _)| n).collect();
    for &b in neighbors {
        dsts.insert(b);
    }
    let mut table = RoutingTable::new();
    table.install(me, vec![me]);
    for dst in dsts {
        if dst == me {
            continue;
        }
        let mut best: Option<PathMetric> = None;
        for &b in neighbors {
            let candidate_nodes: Vec<NodeId> = if b == dst {
                vec![me, dst]
            } else {
                let Some(path_b) = view.route(b, dst) else {
                    continue;
                };
                if path_b.contains(&me) {
                    continue; // would loop
                }
                std::iter::once(me).chain(path_b.iter().copied()).collect()
            };
            let Some(cost) = data1.path_cost(&candidate_nodes) else {
                continue; // some intermediate's declared cost unknown yet
            };
            let candidate = PathMetric::new(candidate_nodes, cost);
            if best.as_ref().is_none_or(|cur| candidate < *cur) {
                best = Some(candidate);
            }
        }
        if let Some(metric) = best {
            table.install(dst, metric.nodes().to_vec());
        }
    }
    table
}

/// Recomputes the pricing table \[DATA3*\] of `me`.
///
/// For each destination `j` on the routing table and each transit `k` on
/// the chosen path, the per-packet VCG payment is
/// `pᵏ = ĉ_k + d_{G−k}(me,j) − d(me,j)`, where the `k`-avoiding distance is
/// estimated by the FPSS iterative rule over neighbors `b ≠ k`:
///
/// * if `k` is **not** on `b`'s advertised path to `j`, the detour through
///   `b` costs `ĉ_b + d_b(j)` (the advertised path itself avoids `k`);
/// * if `k` **is** on it, `b`'s own advertised price for `k` encodes `b`'s
///   `k`-avoiding distance: `d_{G−k}(b,j) = pᵏ_b − ĉ_k + d_b(j)`.
///
/// The DATA3* identity tags record which neighbor(s) attained the minimum
/// (union on ties), which is what lets checkers detect spoofed pricing
/// messages (\[CHECK2\], \[BANK2\]).
pub fn recompute_prices(
    me: NodeId,
    neighbors: &[NodeId],
    data1: &TransitCostList,
    routes: &RoutingTable,
    view: &NeighborView,
) -> PricingTable {
    let mut table = PricingTable::new();
    for (dst, path) in routes.iter() {
        if dst == me {
            continue;
        }
        let Some(d_me) = data1.path_cost(path) else {
            continue;
        };
        let d_me = d_me.value() as i64;
        let transits: Vec<NodeId> = if path.len() <= 2 {
            Vec::new()
        } else {
            path[1..path.len() - 1].to_vec()
        };
        for k in transits {
            let Some(c_k) = data1.declared(k) else {
                continue;
            };
            let c_k = c_k.value() as i64;
            let mut best: Option<i64> = None;
            let mut tags: BTreeSet<NodeId> = BTreeSet::new();
            for &b in neighbors {
                if b == k {
                    // Problem partitioning (FPSS footnote 8): the priced
                    // node's own advertisements are never used to price it.
                    continue;
                }
                let (path_b, d_b): (&[NodeId], i64) = if b == dst {
                    (&[], 0)
                } else {
                    let Some(p) = view.route(b, dst) else {
                        continue;
                    };
                    let Some(c) = data1.path_cost(p) else {
                        continue;
                    };
                    (p, c.value() as i64)
                };
                let detour = if path_b.contains(&k) {
                    let Some(p_bk) = view.price(b, dst, k) else {
                        continue;
                    };
                    p_bk - c_k + d_b
                } else {
                    d_b
                };
                let c_b = if b == dst {
                    0
                } else {
                    let Some(c) = data1.declared(b) else {
                        continue;
                    };
                    c.value() as i64
                };
                let candidate = c_k + c_b + detour - d_me;
                match best {
                    None => {
                        best = Some(candidate);
                        tags.clear();
                        tags.insert(b);
                    }
                    Some(cur) if candidate < cur => {
                        best = Some(candidate);
                        tags.clear();
                        tags.insert(b);
                    }
                    Some(cur) if candidate == cur => {
                        tags.insert(b);
                    }
                    Some(_) => {}
                }
            }
            if let Some(price) = best {
                table.insert(
                    dst,
                    k,
                    PriceEntry {
                        price: specfaith_core::money::Money::new(price),
                        tags,
                    },
                );
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaith_core::money::{Cost, Money};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn data1(costs: &[(u32, u64)]) -> TransitCostList {
        let mut d = TransitCostList::new();
        for &(id, c) in costs {
            d.learn(n(id), Cost::new(c));
        }
        d
    }

    #[test]
    fn learn_route_rejects_malformed_rows() {
        let mut view = NeighborView::new();
        // Path does not start at the claimed neighbor.
        assert!(!view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(0), n(2)],
            }
        ));
        // Path does not end at dst.
        assert!(!view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(1), n(3)],
            }
        ));
        assert!(view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(1), n(2)],
            }
        ));
    }

    #[test]
    fn learn_is_idempotent() {
        let mut view = NeighborView::new();
        let row = RouteRow {
            dst: n(2),
            path: vec![n(1), n(2)],
        };
        assert!(view.learn_route(n(1), &row));
        assert!(!view.learn_route(n(1), &row));
        let price = PriceRow {
            dst: n(2),
            transit: n(3),
            price: Money::new(5),
            tags: BTreeSet::new(),
        };
        assert!(view.learn_price(n(1), &price));
        assert!(!view.learn_price(n(1), &price));
    }

    #[test]
    fn routes_prefer_cheaper_advertised_paths() {
        // me = 0, neighbors 1 (cost 10) and 2 (cost 1); both claim a route
        // to 3. Via 2 is cheaper.
        let d1 = data1(&[(0, 0), (1, 10), (2, 1), (3, 0)]);
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(3),
                path: vec![n(1), n(3)],
            },
        );
        view.learn_route(
            n(2),
            &RouteRow {
                dst: n(3),
                path: vec![n(2), n(3)],
            },
        );
        let table = recompute_routes(n(0), &[n(1), n(2)], &d1, &view);
        assert_eq!(table.path(n(3)), Some(&[n(0), n(2), n(3)][..]));
    }

    #[test]
    fn routes_never_trust_advertised_costs() {
        // A neighbor advertising a path through an expensive node cannot
        // make it look cheap: costs come from DATA1.
        let d1 = data1(&[(0, 0), (1, 1), (2, 1000), (3, 0)]);
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(3),
                path: vec![n(1), n(2), n(3)], // through expensive 2
            },
        );
        let table = recompute_routes(n(0), &[n(1)], &d1, &view);
        let path = table.path(n(3)).expect("route exists");
        // Cost is recomputed locally: 1 (node 1) + 1000 (node 2).
        assert_eq!(d1.path_cost(path), Some(Cost::new(1001)));
    }

    #[test]
    fn routes_skip_candidates_looping_through_me() {
        let d1 = data1(&[(0, 0), (1, 1), (2, 1)]);
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(1), n(0), n(2)], // loops through me
            },
        );
        let table = recompute_routes(n(0), &[n(1)], &d1, &view);
        // No valid candidate survives except... none (1 is not dst 2's
        // neighbor relation is unknown). Only the adjacency candidate for
        // dst=1 itself exists.
        assert_eq!(table.path(n(2)), None);
        assert_eq!(table.path(n(1)), Some(&[n(0), n(1)][..]));
    }

    #[test]
    fn routes_wait_for_unknown_costs() {
        let d1 = data1(&[(0, 0), (1, 1)]); // node 2's cost unknown
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(3),
                path: vec![n(1), n(2), n(3)],
            },
        );
        let table = recompute_routes(n(0), &[n(1)], &d1, &view);
        assert_eq!(table.path(n(3)), None, "intermediate cost unknown");
    }

    #[test]
    fn prices_direct_detour() {
        // Line-ish graph known directly: me=0 routes to 2 via transit 1
        // (cost 5); neighbor 3 (cost 8) advertises a k-free route to 2.
        // p¹ = c₁ + d_{G−1}(0,2) − d(0,2) = 5 + 8 − 5 = 8.
        let d1 = data1(&[(0, 0), (1, 5), (2, 0), (3, 8)]);
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(1), n(2)],
            },
        );
        view.learn_route(
            n(3),
            &RouteRow {
                dst: n(2),
                path: vec![n(3), n(2)],
            },
        );
        let routes = recompute_routes(n(0), &[n(1), n(3)], &d1, &view);
        assert_eq!(routes.path(n(2)), Some(&[n(0), n(1), n(2)][..]));
        let prices = recompute_prices(n(0), &[n(1), n(3)], &d1, &routes, &view);
        let entry = prices.entry(n(2), n(1)).expect("transit 1 priced");
        assert_eq!(entry.price, Money::new(8));
        assert_eq!(entry.tags, [n(3)].into_iter().collect());
    }

    #[test]
    fn prices_never_use_the_priced_node_as_witness() {
        // Only neighbor is k itself: no candidate may be produced.
        let d1 = data1(&[(0, 0), (1, 5), (2, 0)]);
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(1), n(2)],
            },
        );
        let routes = recompute_routes(n(0), &[n(1)], &d1, &view);
        let prices = recompute_prices(n(0), &[n(1)], &d1, &routes, &view);
        assert!(prices.entry(n(2), n(1)).is_none());
    }

    #[test]
    fn prices_tie_produces_tag_union() {
        // Two equal detours through neighbors 3 and 4.
        let d1 = data1(&[(0, 0), (1, 5), (2, 0), (3, 8), (4, 8)]);
        let mut view = NeighborView::new();
        for b in [1u32, 3, 4] {
            view.learn_route(
                n(b),
                &RouteRow {
                    dst: n(2),
                    path: vec![n(b), n(2)],
                },
            );
        }
        let routes = recompute_routes(n(0), &[n(1), n(3), n(4)], &d1, &view);
        let prices = recompute_prices(n(0), &[n(1), n(3), n(4)], &d1, &routes, &view);
        let entry = prices.entry(n(2), n(1)).expect("priced");
        assert_eq!(entry.tags, [n(3), n(4)].into_iter().collect());
    }

    #[test]
    fn prices_use_neighbor_price_when_detour_also_crosses_k() {
        // b's path to dst also goes through k; b's advertised price for k
        // encodes its k-avoiding distance.
        // Geometry: 0 -1- 2, and neighbor 3 whose path is 3-1-2 with an
        // advertised price p¹₃ = 9 (so d_{G−1}(3,2) = 9 − 5 + 5 = 9).
        let d1 = data1(&[(0, 0), (1, 5), (2, 0), (3, 2)]);
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(1), n(2)],
            },
        );
        view.learn_route(
            n(3),
            &RouteRow {
                dst: n(2),
                path: vec![n(3), n(1), n(2)],
            },
        );
        view.learn_price(
            n(3),
            &PriceRow {
                dst: n(2),
                transit: n(1),
                price: Money::new(9),
                tags: BTreeSet::new(),
            },
        );
        let routes = recompute_routes(n(0), &[n(1), n(3)], &d1, &view);
        // Route 0→2: via 1 costs 5; via 3 costs 2+5=7 → via 1.
        assert_eq!(routes.path(n(2)), Some(&[n(0), n(1), n(2)][..]));
        let prices = recompute_prices(n(0), &[n(1), n(3)], &d1, &routes, &view);
        let entry = prices.entry(n(2), n(1)).expect("priced");
        // p¹₀ = c₁ + [c₃ + (p¹₃ − c₁ + d₃)] − d₀ = 5 + [2 + (9−5+5)] − 5 = 11.
        assert_eq!(entry.price, Money::new(11));
    }

    #[test]
    fn prices_skip_when_neighbor_price_missing() {
        let d1 = data1(&[(0, 0), (1, 5), (2, 0), (3, 2)]);
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(1), n(2)],
            },
        );
        view.learn_route(
            n(3),
            &RouteRow {
                dst: n(2),
                path: vec![n(3), n(1), n(2)],
            },
        );
        // No price advertised by 3 yet → no entry (the iteration will
        // produce it once 3's price arrives).
        let routes = recompute_routes(n(0), &[n(1), n(3)], &d1, &view);
        let prices = recompute_prices(n(0), &[n(1), n(3)], &d1, &routes, &view);
        assert!(prices.entry(n(2), n(1)).is_none());
    }
}
