//! Pure FPSS recomputation functions.
//!
//! Everything a node computes in construction phase 2 — its routing table
//! from neighbors' advertised paths, and its pricing table from neighbors'
//! advertised prices — is implemented here as **pure functions of the
//! node's inputs**. Three callers share them:
//!
//! * the plain FPSS node ([`crate::node`]),
//! * the faithful principal, and
//! * every checker mirror (which recomputes what *its principal* should
//!   have computed from the forwarded inputs).
//!
//! Purity is not a style choice: the bank compares table hashes across
//! principal and checkers, so the recomputation must be a deterministic
//! function of the inputs and nothing else.

use crate::msg::{PriceRow, RouteRow};
use crate::state::{PriceEntry, PricingTable, RoutingTable, TransitCostList};
use specfaith_core::id::NodeId;
use specfaith_core::money::Cost;
use specfaith_graph::path::PathMetric;
use std::collections::{BTreeMap, BTreeSet};

/// Dense-slot ceiling for the per-neighbor route tables. Honest
/// destination ids are dense `0..n` and sit far below this; advertised
/// rows naming larger ids (only forgeable — see the deviation hooks) fall
/// back to the sparse map so a hostile row cannot force a giant
/// allocation.
const DENSE_ROUTE_SLOTS: usize = 4096;

/// A node's record of what its neighbors have advertised: routes and
/// prices, exactly as received (the inputs to recomputation).
///
/// Routes are stored per neighbor, dense by destination index: the
/// recompute functions read `route(b, dst)` on their innermost loops, so
/// the lookup is a short linear probe over the (few) neighbors plus an
/// array read — never a tree walk. Destinations at or beyond the dense
/// ceiling (forged ids) take the sparse fallback.
#[derive(Clone, Debug, Default)]
pub struct NeighborView {
    /// Per neighbor, `paths[dst.index()]` = the advertised path (starting
    /// at the neighbor, ending at dst), `None` where nothing advertised.
    routes: Vec<(NodeId, Vec<Option<Vec<NodeId>>>)>,
    /// Rows whose destination index does not fit the dense table.
    sparse_routes: BTreeMap<(NodeId, NodeId), Vec<NodeId>>,
    /// `(neighbor, dst, transit) → neighbor's advertised per-packet price`.
    prices: BTreeMap<(NodeId, NodeId, NodeId), i64>,
    /// Reverse membership index: `node → (dst → occurrences)` counts how
    /// many stored routes toward `dst` contain `node` anywhere on their
    /// path. Maintained incrementally by [`NeighborView::learn_route`]
    /// (an accounting view of the stored rows — deliberately excluded
    /// from equality) so [`NeighborView::dsts_through`] answers the
    /// flood-time invalidation query — *which destinations could a newly
    /// learned cost affect?* — without scanning every stored path.
    through: BTreeMap<NodeId, BTreeMap<NodeId, u32>>,
}

impl NeighborView {
    /// An empty view.
    pub fn new() -> Self {
        Self::default()
    }

    fn index_path(
        through: &mut BTreeMap<NodeId, BTreeMap<NodeId, u32>>,
        dst: NodeId,
        path: &[NodeId],
    ) {
        for &v in path {
            *through.entry(v).or_default().entry(dst).or_insert(0) += 1;
        }
    }

    fn unindex_path(
        through: &mut BTreeMap<NodeId, BTreeMap<NodeId, u32>>,
        dst: NodeId,
        path: &[NodeId],
    ) {
        for &v in path {
            let per_node = through.get_mut(&v).expect("indexed path node");
            let count = per_node.get_mut(&dst).expect("indexed dst");
            *count -= 1;
            if *count == 0 {
                per_node.remove(&dst);
                if per_node.is_empty() {
                    through.remove(&v);
                }
            }
        }
    }

    /// Records a route advertisement from `neighbor`. Returns `true` if
    /// the stored row changed. Rows whose path does not start at the
    /// neighbor or end at the row's destination are rejected (malformed).
    pub fn learn_route(&mut self, neighbor: NodeId, row: &RouteRow) -> bool {
        if row.path.first() != Some(&neighbor) || row.path.last() != Some(&row.dst) {
            return false;
        }
        let slot = row.dst.index();
        if slot >= DENSE_ROUTE_SLOTS {
            let key = (neighbor, row.dst);
            if self.sparse_routes.get(&key) == Some(&row.path) {
                return false;
            }
            if let Some(old) = self.sparse_routes.insert(key, row.path.clone()) {
                Self::unindex_path(&mut self.through, row.dst, &old);
            }
            Self::index_path(&mut self.through, row.dst, &row.path);
            return true;
        }
        let at = match self.routes.iter().position(|(b, _)| *b == neighbor) {
            Some(at) => at,
            None => {
                self.routes.push((neighbor, Vec::new()));
                self.routes.len() - 1
            }
        };
        let paths = &mut self.routes[at].1;
        if slot >= paths.len() {
            paths.resize(slot + 1, None);
        }
        if paths[slot].as_ref() == Some(&row.path) {
            return false;
        }
        if let Some(old) = paths[slot].replace(row.path.clone()) {
            Self::unindex_path(&mut self.through, row.dst, &old);
        }
        Self::index_path(&mut self.through, row.dst, &row.path);
        true
    }

    /// The destinations with at least one stored route whose path visits
    /// `node` (as transit, origin, or the destination itself) — the
    /// invalidation set of a newly learned declared cost for `node`.
    pub fn dsts_through(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.through
            .get(&node)
            .into_iter()
            .flat_map(|dsts| dsts.keys().copied())
    }

    /// Records a price advertisement from `neighbor`. Returns `true` if
    /// the stored value changed.
    pub fn learn_price(&mut self, neighbor: NodeId, row: &PriceRow) -> bool {
        let key = (neighbor, row.dst, row.transit);
        let value = row.price.value();
        if self.prices.get(&key) == Some(&value) {
            return false;
        }
        self.prices.insert(key, value);
        true
    }

    /// Removes a previously advertised price (the neighbor retracted it).
    /// Returns `true` if the view changed.
    pub fn retract_price(&mut self, neighbor: NodeId, dst: NodeId, transit: NodeId) -> bool {
        self.prices.remove(&(neighbor, dst, transit)).is_some()
    }

    /// The path `neighbor` advertised toward `dst`, if any.
    pub fn route(&self, neighbor: NodeId, dst: NodeId) -> Option<&[NodeId]> {
        if dst.index() >= DENSE_ROUTE_SLOTS {
            return self.sparse_routes.get(&(neighbor, dst)).map(Vec::as_slice);
        }
        let (_, paths) = self.routes.iter().find(|(b, _)| *b == neighbor)?;
        paths.get(dst.index())?.as_deref()
    }

    /// The price `neighbor` advertised for `(dst, transit)`, if any.
    pub fn price(&self, neighbor: NodeId, dst: NodeId, transit: NodeId) -> Option<i64> {
        self.prices.get(&(neighbor, dst, transit)).copied()
    }

    /// The advertised routes as sorted `((neighbor, dst), path)` content
    /// (normalizes away storage artifacts like trailing empty slots).
    fn route_content(&self) -> BTreeMap<(NodeId, NodeId), &Vec<NodeId>> {
        let mut content = BTreeMap::new();
        for (neighbor, paths) in &self.routes {
            for (slot, path) in paths.iter().enumerate() {
                if let Some(path) = path {
                    content.insert((*neighbor, NodeId::from_index(slot)), path);
                }
            }
        }
        for (&key, path) in &self.sparse_routes {
            content.insert(key, path);
        }
        content
    }
}

impl PartialEq for NeighborView {
    fn eq(&self, other: &Self) -> bool {
        self.prices == other.prices && self.route_content() == other.route_content()
    }
}

impl Eq for NeighborView {}

/// Recomputes the routing table of `me` from its transit-cost list and
/// neighbor advertisements.
///
/// For each destination, the candidate via neighbor `b` is `[me] ++
/// path_b(dst)`, **costed locally from DATA1** (advertised costs are never
/// trusted — this is the \[CHECK1\] verification built into the update rule).
/// Candidates are compared under the [`PathMetric`] total order, so every
/// honest node resolves ties identically.
pub fn recompute_routes(
    me: NodeId,
    neighbors: &[NodeId],
    data1: &TransitCostList,
    view: &NeighborView,
) -> RoutingTable {
    // Destinations: every node we have ever heard of.
    let mut dsts: BTreeSet<NodeId> = data1.iter().map(|(n, _)| n).collect();
    for &b in neighbors {
        dsts.insert(b);
    }
    let mut table = RoutingTable::new();
    table.install(me, vec![me]);
    for dst in dsts {
        if dst == me {
            continue;
        }
        if let Some(path) = best_route_to(me, neighbors, data1, view, dst) {
            table.install(dst, path);
        }
    }
    table
}

/// The update rule for one destination: the best candidate `[me] ++
/// path_b` over all neighbors `b`, costed locally from DATA1. Exactly the
/// `dst` row a full [`recompute_routes`] would produce — the row is a pure
/// function of `dst`'s advertised routes and DATA1, which is what makes
/// destination-scoped incremental recomputation sound.
pub fn best_route_to(
    me: NodeId,
    neighbors: &[NodeId],
    data1: &TransitCostList,
    view: &NeighborView,
    dst: NodeId,
) -> Option<Vec<NodeId>> {
    // Candidates are compared without materializing them: every candidate
    // is `[me] ++ path_b`, so the shared `[me]` prefix drops out of the
    // PathMetric order and `(cost, path_b.len(), path_b)` ranks candidates
    // identically. Only the winner is allocated (and still passes through
    // `PathMetric::new`, which guards the simple-path invariant for the
    // installed route).
    let direct = [dst];
    let mut best: Option<(Cost, &[NodeId])> = None;
    for &b in neighbors {
        let path_b: &[NodeId] = if b == dst {
            &direct
        } else {
            let Some(path_b) = view.route(b, dst) else {
                continue;
            };
            if path_b.contains(&me) {
                continue; // would loop
            }
            path_b
        };
        // Candidate intermediates are every path_b node but the last.
        let Some(cost) = data1.extension_cost(path_b) else {
            continue; // some intermediate's declared cost unknown yet
        };
        let improves = match &best {
            None => true,
            Some((best_cost, best_path)) => {
                (cost, path_b.len(), path_b) < (*best_cost, best_path.len(), best_path)
            }
        };
        if improves {
            best = Some((cost, path_b));
        }
    }
    let (cost, path_b) = best?;
    let mut nodes = Vec::with_capacity(1 + path_b.len());
    nodes.push(me);
    nodes.extend_from_slice(path_b);
    Some(PathMetric::new(nodes, cost).into_nodes())
}

/// Recomputes the pricing table \[DATA3*\] of `me`.
///
/// For each destination `j` on the routing table and each transit `k` on
/// the chosen path, the per-packet VCG payment is
/// `pᵏ = ĉ_k + d_{G−k}(me,j) − d(me,j)`, where the `k`-avoiding distance is
/// estimated by the FPSS iterative rule over neighbors `b ≠ k`:
///
/// * if `k` is **not** on `b`'s advertised path to `j`, the detour through
///   `b` costs `ĉ_b + d_b(j)` (the advertised path itself avoids `k`);
/// * if `k` **is** on it, `b`'s own advertised price for `k` encodes `b`'s
///   `k`-avoiding distance: `d_{G−k}(b,j) = pᵏ_b − ĉ_k + d_b(j)`.
///
/// The DATA3* identity tags record which neighbor(s) attained the minimum
/// (union on ties), which is what lets checkers detect spoofed pricing
/// messages (\[CHECK2\], \[BANK2\]).
pub fn recompute_prices(
    me: NodeId,
    neighbors: &[NodeId],
    data1: &TransitCostList,
    routes: &RoutingTable,
    view: &NeighborView,
) -> PricingTable {
    let mut table = PricingTable::new();
    for (dst, path) in routes.iter() {
        if dst == me {
            continue;
        }
        for (transit, entry) in price_entries_to(neighbors, data1, path, view, dst) {
            table.insert(dst, transit, entry);
        }
    }
    table
}

/// The pricing rows of one destination — `(transit, entry)` per transit
/// on `path` (this node's route to `dst`), sorted by transit. Exactly the
/// `dst` rows a full [`recompute_prices`] would produce: pricing for a
/// destination is a pure function of that destination's route, its
/// advertised routes/prices, and DATA1, which is what makes
/// destination-scoped incremental recomputation sound.
pub fn price_entries_to(
    neighbors: &[NodeId],
    data1: &TransitCostList,
    path: &[NodeId],
    view: &NeighborView,
    dst: NodeId,
) -> Vec<(NodeId, PriceEntry)> {
    let transits: &[NodeId] = if path.len() <= 2 {
        &[]
    } else {
        &path[1..path.len() - 1]
    };
    if transits.is_empty() {
        return Vec::new();
    }
    let Some(d_me) = data1.path_cost(path) else {
        return Vec::new();
    };
    let d_me = d_me.value() as i64;
    // Per-neighbor inputs — advertised path, its locally-costed distance,
    // the neighbor's declared cost — are pure functions of `(b, dst)`, so
    // they are derived once here rather than once per transit. `None` =
    // this neighbor contributes no candidate.
    let per_neighbor: Vec<Option<(&[NodeId], i64, i64)>> = neighbors
        .iter()
        .map(|&b| {
            if b == dst {
                return Some((&[][..], 0, 0));
            }
            let p = view.route(b, dst)?;
            let d_b = data1.path_cost(p)?.value() as i64;
            let c_b = data1.declared(b)?.value() as i64;
            Some((p, d_b, c_b))
        })
        .collect();
    let mut rows = Vec::with_capacity(transits.len());
    for &k in transits {
        let Some(c_k) = data1.declared(k) else {
            continue;
        };
        let c_k = c_k.value() as i64;
        let mut best: Option<i64> = None;
        let mut tags: BTreeSet<NodeId> = BTreeSet::new();
        for (&b, inputs) in neighbors.iter().zip(&per_neighbor) {
            if b == k {
                // Problem partitioning (FPSS footnote 8): the priced
                // node's own advertisements are never used to price it.
                continue;
            }
            let Some((path_b, d_b, c_b)) = *inputs else {
                continue;
            };
            let detour = if path_b.contains(&k) {
                let Some(p_bk) = view.price(b, dst, k) else {
                    continue;
                };
                p_bk - c_k + d_b
            } else {
                d_b
            };
            let candidate = c_k + c_b + detour - d_me;
            match best {
                None => {
                    best = Some(candidate);
                    tags.clear();
                    tags.insert(b);
                }
                Some(cur) if candidate < cur => {
                    best = Some(candidate);
                    tags.clear();
                    tags.insert(b);
                }
                Some(cur) if candidate == cur => {
                    tags.insert(b);
                }
                Some(_) => {}
            }
        }
        if let Some(price) = best {
            rows.push((
                k,
                PriceEntry {
                    price: specfaith_core::money::Money::new(price),
                    tags,
                },
            ));
        }
    }
    // Paths visit transits in route order; announcements and diffs expect
    // transit order (the order a full-table rebuild iterates in).
    rows.sort_by_key(|(k, _)| *k);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaith_core::money::{Cost, Money};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn data1(costs: &[(u32, u64)]) -> TransitCostList {
        let mut d = TransitCostList::new();
        for &(id, c) in costs {
            d.learn(n(id), Cost::new(c));
        }
        d
    }

    #[test]
    fn learn_route_rejects_malformed_rows() {
        let mut view = NeighborView::new();
        // Path does not start at the claimed neighbor.
        assert!(!view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(0), n(2)],
            }
        ));
        // Path does not end at dst.
        assert!(!view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(1), n(3)],
            }
        ));
        assert!(view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(1), n(2)],
            }
        ));
    }

    #[test]
    fn forged_huge_destination_ids_stay_sparse() {
        // A deviant can advertise any destination id; a forged id far
        // beyond the dense range must not force a giant allocation, and
        // must still round-trip through the view.
        let mut view = NeighborView::new();
        let forged = NodeId::new(1_000_000_000);
        let row = RouteRow {
            dst: forged,
            path: vec![n(1), forged],
        };
        assert!(view.learn_route(n(1), &row));
        assert!(!view.learn_route(n(1), &row), "idempotent");
        assert_eq!(view.route(n(1), forged), Some(&[n(1), forged][..]));
        assert_eq!(view.route(n(1), n(2)), None);
        let mut same = NeighborView::new();
        same.learn_route(n(1), &row);
        assert_eq!(view, same, "equality covers sparse rows");
    }

    #[test]
    fn learn_is_idempotent() {
        let mut view = NeighborView::new();
        let row = RouteRow {
            dst: n(2),
            path: vec![n(1), n(2)],
        };
        assert!(view.learn_route(n(1), &row));
        assert!(!view.learn_route(n(1), &row));
        let price = PriceRow {
            dst: n(2),
            transit: n(3),
            price: Money::new(5),
            tags: BTreeSet::new(),
        };
        assert!(view.learn_price(n(1), &price));
        assert!(!view.learn_price(n(1), &price));
    }

    #[test]
    fn routes_prefer_cheaper_advertised_paths() {
        // me = 0, neighbors 1 (cost 10) and 2 (cost 1); both claim a route
        // to 3. Via 2 is cheaper.
        let d1 = data1(&[(0, 0), (1, 10), (2, 1), (3, 0)]);
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(3),
                path: vec![n(1), n(3)],
            },
        );
        view.learn_route(
            n(2),
            &RouteRow {
                dst: n(3),
                path: vec![n(2), n(3)],
            },
        );
        let table = recompute_routes(n(0), &[n(1), n(2)], &d1, &view);
        assert_eq!(table.path(n(3)), Some(&[n(0), n(2), n(3)][..]));
    }

    #[test]
    fn routes_never_trust_advertised_costs() {
        // A neighbor advertising a path through an expensive node cannot
        // make it look cheap: costs come from DATA1.
        let d1 = data1(&[(0, 0), (1, 1), (2, 1000), (3, 0)]);
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(3),
                path: vec![n(1), n(2), n(3)], // through expensive 2
            },
        );
        let table = recompute_routes(n(0), &[n(1)], &d1, &view);
        let path = table.path(n(3)).expect("route exists");
        // Cost is recomputed locally: 1 (node 1) + 1000 (node 2).
        assert_eq!(d1.path_cost(path), Some(Cost::new(1001)));
    }

    #[test]
    fn routes_skip_candidates_looping_through_me() {
        let d1 = data1(&[(0, 0), (1, 1), (2, 1)]);
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(1), n(0), n(2)], // loops through me
            },
        );
        let table = recompute_routes(n(0), &[n(1)], &d1, &view);
        // No valid candidate survives except... none (1 is not dst 2's
        // neighbor relation is unknown). Only the adjacency candidate for
        // dst=1 itself exists.
        assert_eq!(table.path(n(2)), None);
        assert_eq!(table.path(n(1)), Some(&[n(0), n(1)][..]));
    }

    #[test]
    fn routes_wait_for_unknown_costs() {
        let d1 = data1(&[(0, 0), (1, 1)]); // node 2's cost unknown
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(3),
                path: vec![n(1), n(2), n(3)],
            },
        );
        let table = recompute_routes(n(0), &[n(1)], &d1, &view);
        assert_eq!(table.path(n(3)), None, "intermediate cost unknown");
    }

    #[test]
    fn prices_direct_detour() {
        // Line-ish graph known directly: me=0 routes to 2 via transit 1
        // (cost 5); neighbor 3 (cost 8) advertises a k-free route to 2.
        // p¹ = c₁ + d_{G−1}(0,2) − d(0,2) = 5 + 8 − 5 = 8.
        let d1 = data1(&[(0, 0), (1, 5), (2, 0), (3, 8)]);
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(1), n(2)],
            },
        );
        view.learn_route(
            n(3),
            &RouteRow {
                dst: n(2),
                path: vec![n(3), n(2)],
            },
        );
        let routes = recompute_routes(n(0), &[n(1), n(3)], &d1, &view);
        assert_eq!(routes.path(n(2)), Some(&[n(0), n(1), n(2)][..]));
        let prices = recompute_prices(n(0), &[n(1), n(3)], &d1, &routes, &view);
        let entry = prices.entry(n(2), n(1)).expect("transit 1 priced");
        assert_eq!(entry.price, Money::new(8));
        assert_eq!(entry.tags, [n(3)].into_iter().collect());
    }

    #[test]
    fn prices_never_use_the_priced_node_as_witness() {
        // Only neighbor is k itself: no candidate may be produced.
        let d1 = data1(&[(0, 0), (1, 5), (2, 0)]);
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(1), n(2)],
            },
        );
        let routes = recompute_routes(n(0), &[n(1)], &d1, &view);
        let prices = recompute_prices(n(0), &[n(1)], &d1, &routes, &view);
        assert!(prices.entry(n(2), n(1)).is_none());
    }

    #[test]
    fn prices_tie_produces_tag_union() {
        // Two equal detours through neighbors 3 and 4.
        let d1 = data1(&[(0, 0), (1, 5), (2, 0), (3, 8), (4, 8)]);
        let mut view = NeighborView::new();
        for b in [1u32, 3, 4] {
            view.learn_route(
                n(b),
                &RouteRow {
                    dst: n(2),
                    path: vec![n(b), n(2)],
                },
            );
        }
        let routes = recompute_routes(n(0), &[n(1), n(3), n(4)], &d1, &view);
        let prices = recompute_prices(n(0), &[n(1), n(3), n(4)], &d1, &routes, &view);
        let entry = prices.entry(n(2), n(1)).expect("priced");
        assert_eq!(entry.tags, [n(3), n(4)].into_iter().collect());
    }

    #[test]
    fn prices_use_neighbor_price_when_detour_also_crosses_k() {
        // b's path to dst also goes through k; b's advertised price for k
        // encodes its k-avoiding distance.
        // Geometry: 0 -1- 2, and neighbor 3 whose path is 3-1-2 with an
        // advertised price p¹₃ = 9 (so d_{G−1}(3,2) = 9 − 5 + 5 = 9).
        let d1 = data1(&[(0, 0), (1, 5), (2, 0), (3, 2)]);
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(1), n(2)],
            },
        );
        view.learn_route(
            n(3),
            &RouteRow {
                dst: n(2),
                path: vec![n(3), n(1), n(2)],
            },
        );
        view.learn_price(
            n(3),
            &PriceRow {
                dst: n(2),
                transit: n(1),
                price: Money::new(9),
                tags: BTreeSet::new(),
            },
        );
        let routes = recompute_routes(n(0), &[n(1), n(3)], &d1, &view);
        // Route 0→2: via 1 costs 5; via 3 costs 2+5=7 → via 1.
        assert_eq!(routes.path(n(2)), Some(&[n(0), n(1), n(2)][..]));
        let prices = recompute_prices(n(0), &[n(1), n(3)], &d1, &routes, &view);
        let entry = prices.entry(n(2), n(1)).expect("priced");
        // p¹₀ = c₁ + [c₃ + (p¹₃ − c₁ + d₃)] − d₀ = 5 + [2 + (9−5+5)] − 5 = 11.
        assert_eq!(entry.price, Money::new(11));
    }

    #[test]
    fn prices_skip_when_neighbor_price_missing() {
        let d1 = data1(&[(0, 0), (1, 5), (2, 0), (3, 2)]);
        let mut view = NeighborView::new();
        view.learn_route(
            n(1),
            &RouteRow {
                dst: n(2),
                path: vec![n(1), n(2)],
            },
        );
        view.learn_route(
            n(3),
            &RouteRow {
                dst: n(2),
                path: vec![n(3), n(1), n(2)],
            },
        );
        // No price advertised by 3 yet → no entry (the iteration will
        // produce it once 3's price arrives).
        let routes = recompute_routes(n(0), &[n(1), n(3)], &d1, &view);
        let prices = recompute_prices(n(0), &[n(1), n(3)], &d1, &routes, &view);
        assert!(prices.entry(n(2), n(1)).is_none());
    }
}
