//! The naive pricing baseline of Example 1.
//!
//! FPSS observes that "under many pricing schemes, a node could be better
//! off lying about its costs". The simplest such scheme — pay every
//! transit node its **declared** cost per packet — is the foil for the
//! paper's Example 1: node C profits by over-declaring. This module
//! implements that baseline centrally so experiments can sweep
//! declarations and compare against VCG.

use crate::pricing::vcg_payment_in;
use specfaith_core::id::NodeId;
use specfaith_core::money::{Cost, Money};
use specfaith_graph::cache::CacheScope;
use specfaith_graph::costs::CostVector;
use specfaith_graph::topology::Topology;

/// A transit node's utility under **naive** (pay-declared-cost) pricing,
/// with routes served from `scope`: for each flow whose LCP (under
/// `declared`) transits `node`, it is paid its declared cost and incurs
/// its true cost, per packet.
pub fn naive_transit_utility_scoped(
    scope: &CacheScope,
    topo: &Topology,
    true_costs: &CostVector,
    declared: &CostVector,
    flows: &[(NodeId, NodeId, u64)],
    node: NodeId,
) -> Money {
    let routes = scope.cache(topo, declared);
    let paid = declared.cost(node).value() as i64;
    let incurred = true_costs.cost(node).value() as i64;
    let mut utility = 0i64;
    for &(src, dst, packets) in flows {
        let Some(path) = routes.path(src, dst) else {
            continue;
        };
        if path.transit_nodes().contains(&node) {
            utility += (paid - incurred) * packets as i64;
        }
    }
    Money::new(utility)
}

/// [`naive_transit_utility_scoped`] against the process-shared registry —
/// the compatibility default for callers with no [`CacheScope`].
pub fn naive_transit_utility(
    topo: &Topology,
    true_costs: &CostVector,
    declared: &CostVector,
    flows: &[(NodeId, NodeId, u64)],
    node: NodeId,
) -> Money {
    naive_transit_utility_scoped(
        &CacheScope::global(),
        topo,
        true_costs,
        declared,
        flows,
        node,
    )
}

/// The same transit node's utility under **VCG** pricing for the same
/// declared costs (payment `ĉ + d_{G−k} − d` per packet), with routes
/// served from `scope`.
pub fn vcg_transit_utility_scoped(
    scope: &CacheScope,
    topo: &Topology,
    true_costs: &CostVector,
    declared: &CostVector,
    flows: &[(NodeId, NodeId, u64)],
    node: NodeId,
) -> Money {
    let routes = scope.cache(topo, declared);
    let incurred = true_costs.cost(node).value() as i64;
    let mut utility = 0i64;
    for &(src, dst, packets) in flows {
        if let Some(p) = vcg_payment_in(&routes, src, dst, node) {
            utility += (p.value() - incurred) * packets as i64;
        }
    }
    Money::new(utility)
}

/// [`vcg_transit_utility_scoped`] against the process-shared registry —
/// the compatibility default for callers with no [`CacheScope`].
pub fn vcg_transit_utility(
    topo: &Topology,
    true_costs: &CostVector,
    declared: &CostVector,
    flows: &[(NodeId, NodeId, u64)],
    node: NodeId,
) -> Money {
    vcg_transit_utility_scoped(
        &CacheScope::global(),
        topo,
        true_costs,
        declared,
        flows,
        node,
    )
}

/// Sweeps `node`'s declared cost over `0..=max_declared` and returns
/// `(declared, naive utility, vcg utility)` rows — the Example 1 table.
///
/// The sweep owns its route caches: every row declares a distinct cost
/// vector, so the rows are served from a sweep-scoped [`CacheScope`]
/// dropped on return instead of churning the process-wide registry.
pub fn example1_sweep(
    topo: &Topology,
    true_costs: &CostVector,
    flows: &[(NodeId, NodeId, u64)],
    node: NodeId,
    max_declared: u64,
) -> Vec<(u64, Money, Money)> {
    let scope = CacheScope::unbounded();
    (0..=max_declared)
        .map(|declared_cost| {
            let declared = true_costs.with_cost(node, Cost::new(declared_cost));
            (
                declared_cost,
                naive_transit_utility_scoped(&scope, topo, true_costs, &declared, flows, node),
                vcg_transit_utility_scoped(&scope, topo, true_costs, &declared, flows, node),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::vcg_payment;
    use specfaith_graph::cache::RouteCache;
    use specfaith_graph::generators::figure1;

    fn flows(net: &specfaith_graph::generators::Figure1) -> Vec<(NodeId, NodeId, u64)> {
        vec![(net.x, net.z, 10), (net.d, net.z, 10)]
    }

    #[test]
    fn naive_pricing_rewards_the_example1_lie() {
        let net = figure1();
        let rows = example1_sweep(&net.topology, &net.costs, &flows(&net), net.c, 8);
        let at = |d: u64| rows[d as usize];
        let (_, truthful_naive, _) = at(1);
        let (_, lying_naive, _) = at(5);
        assert!(
            lying_naive > truthful_naive,
            "the paper's Example 1: declaring 5 beats the truth under naive pricing"
        );
    }

    #[test]
    fn vcg_pricing_is_maximized_at_the_truth() {
        let net = figure1();
        let rows = example1_sweep(&net.topology, &net.costs, &flows(&net), net.c, 8);
        let truthful_vcg = rows[1].2;
        for &(declared, _, vcg) in &rows {
            assert!(
                vcg <= truthful_vcg,
                "declaring {declared} must not beat the truth under VCG"
            );
        }
    }

    #[test]
    fn lie_flips_the_xz_lcp_at_four() {
        // The X→Z flow stops transiting C once C's declaration makes
        // X-D-C-Z (1 + ĉ) cost more than X-A-Z (5), i.e. at ĉ ≥ 4 with the
        // fewest-hops tie-break resolving ĉ = 4 toward A.
        let net = figure1();
        for declared in [3u64, 4] {
            let lied = net.costs.with_cost(net.c, Cost::new(declared));
            let routes = RouteCache::shared(&net.topology, &lied);
            let path = routes.path(net.x, net.z).expect("biconnected");
            let via_c = path.transit_nodes().contains(&net.c);
            assert_eq!(via_c, declared < 4, "declared {declared}");
        }
    }

    #[test]
    fn vcg_payment_invariance_drives_the_result() {
        // C's VCG payment for the D→Z flow is constant in its declaration
        // (while it stays on the LCP) — the pivot-rule invariance.
        let net = figure1();
        let mut payments = Vec::new();
        for declared in 0..=3u64 {
            let lied = net.costs.with_cost(net.c, Cost::new(declared));
            payments.push(vcg_payment(&net.topology, &lied, net.d, net.z, net.c));
        }
        assert!(payments.windows(2).all(|w| w[0] == w[1]), "{payments:?}");
    }
}
