//! One-call harness for plain FPSS runs.

use crate::deviation::{Faithful, RationalStrategy};
use crate::node::{PlainFpssNode, TAG_BEGIN_EXECUTION};
use crate::pricing::{expected_tables, tables_agree};
use crate::settle::{settle_plain, SettlementConfig};
use crate::traffic::TrafficMatrix;
use specfaith_core::id::NodeId;
use specfaith_core::money::Money;
use specfaith_graph::costs::CostVector;
use specfaith_graph::topology::Topology;
use specfaith_netsim::{Connectivity, FixedLatency, NetStats, Network, SimDuration};

/// Configuration and entry points for plain-FPSS simulations.
#[derive(Clone, Debug)]
pub struct PlainFpssSim {
    topo: Topology,
    true_costs: CostVector,
    traffic: TrafficMatrix,
    latency_micros: u64,
    settlement: SettlementConfig,
    max_events: u64,
}

/// Result of one plain-FPSS run.
#[derive(Clone, Debug)]
pub struct PlainRunResult {
    /// Realized utility per node.
    pub utilities: Vec<Money>,
    /// Whether every node's converged tables equal the centralized
    /// reference under the *declared* costs. Expected `true` for faithful
    /// runs; deviant runs may corrupt tables by design.
    pub tables_match_centralized: bool,
    /// Network traffic statistics (construction + execution).
    pub stats: NetStats,
    /// Whether either run phase hit the event budget.
    pub truncated: bool,
}

impl PlainFpssSim {
    /// A simulation over a biconnected topology with true costs and an
    /// execution-phase traffic matrix.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not biconnected or arities mismatch.
    pub fn new(topo: Topology, true_costs: CostVector, traffic: TrafficMatrix) -> Self {
        assert!(topo.is_biconnected(), "FPSS requires a biconnected graph");
        assert_eq!(topo.num_nodes(), true_costs.len(), "cost arity");
        PlainFpssSim {
            topo,
            true_costs,
            traffic,
            latency_micros: 10,
            settlement: SettlementConfig::default(),
            max_events: 5_000_000,
        }
    }

    /// Overrides the settlement configuration.
    #[must_use]
    pub fn with_settlement(mut self, settlement: SettlementConfig) -> Self {
        self.settlement = settlement;
        self
    }

    /// Overrides the event budget.
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Runs with every node faithful.
    pub fn run_faithful(&self, seed: u64) -> PlainRunResult {
        self.run_with(|_| Box::new(Faithful), seed)
    }

    /// Runs with `deviant` playing `strategy` and everyone else faithful.
    pub fn run_with_deviant(
        &self,
        deviant: NodeId,
        strategy: Box<dyn RationalStrategy>,
        seed: u64,
    ) -> PlainRunResult {
        let mut strategy = Some(strategy);
        self.run_with(
            move |node| {
                if node == deviant {
                    strategy.take().expect("deviant strategy used once")
                } else {
                    Box::new(Faithful)
                }
            },
            seed,
        )
    }

    /// Runs with an arbitrary per-node strategy assignment.
    pub fn run_with(
        &self,
        mut strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
        seed: u64,
    ) -> PlainRunResult {
        let n = self.topo.num_nodes();
        let max_hops = (4 * n) as u32;
        let actors: Vec<PlainFpssNode> = self
            .topo
            .nodes()
            .map(|me| {
                PlainFpssNode::new(
                    me,
                    self.topo.neighbors(me).to_vec(),
                    self.true_costs.cost(me),
                    strategies(me),
                    max_hops,
                )
            })
            .collect();
        let mut net = Network::new(
            Connectivity::from_topology(&self.topo),
            actors,
            FixedLatency::new(self.latency_micros),
            seed,
        )
        .with_max_events(self.max_events);

        // Construction: flood costs, converge routing and pricing.
        let construction = net.run();

        // Compare converged tables with the centralized reference under
        // the declared costs.
        let declared: CostVector = self
            .topo
            .nodes()
            .map(|id| net.node(id).declared_cost().expect("started"))
            .collect();
        let reference = expected_tables(&self.topo, &declared);
        let tables_match_centralized = self.topo.nodes().all(|id| {
            let core = net.node(id).core();
            let (expected_routing, expected_pricing) = &reference[id.index()];
            tables_agree(core.routes(), core.prices(), expected_routing, expected_pricing)
        });

        // Execution: queue traffic, start all sources at once.
        for flow in self.traffic.flows() {
            net.node_mut(flow.src).add_traffic(flow.dst, flow.packets);
        }
        let sources: std::collections::BTreeSet<NodeId> =
            self.traffic.flows().iter().map(|f| f.src).collect();
        for src in sources {
            net.schedule_timer(src, SimDuration::ZERO, TAG_BEGIN_EXECUTION);
        }
        let execution = net.run();

        let summaries: Vec<_> = self
            .topo
            .nodes()
            .map(|id| net.node_mut(id).execution_summary())
            .collect();
        let utilities = settle_plain(&summaries, &self.settlement);

        PlainRunResult {
            utilities,
            tables_match_centralized,
            stats: net.stats().clone(),
            truncated: construction.truncated || execution.truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deviation::{
        DropTransitPackets, MisreportCost, SpoofShortRoutes, UnderreportPayments,
    };
    use specfaith_graph::generators::figure1;

    fn figure1_sim() -> (specfaith_graph::generators::Figure1, PlainFpssSim) {
        let net = figure1();
        let traffic = TrafficMatrix::from_flows(vec![
            crate::traffic::Flow {
                src: net.x,
                dst: net.z,
                packets: 5,
            },
            crate::traffic::Flow {
                src: net.d,
                dst: net.z,
                packets: 5,
            },
        ]);
        let sim = PlainFpssSim::new(net.topology.clone(), net.costs.clone(), traffic);
        (net, sim)
    }

    #[test]
    fn faithful_run_converges_to_centralized_tables() {
        let (_, sim) = figure1_sim();
        let result = sim.run_faithful(3);
        assert!(result.tables_match_centralized);
        assert!(!result.truncated);
    }

    #[test]
    fn faithful_utilities_balance_payments() {
        let (net, sim) = figure1_sim();
        let result = sim.run_faithful(3);
        // C transits both flows (X→Z and D→Z): it is paid above true cost.
        assert!(
            result.utilities[net.c.index()] > Money::ZERO,
            "transit C profits: {:?}",
            result.utilities
        );
        // Sources gain packet value minus payments, still positive.
        assert!(result.utilities[net.x.index()] > Money::ZERO);
    }

    #[test]
    fn misreporting_cost_is_unprofitable_even_in_plain_fpss() {
        // FPSS's own contribution: the VCG pricing makes cost lies useless.
        let (net, sim) = figure1_sim();
        let faithful = sim.run_faithful(3);
        for delta in [2i64, 4, -1] {
            let deviant = sim.run_with_deviant(net.c, Box::new(MisreportCost { delta }), 3);
            assert!(
                deviant.utilities[net.c.index()] <= faithful.utilities[net.c.index()],
                "delta {delta}: {:?} vs faithful {:?}",
                deviant.utilities[net.c.index()],
                faithful.utilities[net.c.index()]
            );
        }
    }

    #[test]
    fn underreporting_payments_is_profitable_in_plain_fpss() {
        let (net, sim) = figure1_sim();
        let faithful = sim.run_faithful(3);
        let deviant =
            sim.run_with_deviant(net.x, Box::new(UnderreportPayments { keep_percent: 0 }), 3);
        assert!(
            deviant.utilities[net.x.index()] > faithful.utilities[net.x.index()],
            "plain FPSS cannot stop payment fraud"
        );
    }

    #[test]
    fn dropping_transit_packets_is_profitable_in_plain_fpss() {
        let (net, sim) = figure1_sim();
        let faithful = sim.run_faithful(3);
        let deviant = sim.run_with_deviant(net.c, Box::new(DropTransitPackets), 3);
        assert!(
            deviant.utilities[net.c.index()] > faithful.utilities[net.c.index()],
            "plain FPSS pays for transit work that was never done: {:?} vs {:?}",
            deviant.utilities[net.c.index()],
            faithful.utilities[net.c.index()]
        );
    }

    #[test]
    fn distributed_equals_centralized_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use specfaith_graph::generators::random_biconnected;

        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 5 + (seed as usize % 7);
            let topo = random_biconnected(n, n / 2, &mut rng);
            let costs = CostVector::random(n, 0, 15, &mut rng);
            let traffic = TrafficMatrix::random(n, 3, 2, &mut rng);
            let sim = PlainFpssSim::new(topo, costs, traffic);
            let result = sim.run_faithful(seed);
            assert!(!result.truncated, "seed {seed} truncated");
            assert!(
                result.tables_match_centralized,
                "seed {seed}: distributed FPSS diverged from the VCG reference"
            );
        }
    }

    #[test]
    fn spoofed_routes_corrupt_tables_in_plain_fpss() {
        // C claiming fake adjacency to X (true LCP Z→X is Z-C-D-X, cost 2)
        // makes Z adopt the nonexistent route Z-C-X of apparent cost 1.
        let (net, sim) = figure1_sim();
        let deviant = sim.run_with_deviant(net.c, Box::new(SpoofShortRoutes), 3);
        assert!(
            !deviant.tables_match_centralized,
            "spoofed adjacency must corrupt someone's tables"
        );
    }
}
