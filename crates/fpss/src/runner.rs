//! The plain-FPSS run engine: configuration + one-shot run functions.
//!
//! [`PlainConfig`] is the plain-data description of one plain-FPSS
//! instance (topology, true costs, traffic, latency, settlement, event
//! budget); [`run_plain`] executes it for a given strategy assignment and
//! seed. The `specfaith::scenario` layer drives this engine directly; the
//! deprecated [`PlainFpssSim`] builder remains as a thin adapter for one
//! release.

use crate::deviation::{Faithful, RationalStrategy};
use crate::node::{PlainFpssNode, StreamCommand, TAG_BEGIN_EXECUTION, TAG_STREAM};
use crate::pricing::{expected_tables_for, tables_agree};
use crate::settle::{settle_plain, SettlementConfig};
use crate::traffic::TrafficMatrix;
use specfaith_core::id::NodeId;
use specfaith_core::money::{Cost, Money};
use specfaith_crypto::sha256::Digest;
use specfaith_graph::cache::{CacheScope, RouteCache};
use specfaith_graph::costs::CostVector;
use specfaith_graph::topology::Topology;
use specfaith_netsim::{
    Connectivity, Dynamics, Latency, NetModel, NetStats, Network, SimDuration, SimTime,
    TopologyEvent,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// How a run's converged tables are compared against the centralized VCG
/// reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReferenceCheck {
    /// Compare every node's tables (the default). Costs one LCP tree per
    /// node plus one avoid tree per `(source, on-path transit)` pair.
    Full,
    /// Compare a deterministic, evenly spaced sample of `sources` nodes.
    /// The large-`n` (≥ 1k nodes) setting: reference cost becomes
    /// proportional to the sample, not to `n`, at the price of only
    /// *sampled* divergence detection.
    Sampled {
        /// How many source nodes to verify (clamped to `n`).
        sources: usize,
    },
}

impl ReferenceCheck {
    /// The node ids this policy verifies, in ascending order.
    pub fn sources(&self, n: usize) -> Vec<NodeId> {
        match *self {
            ReferenceCheck::Full => (0..n).map(NodeId::from_index).collect(),
            ReferenceCheck::Sampled { sources } => {
                let sources = sources.clamp(1, n);
                // Evenly spaced, deterministic, duplicate-free.
                let mut ids: Vec<usize> = (0..sources).map(|i| i * n / sources).collect();
                ids.dedup();
                ids.into_iter().map(NodeId::from_index).collect()
            }
        }
    }
}

/// Plain-data configuration of a plain-FPSS simulation instance.
#[derive(Clone, Debug)]
pub struct PlainConfig {
    /// The (biconnected) topology.
    pub topo: Topology,
    /// True per-node transit costs.
    pub true_costs: CostVector,
    /// Execution-phase traffic.
    pub traffic: TrafficMatrix,
    /// Link latency model.
    pub latency: Latency,
    /// Network model deciding delivery from message size and link load
    /// (default [`NetModel::Ideal`]: latency-only, byte-identical to the
    /// pre-model engine).
    pub network: NetModel,
    /// Scheduled topology dynamics (default: none).
    pub dynamics: Dynamics,
    /// Settlement parameters (per-packet value `W`).
    pub settlement: SettlementConfig,
    /// Event budget before a run is truncated.
    pub max_events: u64,
    /// Route-cache registry the run's centralized reference check draws
    /// from. Defaults to the process-shared registry
    /// ([`CacheScope::global`]) for compatibility; run/sweep engines
    /// thread a scope of their own so the caches die with the workload.
    pub routes: CacheScope,
    /// Scope of the post-construction reference comparison.
    pub reference_check: ReferenceCheck,
}

impl PlainConfig {
    /// A configuration with the default latency, settlement, event
    /// budget, route-cache scope (the process-shared registry), and
    /// reference check (every node).
    ///
    /// # Panics
    ///
    /// Panics if the topology is not biconnected or arities mismatch.
    pub fn new(topo: Topology, true_costs: CostVector, traffic: TrafficMatrix) -> Self {
        assert!(topo.is_biconnected(), "FPSS requires a biconnected graph");
        assert_eq!(topo.num_nodes(), true_costs.len(), "cost arity");
        PlainConfig {
            topo,
            true_costs,
            traffic,
            latency: Latency::DEFAULT,
            network: NetModel::DEFAULT,
            dynamics: Dynamics::new(),
            settlement: SettlementConfig::default(),
            max_events: 5_000_000,
            routes: CacheScope::global(),
            reference_check: ReferenceCheck::Full,
        }
    }
}

/// Result of one plain-FPSS run.
#[derive(Clone, Debug)]
pub struct PlainRunResult {
    /// Realized utility per node.
    pub utilities: Vec<Money>,
    /// Whether every node's converged tables equal the centralized
    /// reference under the *declared* costs. Expected `true` for faithful
    /// runs; deviant runs may corrupt tables by design.
    pub tables_match_centralized: bool,
    /// Network traffic statistics (construction + execution).
    pub stats: NetStats,
    /// Virtual time at which the run settled (construction + execution).
    pub final_time: SimTime,
    /// Whether either run phase hit the event budget.
    pub truncated: bool,
}

/// Runs plain FPSS with every node faithful.
pub fn run_plain_faithful(config: &PlainConfig, seed: u64) -> PlainRunResult {
    run_plain(config, |_| Box::new(Faithful), seed)
}

/// Runs plain FPSS with `deviant` playing `strategy` and everyone else
/// faithful.
pub fn run_plain_with_deviant(
    config: &PlainConfig,
    deviant: NodeId,
    strategy: Box<dyn RationalStrategy>,
    seed: u64,
) -> PlainRunResult {
    let mut strategy = Some(strategy);
    run_plain(
        config,
        move |node| {
            if node == deviant {
                strategy.take().expect("deviant strategy used once")
            } else {
                Box::new(Faithful)
            }
        },
        seed,
    )
}

/// Runs plain FPSS with an arbitrary per-node strategy assignment: the
/// whole lifecycle (cost flood, distributed routing + pricing, execution,
/// reported settlement) in one simulator run.
///
/// The post-run comparison against the centralized VCG reference draws
/// every route from the config's [`CacheScope`] (`config.routes`) for the
/// declared cost vector, so repeated runs over the same declarations —
/// every non-misreporting cell of a deviation sweep sharing one scope —
/// share one set of Dijkstra trees, and the whole set is released when
/// the scope drops. The scope defaults to the process-shared registry.
pub fn run_plain(
    config: &PlainConfig,
    strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
    seed: u64,
) -> PlainRunResult {
    run_plain_impl(config, strategies, seed, true)
}

/// [`run_plain`] with the pre-`RouteCache` per-pair-query reference check.
/// Retained **only** so the sweep regression benchmark can measure the
/// uncached baseline; never call this from product code.
#[doc(hidden)]
pub fn run_plain_uncached(
    config: &PlainConfig,
    strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
    seed: u64,
) -> PlainRunResult {
    run_plain_impl(config, strategies, seed, false)
}

fn run_plain_impl(
    config: &PlainConfig,
    strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
    seed: u64,
    cached_reference: bool,
) -> PlainRunResult {
    PlainRunState::checkpoint_impl(config, strategies, seed, cached_reference, false).finish()
}

/// How a streamed [`TopologyEvent`] was handled by [`PlainRunState::apply_event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventStatus {
    /// The event changed protocol state and the network re-converged.
    Applied,
    /// [`TopologyEvent::LinkCost`]: a transport latency override only; no
    /// protocol state changed and no convergence was needed.
    LatencyOnly,
    /// Rejected: the node is unknown, already down (for `NodeDown` /
    /// `NodeCost`), or not down (for `NodeUp`).
    RejectedDown,
    /// Rejected: applying the churn event would leave the live subgraph
    /// non-biconnected, violating the FPSS topology assumption (§2).
    RejectedNotBiconnected,
    /// [`TopologyEvent::Partition`] / [`TopologyEvent::Heal`]: not
    /// meaningful for a converged fixed point; ignored.
    Unsupported,
}

/// Per-event convergence report from [`PlainRunState::apply_event`].
#[derive(Clone, Copy, Debug)]
pub struct EventOutcome {
    /// How the event was handled.
    pub status: EventStatus,
    /// Messages delivered while re-converging from the previous fixed point.
    pub messages: u64,
    /// Virtual time the re-convergence took.
    pub micros: u64,
    /// `micros` expressed in whole message rounds when the latency model is
    /// fixed (`micros / per_hop`); `None` under jittered latency.
    pub rounds: Option<u64>,
    /// Outcome of the centralized reference re-check: `Some(ok)` when the
    /// event applied with every node live, `None` otherwise (the
    /// [`RouteCache`] reference assumes the full topology).
    pub reference_ok: Option<bool>,
    /// Whether the event budget truncated this re-convergence.
    pub truncated: bool,
}

/// A plain-FPSS run suspended at a converged fixed point.
///
/// [`run_plain`] is one-shot: construct, converge, verify, execute, settle.
/// `PlainRunState` splits that pipeline so the converged fixed point becomes
/// a first-class value: [`PlainRunState::checkpoint`] runs construction and
/// the reference check, then the state can absorb a stream of
/// [`TopologyEvent`]s via [`apply_event`](PlainRunState::apply_event) —
/// re-converging *incrementally* from the previous fixed point instead of
/// rebuilding from scratch — and finally [`finish`](PlainRunState::finish)
/// runs the execution phase and settlement exactly as the one-shot engine
/// would.
///
/// Incrementality has two layers:
///
/// * **In-network**: a [`TopologyEvent::NodeCost`] floods a 20-byte
///   `CostUpdate` and each node recomputes only the destinations the origin's
///   cost can influence ([`FpssCore::dsts_affected_by_cost`]); churn events
///   purge or resync exactly the state the leaving/returning node touches.
/// * **In the reference check**: the centralized [`RouteCache`] for the
///   post-event cost vector is seeded from the pinned previous fixed point
///   (`RouteCache::seeded_from` via [`CacheScope::pin`]), so re-verification
///   repairs trees instead of re-running Dijkstra per destination. The pin
///   rolls forward each event and the fresh cache detaches its donor
///   ([`RouteCache::detach_seed`]) so long streams hold one cache generation,
///   not an unbounded seeded-from chain.
///
/// [`FpssCore::dsts_affected_by_cost`]: crate::node::FpssCore::dsts_affected_by_cost
/// [`CacheScope::pin`]: specfaith_graph::cache::CacheScope::pin
pub struct PlainRunState {
    config: PlainConfig,
    net: Network<PlainFpssNode, Latency>,
    declared: CostVector,
    down: BTreeSet<NodeId>,
    tables_match_centralized: bool,
    truncated: bool,
    pinned_reference: Option<Arc<RouteCache>>,
}

impl PlainRunState {
    /// Runs the construction phase to convergence, verifies the fixed point
    /// against the centralized reference, and pins that reference so the
    /// first streamed event can seed from it.
    ///
    /// `checkpoint(c, s, seed).finish()` produces a byte-identical
    /// [`PlainRunResult`] to `run_plain(c, s, seed)`.
    pub fn checkpoint(
        config: &PlainConfig,
        strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
        seed: u64,
    ) -> PlainRunState {
        Self::checkpoint_impl(config, strategies, seed, true, true)
    }

    fn checkpoint_impl(
        config: &PlainConfig,
        mut strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
        seed: u64,
        cached_reference: bool,
        pin_reference: bool,
    ) -> PlainRunState {
        let n = config.topo.num_nodes();
        let max_hops = (4 * n) as u32;
        let actors: Vec<PlainFpssNode> = config
            .topo
            .nodes()
            .map(|me| {
                PlainFpssNode::new(
                    me,
                    config.topo.neighbors(me).to_vec(),
                    config.true_costs.cost(me),
                    strategies(me),
                    max_hops,
                )
            })
            .collect();
        let mut net = Network::new(
            Connectivity::from_topology(&config.topo),
            actors,
            config.latency,
            seed,
        )
        .with_network(&config.network)
        .with_dynamics(&config.dynamics)
        .with_max_events(config.max_events);

        // Construction: flood costs, converge routing and pricing.
        let construction = net.run();

        // Compare converged tables with the centralized reference under
        // the declared costs, for the sources the policy selects.
        let declared: CostVector = config
            .topo
            .nodes()
            .map(|id| net.node(id).declared_cost().expect("started"))
            .collect();
        let check_sources = config.reference_check.sources(n);
        let mut pinned = None;
        let tables_match_centralized = if cached_reference {
            let routes = if pin_reference {
                config.routes.pin(&config.topo, &declared)
            } else {
                config.routes.cache(&config.topo, &declared)
            };
            let ok = check_sources.iter().all(|&id| {
                let core = net.node(id).core();
                let (expected_routing, expected_pricing) = expected_tables_for(&routes, id);
                tables_agree(
                    core.routes(),
                    core.prices(),
                    &expected_routing,
                    &expected_pricing,
                )
            });
            if pin_reference {
                // Keep the checked (and now partially materialized) cache as
                // the seeding donor for the first streamed event.
                routes.detach_seed();
                pinned = Some(routes);
            } else {
                // Under an eager scope (sweeps), a single-use per-cell cache is
                // evicted here instead of lingering to sweep end; a no-op on
                // ordinary scopes.
                config.routes.release(&routes);
            }
            ok
        } else {
            check_sources.iter().all(|&id| {
                let core = net.node(id).core();
                let (expected_routing, expected_pricing) =
                    crate::pricing::expected_tables_uncached_for(&config.topo, &declared, id);
                tables_agree(
                    core.routes(),
                    core.prices(),
                    &expected_routing,
                    &expected_pricing,
                )
            })
        };

        PlainRunState {
            config: config.clone(),
            net,
            declared,
            down: BTreeSet::new(),
            tables_match_centralized,
            truncated: construction.truncated,
            pinned_reference: pinned,
        }
    }

    /// Absorbs one topology event into the converged fixed point and
    /// re-converges incrementally, returning what it cost.
    pub fn apply_event(&mut self, event: &TopologyEvent) -> EventOutcome {
        let msgs_before = self.net.stats().msgs_delivered;
        let t_before = self.net.now();
        let was_truncated = self.truncated;
        let status = match *event {
            TopologyEvent::NodeCost { node, cost } => self.apply_node_cost(node, Cost::new(cost)),
            TopologyEvent::NodeDown(node) => self.apply_node_down(node),
            TopologyEvent::NodeUp(node) => self.apply_node_up(node),
            TopologyEvent::LinkCost { .. } => {
                self.net.apply_dynamics_event(event);
                EventStatus::LatencyOnly
            }
            TopologyEvent::Partition { .. } | TopologyEvent::Heal => EventStatus::Unsupported,
        };
        let reference_ok = if status == EventStatus::Applied && self.down.is_empty() {
            Some(self.check_reference())
        } else {
            None
        };
        let micros = (self.net.now() - t_before).micros();
        let rounds = match self.config.latency {
            Latency::Fixed { micros: per_hop } if per_hop > 0 => Some(micros / per_hop),
            _ => None,
        };
        EventOutcome {
            status,
            messages: self.net.stats().msgs_delivered - msgs_before,
            micros,
            rounds,
            reference_ok,
            truncated: self.truncated && !was_truncated,
        }
    }

    fn apply_node_cost(&mut self, node: NodeId, cost: Cost) -> EventStatus {
        if node.index() >= self.config.topo.num_nodes() || self.down.contains(&node) {
            return EventStatus::RejectedDown;
        }
        self.net
            .node_mut(node)
            .queue_stream_command(StreamCommand::DeclareCost(cost));
        self.net.schedule_timer(node, SimDuration::ZERO, TAG_STREAM);
        let outcome = self.net.run();
        self.truncated |= outcome.truncated;
        let declared = self.net.node(node).declared_cost().expect("started");
        self.declared = self.declared.with_cost(node, declared);
        EventStatus::Applied
    }

    fn apply_node_down(&mut self, node: NodeId) -> EventStatus {
        if node.index() >= self.config.topo.num_nodes() || self.down.contains(&node) {
            return EventStatus::RejectedDown;
        }
        let mut down = self.down.clone();
        down.insert(node);
        if !live_biconnected(&self.config.topo, &down) {
            return EventStatus::RejectedNotBiconnected;
        }
        // Transport first (belt and braces: any in-flight message to or from
        // the leaving node is dropped), then a purge on every live node.
        self.net
            .apply_dynamics_event(&TopologyEvent::NodeDown(node));
        self.down = down;
        for id in self.config.topo.nodes() {
            if self.down.contains(&id) {
                continue;
            }
            self.net
                .node_mut(id)
                .queue_stream_command(StreamCommand::PurgeNode(node));
            self.net.schedule_timer(id, SimDuration::ZERO, TAG_STREAM);
        }
        let outcome = self.net.run();
        self.truncated |= outcome.truncated;
        EventStatus::Applied
    }

    fn apply_node_up(&mut self, node: NodeId) -> EventStatus {
        if !self.down.contains(&node) {
            return EventStatus::RejectedDown;
        }
        let mut down = self.down.clone();
        down.remove(&node);
        if !live_biconnected(&self.config.topo, &down) {
            return EventStatus::RejectedNotBiconnected;
        }
        self.net.apply_dynamics_event(&TopologyEvent::NodeUp(node));
        self.down = down;
        // The returning node rebuilds from scratch; its live topology
        // neighbors resync it and it floods its (re-)declared cost.
        self.net
            .node_mut(node)
            .queue_stream_command(StreamCommand::Rejoin);
        self.net.schedule_timer(node, SimDuration::ZERO, TAG_STREAM);
        for &nb in self.config.topo.neighbors(node) {
            if self.down.contains(&nb) {
                continue;
            }
            self.net
                .node_mut(nb)
                .queue_stream_command(StreamCommand::ResyncNeighbor(node));
            self.net.schedule_timer(nb, SimDuration::ZERO, TAG_STREAM);
        }
        let outcome = self.net.run();
        self.truncated |= outcome.truncated;
        let declared = self.net.node(node).declared_cost().expect("started");
        self.declared = self.declared.with_cost(node, declared);
        EventStatus::Applied
    }

    /// Re-verifies the current fixed point against the centralized reference
    /// and rolls the seeding pin forward to the fresh cache.
    fn check_reference(&mut self) -> bool {
        let n = self.config.topo.num_nodes();
        // Pin first: under a one-node cost delta this seeds tree repair from
        // the previously pinned fixed point instead of fresh Dijkstras.
        let routes = self.config.routes.pin(&self.config.topo, &self.declared);
        let check_sources = self.config.reference_check.sources(n);
        let ok = check_sources.iter().all(|&id| {
            let core = self.net.node(id).core();
            let (expected_routing, expected_pricing) = expected_tables_for(&routes, id);
            tables_agree(
                core.routes(),
                core.prices(),
                &expected_routing,
                &expected_pricing,
            )
        });
        // The check above materialized every tree it needed; drop the donor
        // link so the stream holds one cache generation, not a chain.
        routes.detach_seed();
        if let Some(prev) = self.pinned_reference.take() {
            if !Arc::ptr_eq(&prev, &routes) {
                self.config.routes.unpin(&prev);
                self.config.routes.release(&prev);
            }
        }
        self.pinned_reference = Some(routes);
        self.tables_match_centralized &= ok;
        ok
    }

    /// Runs the execution phase and settlement on the current fixed point,
    /// consuming the state. Identical to the tail of [`run_plain`].
    pub fn finish(mut self) -> PlainRunResult {
        // Execution: queue traffic, start all sources at once.
        for flow in self.config.traffic.flows() {
            self.net
                .node_mut(flow.src)
                .add_traffic(flow.dst, flow.packets);
        }
        let sources: BTreeSet<NodeId> = self.config.traffic.flows().iter().map(|f| f.src).collect();
        for src in sources {
            self.net
                .schedule_timer(src, SimDuration::ZERO, TAG_BEGIN_EXECUTION);
        }
        let execution = self.net.run();

        let summaries: Vec<_> = self
            .config
            .topo
            .nodes()
            .map(|id| self.net.node_mut(id).execution_summary())
            .collect();
        let utilities = settle_plain(&summaries, &self.config.settlement);

        PlainRunResult {
            utilities,
            tables_match_centralized: self.tables_match_centralized,
            stats: self.net.stats().clone(),
            final_time: execution.final_time,
            truncated: self.truncated || execution.truncated,
        }
    }

    /// Per-node `(data1, routing, pricing)` digests of the converged tables,
    /// in node order. Down nodes report their stale pre-purge tables;
    /// equivalence checks should compare live nodes only.
    pub fn table_digests(&self) -> Vec<(Digest, Digest, Digest)> {
        self.config
            .topo
            .nodes()
            .map(|id| {
                let core = self.net.node(id).core();
                (
                    core.data1().digest(),
                    core.routes().digest(),
                    core.prices().digest(),
                )
            })
            .collect()
    }

    /// The declared cost vector at the current fixed point (down nodes keep
    /// their last declared value).
    pub fn declared(&self) -> &CostVector {
        &self.declared
    }

    /// Nodes currently offline.
    pub fn down(&self) -> &BTreeSet<NodeId> {
        &self.down
    }

    /// Whether every reference check so far (checkpoint and per-event) passed.
    pub fn tables_match_centralized(&self) -> bool {
        self.tables_match_centralized
    }

    /// Cumulative transport statistics across construction and all events.
    pub fn stats(&self) -> &NetStats {
        self.net.stats()
    }

    /// The configuration this state was checkpointed from.
    pub fn config(&self) -> &PlainConfig {
        &self.config
    }
}

impl Drop for PlainRunState {
    fn drop(&mut self) {
        if let Some(prev) = self.pinned_reference.take() {
            self.config.routes.unpin(&prev);
            self.config.routes.release(&prev);
        }
    }
}

/// Whether the subgraph induced by the live (non-`down`) nodes of `topo` is
/// biconnected.
///
/// [`Topology::is_biconnected`] judges the whole vertex set, so any topology
/// with an offline (isolated) node trivially fails it; streamed churn needs
/// the check restricted to live nodes. O(live · edges) — churn events are
/// validated one at a time, never on a hot path.
fn live_biconnected(topo: &Topology, down: &BTreeSet<NodeId>) -> bool {
    let live = topo.num_nodes() - down.len();
    if live < 3 {
        return false;
    }
    let connected_without = |cut: Option<NodeId>| -> bool {
        let excluded = |id: NodeId| down.contains(&id) || cut == Some(id);
        let Some(start) = topo.nodes().find(|&id| !excluded(id)) else {
            return false;
        };
        let mut seen = BTreeSet::new();
        seen.insert(start);
        let mut stack = vec![start];
        while let Some(at) = stack.pop() {
            for &nb in topo.neighbors(at) {
                if !excluded(nb) && seen.insert(nb) {
                    stack.push(nb);
                }
            }
        }
        topo.nodes()
            .filter(|&id| !excluded(id))
            .all(|id| seen.contains(&id))
    };
    connected_without(None)
        && topo
            .nodes()
            .filter(|id| !down.contains(id))
            .all(|cut| connected_without(Some(cut)))
}

/// Cold-run oracle for streaming equivalence: builds a fresh all-faithful
/// network over `topo` with `costs` as true costs, converges construction
/// from scratch, and returns per-node `(data1, routing, pricing)` digests.
///
/// No reference check, no execution phase — this is exactly the fixed point
/// a streamed run must land on. Accepts non-biconnected topologies (e.g.
/// [`Topology::without_node`], where the removed node is an isolated vertex
/// that floods to no one), so churn equivalence can compare live nodes of a
/// streamed run against a cold run on the reduced topology.
pub fn converged_table_digests(
    topo: &Topology,
    costs: &CostVector,
    latency: Latency,
    seed: u64,
) -> Vec<(Digest, Digest, Digest)> {
    let n = topo.num_nodes();
    let max_hops = (4 * n) as u32;
    let actors: Vec<PlainFpssNode> = topo
        .nodes()
        .map(|me| {
            PlainFpssNode::new(
                me,
                topo.neighbors(me).to_vec(),
                costs.cost(me),
                Box::new(Faithful),
                max_hops,
            )
        })
        .collect();
    let mut net = Network::new(Connectivity::from_topology(topo), actors, latency, seed);
    let outcome = net.run();
    assert!(!outcome.truncated, "cold oracle run truncated");
    topo.nodes()
        .map(|id| {
            let core = net.node(id).core();
            (
                core.data1().digest(),
                core.routes().digest(),
                core.prices().digest(),
            )
        })
        .collect()
}

/// Deprecated builder over [`PlainConfig`] + [`run_plain`].
#[deprecated(
    since = "0.2.0",
    note = "use `specfaith::scenario::Scenario::builder()` with `Mechanism::Plain` (or drive `PlainConfig`/`run_plain` directly)"
)]
#[derive(Clone, Debug)]
pub struct PlainFpssSim {
    config: PlainConfig,
}

#[allow(deprecated)]
impl PlainFpssSim {
    /// A simulation over a biconnected topology with true costs and an
    /// execution-phase traffic matrix.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not biconnected or arities mismatch.
    pub fn new(topo: Topology, true_costs: CostVector, traffic: TrafficMatrix) -> Self {
        PlainFpssSim {
            config: PlainConfig::new(topo, true_costs, traffic),
        }
    }

    /// Overrides the settlement configuration.
    #[must_use]
    pub fn with_settlement(mut self, settlement: SettlementConfig) -> Self {
        self.config.settlement = settlement;
        self
    }

    /// Overrides the event budget.
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.config.max_events = max_events;
        self
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.config.topo
    }

    /// Runs with every node faithful.
    pub fn run_faithful(&self, seed: u64) -> PlainRunResult {
        run_plain_faithful(&self.config, seed)
    }

    /// Runs with `deviant` playing `strategy` and everyone else faithful.
    pub fn run_with_deviant(
        &self,
        deviant: NodeId,
        strategy: Box<dyn RationalStrategy>,
        seed: u64,
    ) -> PlainRunResult {
        run_plain_with_deviant(&self.config, deviant, strategy, seed)
    }

    /// Runs with an arbitrary per-node strategy assignment.
    pub fn run_with(
        &self,
        strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
        seed: u64,
    ) -> PlainRunResult {
        run_plain(&self.config, strategies, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deviation::{
        DropTransitPackets, MisreportCost, SpoofShortRoutes, UnderreportPayments,
    };
    use specfaith_graph::generators::figure1;

    fn figure1_config() -> (specfaith_graph::generators::Figure1, PlainConfig) {
        let net = figure1();
        let traffic = TrafficMatrix::from_flows(vec![
            crate::traffic::Flow {
                src: net.x,
                dst: net.z,
                packets: 5,
            },
            crate::traffic::Flow {
                src: net.d,
                dst: net.z,
                packets: 5,
            },
        ]);
        let config = PlainConfig::new(net.topology.clone(), net.costs.clone(), traffic);
        (net, config)
    }

    #[test]
    fn faithful_run_converges_to_centralized_tables() {
        let (_, config) = figure1_config();
        let result = run_plain_faithful(&config, 3);
        assert!(result.tables_match_centralized);
        assert!(!result.truncated);
    }

    #[test]
    fn faithful_utilities_balance_payments() {
        let (net, config) = figure1_config();
        let result = run_plain_faithful(&config, 3);
        // C transits both flows (X→Z and D→Z): it is paid above true cost.
        assert!(
            result.utilities[net.c.index()] > Money::ZERO,
            "transit C profits: {:?}",
            result.utilities
        );
        // Sources gain packet value minus payments, still positive.
        assert!(result.utilities[net.x.index()] > Money::ZERO);
    }

    #[test]
    fn misreporting_cost_is_unprofitable_even_in_plain_fpss() {
        // FPSS's own contribution: the VCG pricing makes cost lies useless.
        let (net, config) = figure1_config();
        let faithful = run_plain_faithful(&config, 3);
        for delta in [2i64, 4, -1] {
            let deviant =
                run_plain_with_deviant(&config, net.c, Box::new(MisreportCost { delta }), 3);
            assert!(
                deviant.utilities[net.c.index()] <= faithful.utilities[net.c.index()],
                "delta {delta}: {:?} vs faithful {:?}",
                deviant.utilities[net.c.index()],
                faithful.utilities[net.c.index()]
            );
        }
    }

    #[test]
    fn underreporting_payments_is_profitable_in_plain_fpss() {
        let (net, config) = figure1_config();
        let faithful = run_plain_faithful(&config, 3);
        let deviant = run_plain_with_deviant(
            &config,
            net.x,
            Box::new(UnderreportPayments { keep_percent: 0 }),
            3,
        );
        assert!(
            deviant.utilities[net.x.index()] > faithful.utilities[net.x.index()],
            "plain FPSS cannot stop payment fraud"
        );
    }

    #[test]
    fn dropping_transit_packets_is_profitable_in_plain_fpss() {
        let (net, config) = figure1_config();
        let faithful = run_plain_faithful(&config, 3);
        let deviant = run_plain_with_deviant(&config, net.c, Box::new(DropTransitPackets), 3);
        assert!(
            deviant.utilities[net.c.index()] > faithful.utilities[net.c.index()],
            "plain FPSS pays for transit work that was never done: {:?} vs {:?}",
            deviant.utilities[net.c.index()],
            faithful.utilities[net.c.index()]
        );
    }

    use crate::deviation::{ForceFullRecompute, FullRecomputeFaithful};

    #[test]
    fn safe_deviants_take_the_incremental_path_byte_identically() {
        // The deviant-node recompute satellite: strategies whose
        // computation hooks are the identity declare destination-scoped
        // safety and ride the incremental path — observationally
        // indistinguishable (same utilities, same message counts, same
        // reference agreement) from the same strategy forced onto the
        // full-table recompute.
        let (net, config) = figure1_config();
        type StrategyFactory = Box<dyn Fn() -> Box<dyn RationalStrategy>>;
        let cases: Vec<(StrategyFactory, &str)> = vec![
            (
                Box::new(|| Box::new(MisreportCost { delta: 3 })),
                "misreport",
            ),
            (
                Box::new(|| Box::new(crate::deviation::TamperCostFlood { multiplier: 7 })),
                "tamper-flood",
            ),
            (
                Box::new(|| Box::new(crate::deviation::DropCostFlood)),
                "drop-flood",
            ),
            (Box::new(|| Box::new(DropTransitPackets)), "drop-packets"),
            (
                Box::new(|| Box::new(UnderreportPayments { keep_percent: 10 })),
                "underreport",
            ),
        ];
        for (make, label) in cases {
            assert!(
                make().dst_scoped_recompute_safe(),
                "{label} must declare destination-scoped safety"
            );
            let fast = run_plain_with_deviant(&config, net.c, make(), 3);
            let slow =
                run_plain_with_deviant(&config, net.c, Box::new(ForceFullRecompute(make())), 3);
            assert_eq!(fast.utilities, slow.utilities, "{label}");
            assert_eq!(
                fast.stats.total_msgs(),
                slow.stats.total_msgs(),
                "{label}: announcement traffic must be identical"
            );
            assert_eq!(
                fast.tables_match_centralized, slow.tables_match_centralized,
                "{label}"
            );
        }
    }

    #[test]
    fn table_transforming_deviants_stay_on_the_full_path() {
        use crate::deviation::{DeflateOwnPricing, SpoofAndTamper};
        for strategy in [
            Box::new(SpoofShortRoutes) as Box<dyn RationalStrategy>,
            Box::new(DeflateOwnPricing { keep_percent: 50 }),
            Box::new(SpoofAndTamper::default()),
        ] {
            assert!(
                !strategy.dst_scoped_recompute_safe(),
                "{} transforms tables/announcements; the incremental path \
                 would bypass its hooks",
                strategy.spec().name()
            );
        }
    }

    #[test]
    fn scoped_runs_are_byte_identical_to_the_global_registry_path() {
        // The tentpole pin (plain engine): a run whose reference check
        // draws from a run-scoped CacheScope produces exactly the result
        // of the same run on the process-shared registry.
        let (net, config) = figure1_config();
        let mut scoped_config = config.clone();
        scoped_config.routes = specfaith_graph::cache::CacheScope::unbounded();
        for seed in [1u64, 3, 9] {
            let global = run_plain_faithful(&config, seed);
            let scoped = run_plain_faithful(&scoped_config, seed);
            assert_eq!(global.utilities, scoped.utilities, "seed {seed}");
            assert_eq!(
                global.tables_match_centralized, scoped.tables_match_centralized,
                "seed {seed}"
            );
            assert_eq!(
                global.stats.total_msgs(),
                scoped.stats.total_msgs(),
                "seed {seed}"
            );
            let deviant_global =
                run_plain_with_deviant(&config, net.c, Box::new(MisreportCost { delta: 2 }), seed);
            let deviant_scoped = run_plain_with_deviant(
                &scoped_config,
                net.c,
                Box::new(MisreportCost { delta: 2 }),
                seed,
            );
            assert_eq!(deviant_global.utilities, deviant_scoped.utilities);
            assert_eq!(
                deviant_global.tables_match_centralized,
                deviant_scoped.tables_match_centralized
            );
        }
    }

    #[test]
    fn sampled_reference_check_matches_full_on_honest_runs() {
        let (_, config) = figure1_config();
        let mut sampled = config.clone();
        sampled.reference_check = ReferenceCheck::Sampled { sources: 3 };
        let full = run_plain_faithful(&config, 3);
        let quick = run_plain_faithful(&sampled, 3);
        assert!(full.tables_match_centralized);
        assert!(quick.tables_match_centralized);
        assert_eq!(full.utilities, quick.utilities);
    }

    #[test]
    fn reference_check_sources_are_deterministic_and_in_range() {
        assert_eq!(
            ReferenceCheck::Full.sources(4),
            (0..4).map(NodeId::from_index).collect::<Vec<_>>()
        );
        let sampled = ReferenceCheck::Sampled { sources: 4 }.sources(1024);
        assert_eq!(sampled.len(), 4);
        assert_eq!(
            sampled,
            vec![0usize, 256, 512, 768]
                .into_iter()
                .map(NodeId::from_index)
                .collect::<Vec<_>>()
        );
        // Oversampling clamps to n, never duplicates.
        let clamped = ReferenceCheck::Sampled { sources: 99 }.sources(6);
        assert_eq!(clamped.len(), 6);
    }

    #[test]
    fn incremental_recompute_is_byte_identical_to_full() {
        // The destination-scoped fast path must be observationally
        // indistinguishable from the full recompute: same converged
        // tables, same announcements (hence same message counts), same
        // utilities — on Figure 1 and random biconnected graphs.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use specfaith_graph::generators::random_biconnected;

        let mut configs = vec![figure1_config().1];
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 6 + (seed as usize % 6);
            let topo = random_biconnected(n, n / 2, &mut rng);
            let costs = CostVector::random(n, 0, 15, &mut rng);
            let traffic = TrafficMatrix::random(n, 3, 2, &mut rng);
            configs.push(PlainConfig::new(topo, costs, traffic));
        }
        // Larger instances exercise the flood-time destination scoping
        // (dsts_affected_by_cost) across longer convergence runs.
        for seed in [100u64, 101] {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = specfaith_graph::generators::scale_free(24, 2, &mut rng);
            let costs = CostVector::random(24, 1, 20, &mut rng);
            let traffic = TrafficMatrix::random(24, 5, 2, &mut rng);
            configs.push(PlainConfig::new(topo, costs, traffic));
        }
        for (i, config) in configs.iter().enumerate() {
            let fast = run_plain_faithful(config, 3);
            let slow = run_plain(config, |_| Box::new(FullRecomputeFaithful), 3);
            assert_eq!(fast.utilities, slow.utilities, "config {i}");
            assert_eq!(
                fast.stats.total_msgs(),
                slow.stats.total_msgs(),
                "config {i}: announcement traffic must be identical"
            );
            assert_eq!(
                fast.tables_match_centralized, slow.tables_match_centralized,
                "config {i}"
            );
        }
    }

    #[test]
    fn distributed_equals_centralized_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use specfaith_graph::generators::random_biconnected;

        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 5 + (seed as usize % 7);
            let topo = random_biconnected(n, n / 2, &mut rng);
            let costs = CostVector::random(n, 0, 15, &mut rng);
            let traffic = TrafficMatrix::random(n, 3, 2, &mut rng);
            let config = PlainConfig::new(topo, costs, traffic);
            let result = run_plain_faithful(&config, seed);
            assert!(!result.truncated, "seed {seed} truncated");
            assert!(
                result.tables_match_centralized,
                "seed {seed}: distributed FPSS diverged from the VCG reference"
            );
        }
    }

    #[test]
    fn spoofed_routes_corrupt_tables_in_plain_fpss() {
        // C claiming fake adjacency to X (true LCP Z→X is Z-C-D-X, cost 2)
        // makes Z adopt the nonexistent route Z-C-X of apparent cost 1.
        let (net, config) = figure1_config();
        let deviant = run_plain_with_deviant(&config, net.c, Box::new(SpoofShortRoutes), 3);
        assert!(
            !deviant.tables_match_centralized,
            "spoofed adjacency must corrupt someone's tables"
        );
    }

    fn stream_config(topo: Topology, costs: CostVector, traffic: TrafficMatrix) -> PlainConfig {
        let mut config = PlainConfig::new(topo, costs, traffic);
        // Streaming engines use an eager scope: caches roll forward with the
        // pin and single-use generations are evicted as the stream advances.
        config.routes = specfaith_graph::cache::CacheScope::eager();
        config
    }

    #[test]
    fn checkpoint_then_finish_is_byte_identical_to_run_plain() {
        // The tentpole pin (refactor direction): suspending at the fixed
        // point and immediately finishing is the one-shot engine.
        let (net, config) = figure1_config();
        for seed in [1u64, 3, 9] {
            let oneshot = run_plain_faithful(&config, seed);
            let staged = PlainRunState::checkpoint(&config, |_| Box::new(Faithful), seed).finish();
            assert_eq!(oneshot.utilities, staged.utilities, "seed {seed}");
            assert_eq!(
                oneshot.stats.total_msgs(),
                staged.stats.total_msgs(),
                "seed {seed}"
            );
            assert_eq!(oneshot.final_time, staged.final_time, "seed {seed}");
            assert_eq!(
                oneshot.tables_match_centralized, staged.tables_match_centralized,
                "seed {seed}"
            );
            assert_eq!(oneshot.truncated, staged.truncated, "seed {seed}");

            let deviant_oneshot =
                run_plain_with_deviant(&config, net.c, Box::new(MisreportCost { delta: 2 }), seed);
            let mut strategy =
                Some(Box::new(MisreportCost { delta: 2 }) as Box<dyn RationalStrategy>);
            let deviant_staged = PlainRunState::checkpoint(
                &config,
                move |node| {
                    if node == net.c {
                        strategy.take().expect("used once")
                    } else {
                        Box::new(Faithful)
                    }
                },
                seed,
            )
            .finish();
            assert_eq!(deviant_oneshot.utilities, deviant_staged.utilities);
            assert_eq!(
                deviant_oneshot.stats.total_msgs(),
                deviant_staged.stats.total_msgs()
            );
        }
    }

    #[test]
    fn streamed_cost_events_land_on_the_cold_fixed_point() {
        let (net, config) = figure1_config();
        let config = stream_config(config.topo, config.true_costs, config.traffic);
        let mut state = PlainRunState::checkpoint(&config, |_| Box::new(Faithful), 3);
        assert!(state.tables_match_centralized());
        let events = [
            TopologyEvent::NodeCost {
                node: net.c,
                cost: 9,
            },
            TopologyEvent::NodeCost {
                node: net.d,
                cost: 0,
            },
            // Re-declaring the current value still floods but changes nothing.
            TopologyEvent::NodeCost {
                node: net.c,
                cost: 9,
            },
        ];
        for (i, event) in events.iter().enumerate() {
            let outcome = state.apply_event(event);
            assert_eq!(outcome.status, EventStatus::Applied, "event {i}");
            assert_eq!(outcome.reference_ok, Some(true), "event {i}");
            assert!(outcome.messages > 0, "event {i}: the CostUpdate must flood");
            assert!(!outcome.truncated, "event {i}");
            let cold = converged_table_digests(
                &config.topo,
                state.declared(),
                config.latency,
                7 + i as u64,
            );
            assert_eq!(
                state.table_digests(),
                cold,
                "event {i}: streamed fixed point diverged from a cold run"
            );
        }
        let result = state.finish();
        assert!(result.tables_match_centralized);
        assert!(!result.truncated);
    }

    #[test]
    fn streamed_churn_matches_cold_runs_on_the_reduced_and_restored_topology() {
        use specfaith_graph::generators::complete;
        let n = 6;
        let topo = complete(n);
        let costs = CostVector::from_values(&[3, 1, 4, 1, 5, 9]);
        let traffic = TrafficMatrix::from_flows(vec![crate::traffic::Flow {
            src: NodeId::from_index(0),
            dst: NodeId::from_index(5),
            packets: 2,
        }]);
        let config = stream_config(topo.clone(), costs, traffic);
        let mut state = PlainRunState::checkpoint(&config, |_| Box::new(Faithful), 3);
        let baseline = state.table_digests();

        let gone = NodeId::from_index(2);
        let outcome = state.apply_event(&TopologyEvent::NodeDown(gone));
        assert_eq!(outcome.status, EventStatus::Applied);
        // No reference check while a node is down: the cache assumes the
        // full topology.
        assert_eq!(outcome.reference_ok, None);
        assert_eq!(state.down().iter().copied().collect::<Vec<_>>(), vec![gone]);

        // Live nodes converge to the cold fixed point of the reduced
        // topology (the removed node is an isolated vertex there, so its own
        // tables are the only ones that differ).
        let reduced = topo.without_node(gone);
        let cold = converged_table_digests(&reduced, state.declared(), config.latency, 11);
        let streamed = state.table_digests();
        for id in topo.nodes() {
            if id == gone {
                continue;
            }
            assert_eq!(
                streamed[id.index()],
                cold[id.index()],
                "node {id:?} diverged from the cold reduced-topology run"
            );
        }

        // A second cost change converges among the live nodes only.
        let outcome = state.apply_event(&TopologyEvent::NodeCost {
            node: NodeId::from_index(0),
            cost: 8,
        });
        assert_eq!(outcome.status, EventStatus::Applied);
        assert_eq!(outcome.reference_ok, None);

        // The node returns: resync + rejoin must land on the cold full-
        // topology fixed point, and the reference check resumes.
        let outcome = state.apply_event(&TopologyEvent::NodeUp(gone));
        assert_eq!(outcome.status, EventStatus::Applied);
        assert_eq!(outcome.reference_ok, Some(true));
        assert!(state.down().is_empty());
        let cold = converged_table_digests(&topo, state.declared(), config.latency, 13);
        assert_eq!(state.table_digests(), cold);
        assert!(state.tables_match_centralized());
        // And the original fixed point is restored up to node 0's new cost.
        assert_ne!(state.table_digests(), baseline);

        let result = state.finish();
        assert!(result.tables_match_centralized);
    }

    #[test]
    fn invalid_events_are_rejected_without_touching_the_fixed_point() {
        use specfaith_graph::generators::ring;
        // A 4-ring is biconnected, but removing any node leaves a path:
        // every NodeDown must be rejected to preserve the FPSS assumption.
        let topo = ring(4);
        let costs = CostVector::from_values(&[1, 2, 3, 4]);
        let traffic = TrafficMatrix::from_flows(vec![crate::traffic::Flow {
            src: NodeId::from_index(0),
            dst: NodeId::from_index(2),
            packets: 1,
        }]);
        let config = stream_config(topo, costs, traffic);
        let mut state = PlainRunState::checkpoint(&config, |_| Box::new(Faithful), 3);
        let baseline = state.table_digests();

        for (event, expect) in [
            (
                TopologyEvent::NodeDown(NodeId::from_index(1)),
                EventStatus::RejectedNotBiconnected,
            ),
            // Up on a live node and anything on an unknown node are rejected.
            (
                TopologyEvent::NodeUp(NodeId::from_index(1)),
                EventStatus::RejectedDown,
            ),
            (
                TopologyEvent::NodeCost {
                    node: NodeId::from_index(99),
                    cost: 5,
                },
                EventStatus::RejectedDown,
            ),
            (
                TopologyEvent::Partition { island: vec![] },
                EventStatus::Unsupported,
            ),
            (TopologyEvent::Heal, EventStatus::Unsupported),
        ] {
            let outcome = state.apply_event(&event);
            assert_eq!(outcome.status, expect, "{event:?}");
            assert_eq!(outcome.messages, 0, "{event:?}");
            assert_eq!(outcome.reference_ok, None, "{event:?}");
        }
        // Latency overrides pass through to the transport without convergence.
        let outcome = state.apply_event(&TopologyEvent::LinkCost {
            a: NodeId::from_index(0),
            b: NodeId::from_index(1),
            micros: 44,
        });
        assert_eq!(outcome.status, EventStatus::LatencyOnly);
        assert_eq!(outcome.messages, 0);
        assert_eq!(state.table_digests(), baseline);
        assert!(state.tables_match_centralized());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_adapter_matches_engine() {
        let (_, config) = figure1_config();
        let adapter = PlainFpssSim::new(
            config.topo.clone(),
            config.true_costs.clone(),
            config.traffic.clone(),
        );
        let via_adapter = adapter.run_faithful(3);
        let via_engine = run_plain_faithful(&config, 3);
        assert_eq!(via_adapter.utilities, via_engine.utilities);
        assert_eq!(
            via_adapter.stats.total_msgs(),
            via_engine.stats.total_msgs()
        );
    }
}
