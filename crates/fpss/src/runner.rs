//! The plain-FPSS run engine: configuration + one-shot run functions.
//!
//! [`PlainConfig`] is the plain-data description of one plain-FPSS
//! instance (topology, true costs, traffic, latency, settlement, event
//! budget); [`run_plain`] executes it for a given strategy assignment and
//! seed. The `specfaith::scenario` layer drives this engine directly; the
//! deprecated [`PlainFpssSim`] builder remains as a thin adapter for one
//! release.

use crate::deviation::{Faithful, RationalStrategy};
use crate::node::{PlainFpssNode, TAG_BEGIN_EXECUTION};
use crate::pricing::{expected_tables_for, tables_agree};
use crate::settle::{settle_plain, SettlementConfig};
use crate::traffic::TrafficMatrix;
use specfaith_core::id::NodeId;
use specfaith_core::money::Money;
use specfaith_graph::cache::CacheScope;
use specfaith_graph::costs::CostVector;
use specfaith_graph::topology::Topology;
use specfaith_netsim::{
    Connectivity, Dynamics, Latency, NetModel, NetStats, Network, SimDuration, SimTime,
};

/// How a run's converged tables are compared against the centralized VCG
/// reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReferenceCheck {
    /// Compare every node's tables (the default). Costs one LCP tree per
    /// node plus one avoid tree per `(source, on-path transit)` pair.
    Full,
    /// Compare a deterministic, evenly spaced sample of `sources` nodes.
    /// The large-`n` (≥ 1k nodes) setting: reference cost becomes
    /// proportional to the sample, not to `n`, at the price of only
    /// *sampled* divergence detection.
    Sampled {
        /// How many source nodes to verify (clamped to `n`).
        sources: usize,
    },
}

impl ReferenceCheck {
    /// The node ids this policy verifies, in ascending order.
    pub fn sources(&self, n: usize) -> Vec<NodeId> {
        match *self {
            ReferenceCheck::Full => (0..n).map(NodeId::from_index).collect(),
            ReferenceCheck::Sampled { sources } => {
                let sources = sources.clamp(1, n);
                // Evenly spaced, deterministic, duplicate-free.
                let mut ids: Vec<usize> = (0..sources).map(|i| i * n / sources).collect();
                ids.dedup();
                ids.into_iter().map(NodeId::from_index).collect()
            }
        }
    }
}

/// Plain-data configuration of a plain-FPSS simulation instance.
#[derive(Clone, Debug)]
pub struct PlainConfig {
    /// The (biconnected) topology.
    pub topo: Topology,
    /// True per-node transit costs.
    pub true_costs: CostVector,
    /// Execution-phase traffic.
    pub traffic: TrafficMatrix,
    /// Link latency model.
    pub latency: Latency,
    /// Network model deciding delivery from message size and link load
    /// (default [`NetModel::Ideal`]: latency-only, byte-identical to the
    /// pre-model engine).
    pub network: NetModel,
    /// Scheduled topology dynamics (default: none).
    pub dynamics: Dynamics,
    /// Settlement parameters (per-packet value `W`).
    pub settlement: SettlementConfig,
    /// Event budget before a run is truncated.
    pub max_events: u64,
    /// Route-cache registry the run's centralized reference check draws
    /// from. Defaults to the process-shared registry
    /// ([`CacheScope::global`]) for compatibility; run/sweep engines
    /// thread a scope of their own so the caches die with the workload.
    pub routes: CacheScope,
    /// Scope of the post-construction reference comparison.
    pub reference_check: ReferenceCheck,
}

impl PlainConfig {
    /// A configuration with the default latency, settlement, event
    /// budget, route-cache scope (the process-shared registry), and
    /// reference check (every node).
    ///
    /// # Panics
    ///
    /// Panics if the topology is not biconnected or arities mismatch.
    pub fn new(topo: Topology, true_costs: CostVector, traffic: TrafficMatrix) -> Self {
        assert!(topo.is_biconnected(), "FPSS requires a biconnected graph");
        assert_eq!(topo.num_nodes(), true_costs.len(), "cost arity");
        PlainConfig {
            topo,
            true_costs,
            traffic,
            latency: Latency::DEFAULT,
            network: NetModel::DEFAULT,
            dynamics: Dynamics::new(),
            settlement: SettlementConfig::default(),
            max_events: 5_000_000,
            routes: CacheScope::global(),
            reference_check: ReferenceCheck::Full,
        }
    }
}

/// Result of one plain-FPSS run.
#[derive(Clone, Debug)]
pub struct PlainRunResult {
    /// Realized utility per node.
    pub utilities: Vec<Money>,
    /// Whether every node's converged tables equal the centralized
    /// reference under the *declared* costs. Expected `true` for faithful
    /// runs; deviant runs may corrupt tables by design.
    pub tables_match_centralized: bool,
    /// Network traffic statistics (construction + execution).
    pub stats: NetStats,
    /// Virtual time at which the run settled (construction + execution).
    pub final_time: SimTime,
    /// Whether either run phase hit the event budget.
    pub truncated: bool,
}

/// Runs plain FPSS with every node faithful.
pub fn run_plain_faithful(config: &PlainConfig, seed: u64) -> PlainRunResult {
    run_plain(config, |_| Box::new(Faithful), seed)
}

/// Runs plain FPSS with `deviant` playing `strategy` and everyone else
/// faithful.
pub fn run_plain_with_deviant(
    config: &PlainConfig,
    deviant: NodeId,
    strategy: Box<dyn RationalStrategy>,
    seed: u64,
) -> PlainRunResult {
    let mut strategy = Some(strategy);
    run_plain(
        config,
        move |node| {
            if node == deviant {
                strategy.take().expect("deviant strategy used once")
            } else {
                Box::new(Faithful)
            }
        },
        seed,
    )
}

/// Runs plain FPSS with an arbitrary per-node strategy assignment: the
/// whole lifecycle (cost flood, distributed routing + pricing, execution,
/// reported settlement) in one simulator run.
///
/// The post-run comparison against the centralized VCG reference draws
/// every route from the config's [`CacheScope`] (`config.routes`) for the
/// declared cost vector, so repeated runs over the same declarations —
/// every non-misreporting cell of a deviation sweep sharing one scope —
/// share one set of Dijkstra trees, and the whole set is released when
/// the scope drops. The scope defaults to the process-shared registry.
pub fn run_plain(
    config: &PlainConfig,
    strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
    seed: u64,
) -> PlainRunResult {
    run_plain_impl(config, strategies, seed, true)
}

/// [`run_plain`] with the pre-`RouteCache` per-pair-query reference check.
/// Retained **only** so the sweep regression benchmark can measure the
/// uncached baseline; never call this from product code.
#[doc(hidden)]
pub fn run_plain_uncached(
    config: &PlainConfig,
    strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
    seed: u64,
) -> PlainRunResult {
    run_plain_impl(config, strategies, seed, false)
}

fn run_plain_impl(
    config: &PlainConfig,
    mut strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
    seed: u64,
    cached_reference: bool,
) -> PlainRunResult {
    let n = config.topo.num_nodes();
    let max_hops = (4 * n) as u32;
    let actors: Vec<PlainFpssNode> = config
        .topo
        .nodes()
        .map(|me| {
            PlainFpssNode::new(
                me,
                config.topo.neighbors(me).to_vec(),
                config.true_costs.cost(me),
                strategies(me),
                max_hops,
            )
        })
        .collect();
    let mut net = Network::new(
        Connectivity::from_topology(&config.topo),
        actors,
        config.latency,
        seed,
    )
    .with_network(&config.network)
    .with_dynamics(&config.dynamics)
    .with_max_events(config.max_events);

    // Construction: flood costs, converge routing and pricing.
    let construction = net.run();

    // Compare converged tables with the centralized reference under
    // the declared costs, for the sources the policy selects.
    let declared: CostVector = config
        .topo
        .nodes()
        .map(|id| net.node(id).declared_cost().expect("started"))
        .collect();
    let check_sources = config.reference_check.sources(n);
    let tables_match_centralized = if cached_reference {
        let routes = config.routes.cache(&config.topo, &declared);
        let ok = check_sources.iter().all(|&id| {
            let core = net.node(id).core();
            let (expected_routing, expected_pricing) = expected_tables_for(&routes, id);
            tables_agree(
                core.routes(),
                core.prices(),
                &expected_routing,
                &expected_pricing,
            )
        });
        // Under an eager scope (sweeps), a single-use per-cell cache is
        // evicted here instead of lingering to sweep end; a no-op on
        // ordinary scopes.
        config.routes.release(&routes);
        ok
    } else {
        check_sources.iter().all(|&id| {
            let core = net.node(id).core();
            let (expected_routing, expected_pricing) =
                crate::pricing::expected_tables_uncached_for(&config.topo, &declared, id);
            tables_agree(
                core.routes(),
                core.prices(),
                &expected_routing,
                &expected_pricing,
            )
        })
    };

    // Execution: queue traffic, start all sources at once.
    for flow in config.traffic.flows() {
        net.node_mut(flow.src).add_traffic(flow.dst, flow.packets);
    }
    let sources: std::collections::BTreeSet<NodeId> =
        config.traffic.flows().iter().map(|f| f.src).collect();
    for src in sources {
        net.schedule_timer(src, SimDuration::ZERO, TAG_BEGIN_EXECUTION);
    }
    let execution = net.run();

    let summaries: Vec<_> = config
        .topo
        .nodes()
        .map(|id| net.node_mut(id).execution_summary())
        .collect();
    let utilities = settle_plain(&summaries, &config.settlement);

    PlainRunResult {
        utilities,
        tables_match_centralized,
        stats: net.stats().clone(),
        final_time: execution.final_time,
        truncated: construction.truncated || execution.truncated,
    }
}

/// Deprecated builder over [`PlainConfig`] + [`run_plain`].
#[deprecated(
    since = "0.2.0",
    note = "use `specfaith::scenario::Scenario::builder()` with `Mechanism::Plain` (or drive `PlainConfig`/`run_plain` directly)"
)]
#[derive(Clone, Debug)]
pub struct PlainFpssSim {
    config: PlainConfig,
}

#[allow(deprecated)]
impl PlainFpssSim {
    /// A simulation over a biconnected topology with true costs and an
    /// execution-phase traffic matrix.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not biconnected or arities mismatch.
    pub fn new(topo: Topology, true_costs: CostVector, traffic: TrafficMatrix) -> Self {
        PlainFpssSim {
            config: PlainConfig::new(topo, true_costs, traffic),
        }
    }

    /// Overrides the settlement configuration.
    #[must_use]
    pub fn with_settlement(mut self, settlement: SettlementConfig) -> Self {
        self.config.settlement = settlement;
        self
    }

    /// Overrides the event budget.
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.config.max_events = max_events;
        self
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.config.topo
    }

    /// Runs with every node faithful.
    pub fn run_faithful(&self, seed: u64) -> PlainRunResult {
        run_plain_faithful(&self.config, seed)
    }

    /// Runs with `deviant` playing `strategy` and everyone else faithful.
    pub fn run_with_deviant(
        &self,
        deviant: NodeId,
        strategy: Box<dyn RationalStrategy>,
        seed: u64,
    ) -> PlainRunResult {
        run_plain_with_deviant(&self.config, deviant, strategy, seed)
    }

    /// Runs with an arbitrary per-node strategy assignment.
    pub fn run_with(
        &self,
        strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
        seed: u64,
    ) -> PlainRunResult {
        run_plain(&self.config, strategies, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deviation::{
        DropTransitPackets, MisreportCost, SpoofShortRoutes, UnderreportPayments,
    };
    use specfaith_graph::generators::figure1;

    fn figure1_config() -> (specfaith_graph::generators::Figure1, PlainConfig) {
        let net = figure1();
        let traffic = TrafficMatrix::from_flows(vec![
            crate::traffic::Flow {
                src: net.x,
                dst: net.z,
                packets: 5,
            },
            crate::traffic::Flow {
                src: net.d,
                dst: net.z,
                packets: 5,
            },
        ]);
        let config = PlainConfig::new(net.topology.clone(), net.costs.clone(), traffic);
        (net, config)
    }

    #[test]
    fn faithful_run_converges_to_centralized_tables() {
        let (_, config) = figure1_config();
        let result = run_plain_faithful(&config, 3);
        assert!(result.tables_match_centralized);
        assert!(!result.truncated);
    }

    #[test]
    fn faithful_utilities_balance_payments() {
        let (net, config) = figure1_config();
        let result = run_plain_faithful(&config, 3);
        // C transits both flows (X→Z and D→Z): it is paid above true cost.
        assert!(
            result.utilities[net.c.index()] > Money::ZERO,
            "transit C profits: {:?}",
            result.utilities
        );
        // Sources gain packet value minus payments, still positive.
        assert!(result.utilities[net.x.index()] > Money::ZERO);
    }

    #[test]
    fn misreporting_cost_is_unprofitable_even_in_plain_fpss() {
        // FPSS's own contribution: the VCG pricing makes cost lies useless.
        let (net, config) = figure1_config();
        let faithful = run_plain_faithful(&config, 3);
        for delta in [2i64, 4, -1] {
            let deviant =
                run_plain_with_deviant(&config, net.c, Box::new(MisreportCost { delta }), 3);
            assert!(
                deviant.utilities[net.c.index()] <= faithful.utilities[net.c.index()],
                "delta {delta}: {:?} vs faithful {:?}",
                deviant.utilities[net.c.index()],
                faithful.utilities[net.c.index()]
            );
        }
    }

    #[test]
    fn underreporting_payments_is_profitable_in_plain_fpss() {
        let (net, config) = figure1_config();
        let faithful = run_plain_faithful(&config, 3);
        let deviant = run_plain_with_deviant(
            &config,
            net.x,
            Box::new(UnderreportPayments { keep_percent: 0 }),
            3,
        );
        assert!(
            deviant.utilities[net.x.index()] > faithful.utilities[net.x.index()],
            "plain FPSS cannot stop payment fraud"
        );
    }

    #[test]
    fn dropping_transit_packets_is_profitable_in_plain_fpss() {
        let (net, config) = figure1_config();
        let faithful = run_plain_faithful(&config, 3);
        let deviant = run_plain_with_deviant(&config, net.c, Box::new(DropTransitPackets), 3);
        assert!(
            deviant.utilities[net.c.index()] > faithful.utilities[net.c.index()],
            "plain FPSS pays for transit work that was never done: {:?} vs {:?}",
            deviant.utilities[net.c.index()],
            faithful.utilities[net.c.index()]
        );
    }

    use crate::deviation::{ForceFullRecompute, FullRecomputeFaithful};

    #[test]
    fn safe_deviants_take_the_incremental_path_byte_identically() {
        // The deviant-node recompute satellite: strategies whose
        // computation hooks are the identity declare destination-scoped
        // safety and ride the incremental path — observationally
        // indistinguishable (same utilities, same message counts, same
        // reference agreement) from the same strategy forced onto the
        // full-table recompute.
        let (net, config) = figure1_config();
        type StrategyFactory = Box<dyn Fn() -> Box<dyn RationalStrategy>>;
        let cases: Vec<(StrategyFactory, &str)> = vec![
            (
                Box::new(|| Box::new(MisreportCost { delta: 3 })),
                "misreport",
            ),
            (
                Box::new(|| Box::new(crate::deviation::TamperCostFlood { multiplier: 7 })),
                "tamper-flood",
            ),
            (
                Box::new(|| Box::new(crate::deviation::DropCostFlood)),
                "drop-flood",
            ),
            (Box::new(|| Box::new(DropTransitPackets)), "drop-packets"),
            (
                Box::new(|| Box::new(UnderreportPayments { keep_percent: 10 })),
                "underreport",
            ),
        ];
        for (make, label) in cases {
            assert!(
                make().dst_scoped_recompute_safe(),
                "{label} must declare destination-scoped safety"
            );
            let fast = run_plain_with_deviant(&config, net.c, make(), 3);
            let slow =
                run_plain_with_deviant(&config, net.c, Box::new(ForceFullRecompute(make())), 3);
            assert_eq!(fast.utilities, slow.utilities, "{label}");
            assert_eq!(
                fast.stats.total_msgs(),
                slow.stats.total_msgs(),
                "{label}: announcement traffic must be identical"
            );
            assert_eq!(
                fast.tables_match_centralized, slow.tables_match_centralized,
                "{label}"
            );
        }
    }

    #[test]
    fn table_transforming_deviants_stay_on_the_full_path() {
        use crate::deviation::{DeflateOwnPricing, SpoofAndTamper};
        for strategy in [
            Box::new(SpoofShortRoutes) as Box<dyn RationalStrategy>,
            Box::new(DeflateOwnPricing { keep_percent: 50 }),
            Box::new(SpoofAndTamper::default()),
        ] {
            assert!(
                !strategy.dst_scoped_recompute_safe(),
                "{} transforms tables/announcements; the incremental path \
                 would bypass its hooks",
                strategy.spec().name()
            );
        }
    }

    #[test]
    fn scoped_runs_are_byte_identical_to_the_global_registry_path() {
        // The tentpole pin (plain engine): a run whose reference check
        // draws from a run-scoped CacheScope produces exactly the result
        // of the same run on the process-shared registry.
        let (net, config) = figure1_config();
        let mut scoped_config = config.clone();
        scoped_config.routes = specfaith_graph::cache::CacheScope::unbounded();
        for seed in [1u64, 3, 9] {
            let global = run_plain_faithful(&config, seed);
            let scoped = run_plain_faithful(&scoped_config, seed);
            assert_eq!(global.utilities, scoped.utilities, "seed {seed}");
            assert_eq!(
                global.tables_match_centralized, scoped.tables_match_centralized,
                "seed {seed}"
            );
            assert_eq!(
                global.stats.total_msgs(),
                scoped.stats.total_msgs(),
                "seed {seed}"
            );
            let deviant_global =
                run_plain_with_deviant(&config, net.c, Box::new(MisreportCost { delta: 2 }), seed);
            let deviant_scoped = run_plain_with_deviant(
                &scoped_config,
                net.c,
                Box::new(MisreportCost { delta: 2 }),
                seed,
            );
            assert_eq!(deviant_global.utilities, deviant_scoped.utilities);
            assert_eq!(
                deviant_global.tables_match_centralized,
                deviant_scoped.tables_match_centralized
            );
        }
    }

    #[test]
    fn sampled_reference_check_matches_full_on_honest_runs() {
        let (_, config) = figure1_config();
        let mut sampled = config.clone();
        sampled.reference_check = ReferenceCheck::Sampled { sources: 3 };
        let full = run_plain_faithful(&config, 3);
        let quick = run_plain_faithful(&sampled, 3);
        assert!(full.tables_match_centralized);
        assert!(quick.tables_match_centralized);
        assert_eq!(full.utilities, quick.utilities);
    }

    #[test]
    fn reference_check_sources_are_deterministic_and_in_range() {
        assert_eq!(
            ReferenceCheck::Full.sources(4),
            (0..4).map(NodeId::from_index).collect::<Vec<_>>()
        );
        let sampled = ReferenceCheck::Sampled { sources: 4 }.sources(1024);
        assert_eq!(sampled.len(), 4);
        assert_eq!(
            sampled,
            vec![0usize, 256, 512, 768]
                .into_iter()
                .map(NodeId::from_index)
                .collect::<Vec<_>>()
        );
        // Oversampling clamps to n, never duplicates.
        let clamped = ReferenceCheck::Sampled { sources: 99 }.sources(6);
        assert_eq!(clamped.len(), 6);
    }

    #[test]
    fn incremental_recompute_is_byte_identical_to_full() {
        // The destination-scoped fast path must be observationally
        // indistinguishable from the full recompute: same converged
        // tables, same announcements (hence same message counts), same
        // utilities — on Figure 1 and random biconnected graphs.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use specfaith_graph::generators::random_biconnected;

        let mut configs = vec![figure1_config().1];
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 6 + (seed as usize % 6);
            let topo = random_biconnected(n, n / 2, &mut rng);
            let costs = CostVector::random(n, 0, 15, &mut rng);
            let traffic = TrafficMatrix::random(n, 3, 2, &mut rng);
            configs.push(PlainConfig::new(topo, costs, traffic));
        }
        // Larger instances exercise the flood-time destination scoping
        // (dsts_affected_by_cost) across longer convergence runs.
        for seed in [100u64, 101] {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = specfaith_graph::generators::scale_free(24, 2, &mut rng);
            let costs = CostVector::random(24, 1, 20, &mut rng);
            let traffic = TrafficMatrix::random(24, 5, 2, &mut rng);
            configs.push(PlainConfig::new(topo, costs, traffic));
        }
        for (i, config) in configs.iter().enumerate() {
            let fast = run_plain_faithful(config, 3);
            let slow = run_plain(config, |_| Box::new(FullRecomputeFaithful), 3);
            assert_eq!(fast.utilities, slow.utilities, "config {i}");
            assert_eq!(
                fast.stats.total_msgs(),
                slow.stats.total_msgs(),
                "config {i}: announcement traffic must be identical"
            );
            assert_eq!(
                fast.tables_match_centralized, slow.tables_match_centralized,
                "config {i}"
            );
        }
    }

    #[test]
    fn distributed_equals_centralized_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use specfaith_graph::generators::random_biconnected;

        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 5 + (seed as usize % 7);
            let topo = random_biconnected(n, n / 2, &mut rng);
            let costs = CostVector::random(n, 0, 15, &mut rng);
            let traffic = TrafficMatrix::random(n, 3, 2, &mut rng);
            let config = PlainConfig::new(topo, costs, traffic);
            let result = run_plain_faithful(&config, seed);
            assert!(!result.truncated, "seed {seed} truncated");
            assert!(
                result.tables_match_centralized,
                "seed {seed}: distributed FPSS diverged from the VCG reference"
            );
        }
    }

    #[test]
    fn spoofed_routes_corrupt_tables_in_plain_fpss() {
        // C claiming fake adjacency to X (true LCP Z→X is Z-C-D-X, cost 2)
        // makes Z adopt the nonexistent route Z-C-X of apparent cost 1.
        let (net, config) = figure1_config();
        let deviant = run_plain_with_deviant(&config, net.c, Box::new(SpoofShortRoutes), 3);
        assert!(
            !deviant.tables_match_centralized,
            "spoofed adjacency must corrupt someone's tables"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_adapter_matches_engine() {
        let (_, config) = figure1_config();
        let adapter = PlainFpssSim::new(
            config.topo.clone(),
            config.true_costs.clone(),
            config.traffic.clone(),
        );
        let via_adapter = adapter.run_faithful(3);
        let via_engine = run_plain_faithful(&config, 3);
        assert_eq!(via_adapter.utilities, via_engine.utilities);
        assert_eq!(
            via_adapter.stats.total_msgs(),
            via_engine.stats.total_msgs()
        );
    }
}
