//! Traffic matrices for the execution phase.

use rand::Rng;
use specfaith_core::id::NodeId;

/// One traffic flow: `packets` packets from `src` to `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flow {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Number of packets.
    pub packets: u64,
}

/// The execution-phase workload.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficMatrix {
    flows: Vec<Flow>,
}

impl TrafficMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// A single flow.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    pub fn single(src: NodeId, dst: NodeId, packets: u64) -> Self {
        TrafficMatrix::from_flows(vec![Flow { src, dst, packets }])
    }

    /// Builds from explicit flows.
    ///
    /// # Panics
    ///
    /// Panics if any flow has identical endpoints.
    pub fn from_flows(flows: Vec<Flow>) -> Self {
        assert!(
            flows.iter().all(|f| f.src != f.dst),
            "flows need distinct endpoints"
        );
        TrafficMatrix { flows }
    }

    /// The uniform all-pairs workload: every ordered pair of `n` nodes
    /// sends `packets` packets, producing exactly `n·(n−1)` flows and
    /// `n·(n−1)·packets` total packets.
    pub fn uniform_all_pairs(n: usize, packets: u64) -> Self {
        let mut flows = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)));
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    flows.push(Flow {
                        src: NodeId::from_index(s),
                        dst: NodeId::from_index(d),
                        packets,
                    });
                }
            }
        }
        TrafficMatrix { flows }
    }

    /// Alias of [`TrafficMatrix::uniform_all_pairs`], kept for source
    /// compatibility with earlier releases.
    pub fn all_pairs(n: usize, packets: u64) -> Self {
        TrafficMatrix::uniform_all_pairs(n, packets)
    }

    /// The hotspot workload: every one of the `n` nodes except `hotspot`
    /// sends `packets` packets to `hotspot` — `n − 1` flows converging on
    /// one destination, the adversarial pattern for transit congestion
    /// and payment concentration.
    ///
    /// # Panics
    ///
    /// Panics if `hotspot` is not one of the `n` nodes.
    pub fn hotspot(n: usize, hotspot: NodeId, packets: u64) -> Self {
        assert!(hotspot.index() < n, "hotspot must be one of the n nodes");
        let flows = (0..n)
            .filter(|&s| s != hotspot.index())
            .map(|s| Flow {
                src: NodeId::from_index(s),
                dst: hotspot,
                packets,
            })
            .collect();
        TrafficMatrix { flows }
    }

    /// `count` random flows among `n` nodes with `1..=max_packets` packets.
    pub fn random<R: Rng>(n: usize, count: usize, max_packets: u64, rng: &mut R) -> Self {
        assert!(n >= 2, "need at least two nodes for traffic");
        let mut flows = Vec::with_capacity(count);
        while flows.len() < count {
            let s = rng.gen_range(0..n);
            let d = rng.gen_range(0..n);
            if s != d {
                flows.push(Flow {
                    src: NodeId::from_index(s),
                    dst: NodeId::from_index(d),
                    packets: rng.gen_range(1..=max_packets),
                });
            }
        }
        TrafficMatrix { flows }
    }

    /// The flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Total packets across flows.
    pub fn total_packets(&self) -> u64 {
        self.flows.iter().map(|f| f.packets).sum()
    }
}

impl FromIterator<Flow> for TrafficMatrix {
    fn from_iter<T: IntoIterator<Item = Flow>>(iter: T) -> Self {
        TrafficMatrix::from_flows(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn single_flow() {
        let t = TrafficMatrix::single(n(0), n(1), 5);
        assert_eq!(t.flows().len(), 1);
        assert_eq!(t.total_packets(), 5);
    }

    #[test]
    fn all_pairs_counts() {
        let t = TrafficMatrix::all_pairs(4, 2);
        assert_eq!(t.flows().len(), 12);
        assert_eq!(t.total_packets(), 24);
    }

    #[test]
    fn uniform_all_pairs_has_n_times_n_minus_one_flows() {
        for (n_nodes, packets) in [(2usize, 1u64), (4, 2), (6, 3), (9, 5)] {
            let t = TrafficMatrix::uniform_all_pairs(n_nodes, packets);
            let expected_flows = n_nodes * (n_nodes - 1);
            assert_eq!(t.flows().len(), expected_flows, "n={n_nodes}");
            assert_eq!(
                t.total_packets(),
                expected_flows as u64 * packets,
                "n={n_nodes}, packets={packets}"
            );
            // Every ordered pair appears exactly once.
            let mut pairs: Vec<(u32, u32)> = t
                .flows()
                .iter()
                .map(|f| (f.src.raw(), f.dst.raw()))
                .collect();
            pairs.sort_unstable();
            pairs.dedup();
            assert_eq!(pairs.len(), expected_flows);
            assert!(t.flows().iter().all(|f| f.packets == packets));
        }
    }

    #[test]
    fn hotspot_converges_on_one_destination() {
        let center = n(2);
        let t = TrafficMatrix::hotspot(6, center, 4);
        assert_eq!(t.flows().len(), 5);
        assert_eq!(t.total_packets(), 20);
        assert!(t.flows().iter().all(|f| f.dst == center && f.src != center));
        // Every other node appears exactly once as a source.
        let mut sources: Vec<u32> = t.flows().iter().map(|f| f.src.raw()).collect();
        sources.sort_unstable();
        assert_eq!(sources, vec![0, 1, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "hotspot must be one of the n nodes")]
    fn hotspot_rejects_out_of_range_center() {
        let _ = TrafficMatrix::hotspot(4, n(9), 1);
    }

    #[test]
    fn random_respects_bounds_and_seed() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = TrafficMatrix::random(6, 10, 4, &mut rng);
        assert_eq!(a.flows().len(), 10);
        assert!(a.flows().iter().all(|f| f.src != f.dst));
        assert!(a.flows().iter().all(|f| (1..=4).contains(&f.packets)));
        let mut rng2 = StdRng::seed_from_u64(5);
        assert_eq!(a, TrafficMatrix::random(6, 10, 4, &mut rng2));
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn rejects_self_flow() {
        let _ = TrafficMatrix::single(n(1), n(1), 1);
    }
}
