//! The FPSS suggested specification as a formal state machine (§3.1).
//!
//! The paper says "this specification could be formalized with a state
//! machine" and classifies each external action: declaring the transit
//! cost and providing connectivity information are information-revelation
//! actions; relaying other nodes' transit-cost announcements are
//! message-passing actions; updating and forwarding routing and pricing
//! tables are computation actions; reporting payments to the bank is a
//! computation action.
//!
//! This module writes that paragraph down as a
//! `StateMachine` — a
//! coarse-grained lifecycle model whose audit mechanically confirms that
//! the suggested specification is well-formed and that its actions carry
//! exactly the classifications §4.1 assigns. The executable protocol in
//! [`crate::node`] refines this machine; the correspondence of action
//! classes is what justifies tagging deviation strategies the way
//! [`crate::deviation`] does.

use specfaith_core::actions::ExternalActionKind;
use specfaith_core::statemachine::{ActionKind, Specification, StateMachine};

/// Lifecycle states of one FPSS node under the faithful specification.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum FpssState {
    /// Fresh node; nothing declared yet.
    Start,
    /// Own cost declared; flooding / construction phase 1.
    Phase1Flooding,
    /// Transit-cost list complete; computing routing and pricing tables.
    Phase2Computing,
    /// Tables converged; awaiting the bank's checkpoint verdict.
    AwaitCheckpoint,
    /// Green-lighted; routing traffic and accruing payments.
    Executing,
    /// Traffic done; reporting payments and observations to the bank.
    Reporting,
    /// Settled.
    Done,
}

/// Actions of the suggested FPSS specification, with their §4.1 classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FpssAction {
    /// Declare own transit cost (information revelation).
    DeclareCost,
    /// Relay another node's cost announcement (message passing).
    RelayCostAnnounce,
    /// Recompute tables and announce changes; forward inbound updates to
    /// checkers (computation — it affects the outcome rule).
    UpdateAndAnnounceTables,
    /// Report table hashes to the bank (computation).
    ReportHashes,
    /// Forward a data packet along the LCP (message passing).
    ForwardPacket,
    /// Report the payment ledger to the bank (computation).
    ReportPayments,
    /// Local bookkeeping (internal).
    Bookkeep,
}

/// The coarse-grained FPSS lifecycle machine.
#[derive(Clone, Copy, Debug, Default)]
pub struct FpssSpecMachine;

impl StateMachine for FpssSpecMachine {
    type State = FpssState;
    type Action = FpssAction;

    fn initial_states(&self) -> Vec<FpssState> {
        vec![FpssState::Start]
    }

    fn transitions(&self, state: &FpssState) -> Vec<(FpssAction, FpssState)> {
        use FpssAction::*;
        use FpssState::*;
        match state {
            Start => vec![(DeclareCost, Phase1Flooding)],
            Phase1Flooding => vec![
                (RelayCostAnnounce, Phase1Flooding),
                (Bookkeep, Phase2Computing),
            ],
            Phase2Computing => vec![
                (UpdateAndAnnounceTables, Phase2Computing),
                (ReportHashes, AwaitCheckpoint),
            ],
            AwaitCheckpoint => vec![
                // Restart sends the node back to recomputation.
                (Bookkeep, Phase2Computing),
                (ForwardPacket, Executing),
            ],
            Executing => vec![(ForwardPacket, Executing), (ReportPayments, Reporting)],
            Reporting => vec![(Bookkeep, Done)],
            Done => vec![],
        }
    }

    fn action_kind(&self, action: &FpssAction) -> ActionKind {
        use ExternalActionKind::*;
        match action {
            FpssAction::DeclareCost => ActionKind::External(InformationRevelation),
            FpssAction::RelayCostAnnounce => ActionKind::External(MessagePassing),
            FpssAction::UpdateAndAnnounceTables => ActionKind::External(Computation),
            FpssAction::ReportHashes => ActionKind::External(Computation),
            FpssAction::ForwardPacket => ActionKind::External(MessagePassing),
            FpssAction::ReportPayments => ActionKind::External(Computation),
            FpssAction::Bookkeep => ActionKind::Internal,
        }
    }
}

/// The suggested (faithful) specification over the lifecycle machine: one
/// canonical pass through the protocol.
pub fn suggested_specification(machine: &FpssSpecMachine) -> Specification<'_, FpssSpecMachine> {
    Specification::new(machine, |state| {
        use FpssAction::*;
        use FpssState::*;
        match state {
            Start => Some(DeclareCost),
            Phase1Flooding => Some(Bookkeep),
            Phase2Computing => Some(ReportHashes),
            AwaitCheckpoint => Some(ForwardPacket),
            Executing => Some(ReportPayments),
            Reporting => Some(Bookkeep),
            Done => None,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggested_specification_is_well_formed() {
        let machine = FpssSpecMachine;
        let audit = suggested_specification(&machine).audit();
        assert!(audit.is_well_formed(), "{audit:?}");
        assert_eq!(audit.reachable_states, 7);
        assert_eq!(audit.terminal_states, 1);
    }

    #[test]
    fn suggested_path_touches_all_three_action_classes() {
        let machine = FpssSpecMachine;
        let audit = suggested_specification(&machine).audit();
        assert_eq!(audit.revelation_actions, 1, "declare cost");
        assert!(audit.message_passing_actions >= 1, "packet forwarding");
        assert!(audit.computation_actions >= 2, "hash + payment reports");
        assert!(audit.internal_actions >= 1);
    }

    #[test]
    fn action_classification_matches_section_4_1() {
        let m = FpssSpecMachine;
        assert_eq!(
            m.action_kind(&FpssAction::DeclareCost),
            ActionKind::External(ExternalActionKind::InformationRevelation)
        );
        assert_eq!(
            m.action_kind(&FpssAction::RelayCostAnnounce),
            ActionKind::External(ExternalActionKind::MessagePassing)
        );
        assert_eq!(
            m.action_kind(&FpssAction::UpdateAndAnnounceTables),
            ActionKind::External(ExternalActionKind::Computation)
        );
        assert_eq!(
            m.action_kind(&FpssAction::ReportPayments),
            ActionKind::External(ExternalActionKind::Computation)
        );
    }

    #[test]
    fn a_specification_skipping_reports_is_flagged() {
        // A "specification" that tries to route packets straight from
        // phase 2 (skipping the hash report) suggests an unenabled action.
        let machine = FpssSpecMachine;
        let spec = Specification::new(&machine, |state| match state {
            FpssState::Start => Some(FpssAction::DeclareCost),
            FpssState::Phase1Flooding => Some(FpssAction::Bookkeep),
            FpssState::Phase2Computing => Some(FpssAction::ForwardPacket),
            _ => None,
        });
        let audit = spec.audit();
        assert!(!audit.is_well_formed());
        assert_eq!(
            audit.unenabled_suggestions,
            vec![FpssState::Phase2Computing]
        );
    }
}
