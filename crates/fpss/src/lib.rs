//! # specfaith-fpss
//!
//! The FPSS lowest-cost interdomain routing mechanism (Feigenbaum,
//! Papadimitriou, Sami, Shenker — PODC 2002), as summarized and extended in
//! §4.1 of Shneidman & Parkes. This crate is the **plain** (unfaithful)
//! mechanism: nodes are assumed to compute and forward honestly, exactly as
//! FPSS assumed. The `specfaith-faithful` crate adds the checker/bank
//! machinery that removes that assumption.
//!
//! ## The mechanism
//!
//! Each autonomous system (node) `k` has a per-packet transit cost `c_k`;
//! a path's cost is the sum of its *intermediate* nodes' costs. Traffic
//! between every pair `(i, j)` follows the lowest-cost path (LCP), and each
//! transit node `k` on it is paid the VCG amount
//!
//! ```text
//! pᵏᵢⱼ = ĉ_k + d_{G−k}(i,j) − d_G(i,j)
//! ```
//!
//! which makes truthful cost declaration a dominant strategy.
//!
//! ## What this crate provides
//!
//! * [`state`] — the per-node data of §4.1: transit-cost list (DATA1),
//!   routing table (DATA2), pricing table with identity tags (DATA3*), and
//!   payment ledger (DATA4), each with a canonical bank hash.
//! * [`compute`] — the **pure** recomputation functions for routing and
//!   pricing. Principals, plain nodes, and checker mirrors all call the
//!   same functions; bit-identical outputs are what make hash comparison
//!   meaningful.
//! * [`pricing`] — the centralized VCG reference (`pᵏᵢⱼ` via Dijkstra) and
//!   the [`RoutingProblem`](pricing::RoutingProblem) adapter that plugs FPSS
//!   into the generic strategyproofness tester.
//! * [`node`] — the plain FPSS node actor: cost flooding, asynchronous
//!   path-vector routing, iterative distributed pricing, and execution
//!   (packet forwarding + payment ledgers).
//! * [`traffic`] / [`settle`] — traffic matrices and the settlement oracle
//!   computing realized utilities.
//! * [`deviation`] — the `RationalStrategy`
//!   hook surface and the deviation library (the manipulations of §4.3).
//! * [`runner`] — the plain run engine (`PlainConfig` + `run_plain`):
//!   build network, converge construction, run execution, settle.
//!
//! # Example
//!
//! ```
//! use specfaith_fpss::runner::{run_plain_faithful, PlainConfig};
//! use specfaith_fpss::traffic::TrafficMatrix;
//! use specfaith_graph::generators::figure1;
//!
//! let net = figure1();
//! let traffic = TrafficMatrix::single(net.x, net.z, 10);
//! let config = PlainConfig::new(net.topology.clone(), net.costs.clone(), traffic);
//! let run = run_plain_faithful(&config, 7);
//! // Construction converged to the exact centralized tables.
//! assert!(run.tables_match_centralized);
//! ```

pub mod compute;
pub mod deviation;
pub mod msg;
pub mod naive;
pub mod node;
pub mod pricing;
pub mod runner;
pub mod settle;
pub mod spec;
pub mod state;
pub mod traffic;

pub use deviation::RationalStrategy;
pub use msg::{FpssMsg, Packet, PriceRow, RouteRow};
pub use state::{PaymentLedger, PricingTable, RoutingTable, TransitCostList};
