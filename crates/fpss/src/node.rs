//! The FPSS node: a reusable pure core plus the plain (no-checkers) actor.
//!
//! [`FpssCore`] holds the construction-phase state (DATA1, DATA2, DATA3*,
//! neighbor view) and applies the pure recompute functions. It is reused
//! verbatim by the faithful extension's checker mirrors: a mirror of
//! principal `P` is simply an `FpssCore` with `me = P` fed by the forwarded
//! copies of `P`'s inputs.

use crate::compute::{
    best_route_to, price_entries_to, recompute_prices, recompute_routes, NeighborView,
};
use crate::deviation::{Faithful, RationalStrategy};
use crate::msg::{FpssMsg, Packet, PriceRow, RouteRow};
use crate::settle::ExecutionSummary;
use crate::state::{PaymentLedger, PricingTable, RoutingTable, TransitCostList};
use specfaith_core::id::NodeId;
use specfaith_core::money::{Cost, Money};
use specfaith_netsim::{Actor, Ctx};
use std::collections::{BTreeMap, BTreeSet};

/// Timer tag that starts the execution phase (set by the harness once
/// construction has converged).
pub const TAG_BEGIN_EXECUTION: u64 = 1;

/// Timer tag that makes a node drain its queued [`StreamCommand`]s (set by
/// the streaming engine when re-entering an equilibrated network).
pub const TAG_STREAM: u64 = 2;

/// A management-plane command injected by the streaming run engine between
/// convergence epochs. Commands are queued on the node out-of-band (the
/// engine owns the actors while the simulation is quiescent) and drained by
/// a [`TAG_STREAM`] timer, so every protocol-visible effect still flows
/// through ordinary simulated messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamCommand {
    /// This node's true transit cost changed: re-declare it (through the
    /// node's strategy) and flood a [`FpssMsg::CostUpdate`].
    DeclareCost(Cost),
    /// The named node went down: drop it from the neighbor list (if
    /// adjacent), forget its declared cost, and recompute in full so its
    /// table rows disappear.
    PurgeNode(NodeId),
    /// This node returns from downtime with amnesia: fresh construction
    /// core, re-flood its own cost (every live node forgot it, so the
    /// first-write-wins flood works again).
    Rejoin,
    /// A downed neighbor returned: re-add it and resync it by sending the
    /// full local state as ordinary (idempotent) protocol messages.
    ResyncNeighbor(NodeId),
}

/// The pure FPSS construction-phase state machine of one node.
#[derive(Clone, Debug)]
pub struct FpssCore {
    me: NodeId,
    neighbors: Vec<NodeId>,
    data1: TransitCostList,
    routes: RoutingTable,
    prices: PricingTable,
    view: NeighborView,
}

impl FpssCore {
    /// A fresh core for node `me` with the given (sorted) neighbor list.
    pub fn new(me: NodeId, neighbors: Vec<NodeId>) -> Self {
        FpssCore {
            me,
            neighbors,
            data1: TransitCostList::new(),
            routes: RoutingTable::new(),
            prices: PricingTable::new(),
            view: NeighborView::new(),
        }
    }

    /// This core's node id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The neighbor list.
    pub fn neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// \[DATA1\] access.
    pub fn data1(&self) -> &TransitCostList {
        &self.data1
    }

    /// \[DATA2\] access.
    pub fn routes(&self) -> &RoutingTable {
        &self.routes
    }

    /// \[DATA3*\] access.
    pub fn prices(&self) -> &PricingTable {
        &self.prices
    }

    /// Records a declared cost. Returns `true` when new.
    pub fn learn_cost(&mut self, origin: NodeId, declared: Cost) -> bool {
        self.data1.learn(origin, declared)
    }

    /// Overwrites a declared cost (streaming re-declaration; see
    /// [`TransitCostList::update`]). Returns `true` when the value changed.
    pub fn update_cost(&mut self, origin: NodeId, declared: Cost) -> bool {
        self.data1.update(origin, declared)
    }

    /// Forgets a departed node's declared cost (see
    /// [`TransitCostList::forget`]). Returns whether one was present.
    pub fn forget_cost(&mut self, origin: NodeId) -> bool {
        self.data1.forget(origin)
    }

    /// Removes `gone` from the neighbor list (node churn). With `gone`
    /// absent from the list and its cost forgotten, every stored candidate
    /// through it becomes inert: candidate gathering iterates the neighbor
    /// list and skips paths with unknown intermediate costs, so no view
    /// purge is needed. Returns whether `gone` was a neighbor.
    pub fn remove_neighbor(&mut self, gone: NodeId) -> bool {
        match self.neighbors.binary_search(&gone) {
            Ok(pos) => {
                self.neighbors.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Re-adds a returned neighbor, keeping the list sorted. Returns
    /// whether the list changed.
    pub fn add_neighbor(&mut self, back: NodeId) -> bool {
        match self.neighbors.binary_search(&back) {
            Err(pos) => {
                self.neighbors.insert(pos, back);
                true
            }
            Ok(_) => false,
        }
    }

    /// The destinations a newly learned declared cost for `origin` can
    /// affect — the flood-time counterpart of the destination-scoped
    /// recompute.
    ///
    /// Soundness: declared costs are first-write-wins, so learning
    /// `origin`'s cost can only *enable* candidates that were previously
    /// skipped for an unknown cost. Every such candidate — a routing
    /// candidate whose advertised path crosses `origin`, a pricing
    /// witness `b = origin`, or `origin` newly becoming a destination —
    /// involves `origin` on some stored advertised path (advertised paths
    /// start at the advertising neighbor, so `b = origin` rows index
    /// themselves) or is `origin` itself. Destinations outside this set
    /// have bit-identical recompute inputs before and after the learn,
    /// so their rows provably cannot change; pass the set to
    /// [`FpssCore::recompute_dsts`] for byte-identical results at
    /// flood-proportional cost.
    ///
    /// The same argument covers streaming *overwrites*
    /// ([`FpssCore::update_cost`], which can move a cost in either
    /// direction): every routing or pricing term that reads `origin`'s
    /// cost — a candidate path crossing it, this node's installed path
    /// cost `d_me`, a pricing witness `b = origin` (whose advertised path
    /// starts at `origin` and is therefore indexed), or `origin` as the
    /// destination itself — places `origin` on a stored advertised path or
    /// is `origin`, so the affected set is sound for cost changes too.
    pub fn dsts_affected_by_cost(&self, origin: NodeId) -> BTreeSet<NodeId> {
        let mut dsts: BTreeSet<NodeId> = self.view.dsts_through(origin).collect();
        dsts.insert(origin);
        dsts
    }

    /// Records a neighbor's routing row. Returns `true` when the view
    /// changed.
    pub fn learn_route(&mut self, from: NodeId, row: &RouteRow) -> bool {
        self.view.learn_route(from, row)
    }

    /// Records a neighbor's pricing row. Returns `true` when the view
    /// changed.
    pub fn learn_price(&mut self, from: NodeId, row: &PriceRow) -> bool {
        self.view.learn_price(from, row)
    }

    /// Records a neighbor's price retraction. Returns `true` when the
    /// view changed.
    pub fn learn_price_retraction(&mut self, from: NodeId, dst: NodeId, transit: NodeId) -> bool {
        self.view.retract_price(from, dst, transit)
    }

    /// Recomputes routing and pricing from the current inputs, installing
    /// the results and returning the changed routing rows, changed pricing
    /// rows, and retracted pricing keys (all to be announced).
    ///
    /// `install_pricing` post-processes the honestly recomputed pricing
    /// table before installation — the identity for faithful nodes, a
    /// manipulation hook for deviants.
    #[allow(clippy::type_complexity)]
    pub fn recompute_with(
        &mut self,
        install_pricing: impl FnOnce(PricingTable) -> PricingTable,
    ) -> (Vec<RouteRow>, Vec<PriceRow>, Vec<(NodeId, NodeId)>) {
        let new_routes = recompute_routes(self.me, &self.neighbors, &self.data1, &self.view);
        let mut changed_routes = Vec::new();
        for (dst, path) in new_routes.iter() {
            if self.routes.path(dst) != Some(path) {
                changed_routes.push(RouteRow {
                    dst,
                    path: path.to_vec(),
                });
            }
        }
        self.routes = new_routes;
        let new_prices = install_pricing(recompute_prices(
            self.me,
            &self.neighbors,
            &self.data1,
            &self.routes,
            &self.view,
        ));
        let (changed_prices, retractions) = self.prices.replace(new_prices);
        (changed_routes, changed_prices, retractions)
    }

    /// Faithful recomputation.
    #[allow(clippy::type_complexity)]
    pub fn recompute(&mut self) -> (Vec<RouteRow>, Vec<PriceRow>, Vec<(NodeId, NodeId)>) {
        self.recompute_with(|t| t)
    }

    /// Destination-scoped faithful recomputation: updates only the table
    /// rows of `dsts`, producing **byte-identical** tables and announced
    /// rows to a full [`FpssCore::recompute`] whenever only those
    /// destinations' inputs changed since the last recomputation.
    ///
    /// Soundness: a destination's routing row is a pure function of that
    /// destination's advertised routes and DATA1 ([`best_route_to`]), and
    /// its pricing rows of those plus its advertised prices
    /// ([`price_entries_to`]) — so rows outside `dsts` cannot differ from
    /// what the last full recompute installed. Callers pass
    /// `routing_changed = false` for price-only input changes (advertised
    /// prices are not a routing input). DATA1 changes invalidate every
    /// destination and must go through the full recompute.
    ///
    /// This is the construction-phase hot path: honest nodes — and
    /// deviants declaring [`destination-scoped
    /// safety`](crate::deviation::RationalStrategy::dst_scoped_recompute_safe)
    /// — process each routing/pricing update in time proportional to the
    /// rows it touched rather than the whole table. Strategies that
    /// transform tables or announcements keep the full recompute so their
    /// whole-table hooks observe unchanged inputs.
    #[allow(clippy::type_complexity)]
    pub fn recompute_dsts(
        &mut self,
        dsts: &BTreeSet<NodeId>,
        routing_changed: bool,
    ) -> (Vec<RouteRow>, Vec<PriceRow>, Vec<(NodeId, NodeId)>) {
        let mut changed_routes = Vec::new();
        if routing_changed {
            for &dst in dsts {
                // A full recompute only enumerates destinations it has a
                // declared cost for (or that are direct neighbors); mirror
                // that exactly or rows would appear early here.
                if dst == self.me
                    || (self.data1.declared(dst).is_none() && !self.neighbors.contains(&dst))
                {
                    continue;
                }
                match best_route_to(self.me, &self.neighbors, &self.data1, &self.view, dst) {
                    Some(path) => {
                        if self.routes.path(dst) != Some(path.as_slice()) {
                            changed_routes.push(RouteRow {
                                dst,
                                path: path.clone(),
                            });
                            self.routes.install(dst, path);
                        }
                    }
                    None => {
                        self.routes.remove(dst);
                    }
                }
            }
        }
        let mut changed_prices = Vec::new();
        let mut retractions = Vec::new();
        for &dst in dsts {
            if dst == self.me {
                continue;
            }
            let new_rows = match self.routes.path(dst) {
                Some(path) => price_entries_to(&self.neighbors, &self.data1, path, &self.view, dst),
                None => Vec::new(),
            };
            for (transit, entry) in &new_rows {
                if self.prices.entry(dst, *transit) != Some(entry) {
                    changed_prices.push(PriceRow {
                        dst,
                        transit: *transit,
                        price: entry.price,
                        tags: entry.tags.clone(),
                    });
                }
            }
            let retracted: Vec<NodeId> = self
                .prices
                .transits_for(dst)
                .filter(|k| !new_rows.iter().any(|(nk, _)| nk == k))
                .collect();
            for (transit, entry) in new_rows {
                self.prices.insert(dst, transit, entry);
            }
            for transit in retracted {
                self.prices.remove(dst, transit);
                retractions.push((dst, transit));
            }
        }
        (changed_routes, changed_prices, retractions)
    }
}

/// The plain FPSS node actor: construction by flooding + asynchronous
/// recomputation, execution by source routing over the converged tables.
/// No checkers, no bank — the trust assumptions of the original FPSS.
pub struct PlainFpssNode {
    core: FpssCore,
    true_cost: Cost,
    declared: Option<Cost>,
    strategy: Box<dyn RationalStrategy>,
    /// Cached [`RationalStrategy::dst_scoped_recompute_safe`]: honest
    /// nodes — and deviants whose computation hooks are the identity —
    /// take the destination-scoped incremental recompute path.
    incremental: bool,
    pending_traffic: Vec<(NodeId, u64)>,
    /// Highest [`FpssMsg::CostUpdate`] epoch seen per origin (including
    /// this node's own updates); stale epochs are dropped unprocessed.
    cost_epochs: BTreeMap<NodeId, u64>,
    /// Engine-queued streaming commands, drained on [`TAG_STREAM`].
    stream_commands: Vec<StreamCommand>,
    originated: BTreeMap<NodeId, u64>,
    delivered_from: BTreeMap<NodeId, u64>,
    carried: u64,
    dropped: u64,
    ledger: PaymentLedger,
    max_hops: u32,
}

impl std::fmt::Debug for PlainFpssNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PlainFpssNode({}, strategy={})",
            self.core.me(),
            self.strategy.spec().name()
        )
    }
}

impl PlainFpssNode {
    /// Creates a node with the given true cost and strategy.
    pub fn new(
        me: NodeId,
        neighbors: Vec<NodeId>,
        true_cost: Cost,
        strategy: Box<dyn RationalStrategy>,
        max_hops: u32,
    ) -> Self {
        let incremental = strategy.dst_scoped_recompute_safe();
        PlainFpssNode {
            core: FpssCore::new(me, neighbors),
            true_cost,
            declared: None,
            strategy,
            incremental,
            pending_traffic: Vec::new(),
            cost_epochs: BTreeMap::new(),
            stream_commands: Vec::new(),
            originated: BTreeMap::new(),
            delivered_from: BTreeMap::new(),
            carried: 0,
            dropped: 0,
            ledger: PaymentLedger::new(),
            max_hops,
        }
    }

    /// A faithful node.
    pub fn faithful(me: NodeId, neighbors: Vec<NodeId>, true_cost: Cost, max_hops: u32) -> Self {
        Self::new(me, neighbors, true_cost, Box::new(Faithful), max_hops)
    }

    /// The construction core (tables, DATA1, view).
    pub fn core(&self) -> &FpssCore {
        &self.core
    }

    /// The cost this node declared (after its strategy), once started.
    pub fn declared_cost(&self) -> Option<Cost> {
        self.declared
    }

    /// Queues traffic to originate when execution begins.
    pub fn add_traffic(&mut self, dst: NodeId, packets: u64) {
        self.pending_traffic.push((dst, packets));
    }

    /// Queues a streaming management command; the engine schedules a
    /// [`TAG_STREAM`] timer on this node to drain the queue in-simulation.
    pub fn queue_stream_command(&mut self, cmd: StreamCommand) {
        self.stream_commands.push(cmd);
    }

    /// Packets transited (true cost incurred on each).
    pub fn carried(&self) -> u64 {
        self.carried
    }

    /// Packets dropped (by strategy, TTL, or missing route).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets delivered here, keyed by originating node.
    pub fn delivered_from(&self) -> &BTreeMap<NodeId, u64> {
        &self.delivered_from
    }

    /// The post-strategy execution summary for settlement.
    pub fn execution_summary(&mut self) -> ExecutionSummary {
        let honest = self.ledger.to_entries();
        let me = self.core.me();
        ExecutionSummary {
            node: me,
            reported_owed: self.strategy.report_owed(me, honest),
            true_cost: self.true_cost,
            carried: self.carried,
            originated: self.originated.clone(),
            delivered_from: self.delivered_from.clone(),
        }
    }

    fn announce(
        &mut self,
        ctx: &mut Ctx<'_, FpssMsg>,
        changed_routes: Vec<RouteRow>,
        changed_prices: Vec<PriceRow>,
        retractions: Vec<(NodeId, NodeId)>,
    ) {
        let me = self.core.me();
        let routes = self.strategy.announce_routing(me, changed_routes);
        if !routes.is_empty() {
            for &b in self.core.neighbors() {
                ctx.send(
                    b,
                    FpssMsg::RoutingUpdate {
                        rows: routes.clone(),
                    },
                );
            }
        }
        let prices = self.strategy.announce_pricing(me, changed_prices);
        if !prices.is_empty() || !retractions.is_empty() {
            for &b in self.core.neighbors() {
                ctx.send(
                    b,
                    FpssMsg::PricingUpdate {
                        rows: prices.clone(),
                        retractions: retractions.clone(),
                    },
                );
            }
        }
    }

    /// Destination-scoped recompute after `origin`'s declared cost changed
    /// (see [`FpssCore::dsts_affected_by_cost`]), falling back to the full
    /// recompute for strategies with whole-table hooks.
    fn recompute_after_cost_change(&mut self, ctx: &mut Ctx<'_, FpssMsg>, origin: NodeId) {
        if self.incremental {
            let changed_dsts = self.core.dsts_affected_by_cost(origin);
            let (routes, prices, retractions) = self.core.recompute_dsts(&changed_dsts, true);
            self.announce(ctx, routes, prices, retractions);
        } else {
            self.recompute_and_announce(ctx);
        }
    }

    fn apply_stream_command(&mut self, ctx: &mut Ctx<'_, FpssMsg>, cmd: StreamCommand) {
        let me = self.core.me();
        match cmd {
            StreamCommand::DeclareCost(cost) => {
                self.true_cost = cost;
                let declared = self.strategy.declare_cost(cost);
                self.declared = Some(declared);
                let epoch = self.cost_epochs.get(&me).copied().unwrap_or(0) + 1;
                self.cost_epochs.insert(me, epoch);
                let changed = self.core.update_cost(me, declared);
                for &b in self.core.neighbors() {
                    ctx.send(
                        b,
                        FpssMsg::CostUpdate {
                            origin: me,
                            declared,
                            epoch,
                        },
                    );
                }
                if changed {
                    self.recompute_after_cost_change(ctx, me);
                }
            }
            StreamCommand::PurgeNode(gone) => {
                self.core.remove_neighbor(gone);
                self.core.forget_cost(gone);
                self.cost_epochs.remove(&gone);
                // Full recompute: the wholesale table replacement is what
                // drops the departed node's rows (the destination-scoped
                // path cannot remove a destination it no longer costs).
                self.recompute_and_announce(ctx);
            }
            StreamCommand::Rejoin => {
                let neighbors = self.core.neighbors().to_vec();
                self.core = FpssCore::new(me, neighbors);
                self.cost_epochs.clear();
                let declared = self.strategy.declare_cost(self.true_cost);
                self.declared = Some(declared);
                self.core.learn_cost(me, declared);
                for &b in self.core.neighbors() {
                    ctx.send(
                        b,
                        FpssMsg::CostAnnounce {
                            origin: me,
                            declared,
                        },
                    );
                }
                self.recompute_and_announce(ctx);
            }
            StreamCommand::ResyncNeighbor(back) => {
                self.core.add_neighbor(back);
                // The returned node restarts with amnesia: hand it
                // everything known here as ordinary protocol messages —
                // duplicates are idempotent on its side (first-write-wins
                // costs, change-detected table rows).
                let costs: Vec<(NodeId, Cost)> = self.core.data1().iter().collect();
                for (origin, declared) in costs {
                    ctx.send(back, FpssMsg::CostAnnounce { origin, declared });
                }
                let rows = self.core.routes().to_rows();
                if !rows.is_empty() {
                    ctx.send(back, FpssMsg::RoutingUpdate { rows });
                }
                let rows = self.core.prices().to_rows();
                if !rows.is_empty() {
                    ctx.send(
                        back,
                        FpssMsg::PricingUpdate {
                            rows,
                            retractions: Vec::new(),
                        },
                    );
                }
            }
        }
    }

    fn recompute_and_announce(&mut self, ctx: &mut Ctx<'_, FpssMsg>) {
        let strategy = &mut self.strategy;
        let me = self.core.me();
        let (changed_routes, changed_prices, retractions) = self
            .core
            .recompute_with(|honest| strategy.install_own_pricing(me, honest));
        self.announce(ctx, changed_routes, changed_prices, retractions);
    }

    fn handle_packet(&mut self, ctx: &mut Ctx<'_, FpssMsg>, pkt: Packet) {
        let me = self.core.me();
        if pkt.dst == me {
            *self.delivered_from.entry(pkt.src).or_insert(0) += 1;
            return;
        }
        if pkt.hops > self.max_hops {
            self.dropped += 1;
            return;
        }
        if pkt.src != me && !self.strategy.forward_packet(me, &pkt) {
            self.dropped += 1;
            return;
        }
        let Some(next) = self.core.routes().next_hop(pkt.dst) else {
            self.dropped += 1;
            return;
        };
        if pkt.src != me {
            self.carried += 1;
        }
        ctx.send(
            next,
            FpssMsg::Data(Packet {
                hops: pkt.hops + 1,
                ..pkt
            }),
        );
    }

    fn begin_execution(&mut self, ctx: &mut Ctx<'_, FpssMsg>) {
        let me = self.core.me();
        let flows = std::mem::take(&mut self.pending_traffic);
        for (dst, packets) in flows {
            let Some(path) = self.core.routes().path(dst).map(<[NodeId]>::to_vec) else {
                continue;
            };
            let transits: Vec<NodeId> = if path.len() > 2 {
                path[1..path.len() - 1].to_vec()
            } else {
                Vec::new()
            };
            for _ in 0..packets {
                *self.originated.entry(dst).or_insert(0) += 1;
                for &k in &transits {
                    let price = self.core.prices().price(dst, k).unwrap_or(Money::ZERO);
                    self.ledger.accrue(k, price);
                }
                self.handle_packet(
                    ctx,
                    Packet {
                        src: me,
                        dst,
                        hops: 0,
                    },
                );
            }
        }
    }
}

impl Actor for PlainFpssNode {
    type Msg = FpssMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, FpssMsg>) {
        let me = self.core.me();
        let declared = self.strategy.declare_cost(self.true_cost);
        self.declared = Some(declared);
        self.core.learn_cost(me, declared);
        for &b in self.core.neighbors() {
            ctx.send(
                b,
                FpssMsg::CostAnnounce {
                    origin: me,
                    declared,
                },
            );
        }
        self.recompute_and_announce(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, FpssMsg>, from: NodeId, msg: FpssMsg) {
        match msg {
            FpssMsg::CostAnnounce { origin, declared } => {
                if self.core.learn_cost(origin, declared) {
                    if let Some(refloooded) = self.strategy.reflood_cost(origin, declared) {
                        for &b in self.core.neighbors() {
                            if b != from {
                                ctx.send(
                                    b,
                                    FpssMsg::CostAnnounce {
                                        origin,
                                        declared: refloooded,
                                    },
                                );
                            }
                        }
                    }
                    if self.incremental {
                        // First-write-wins costs only *enable* candidates:
                        // the affected destinations are exactly those with
                        // an advertised route through the origin.
                        let changed_dsts = self.core.dsts_affected_by_cost(origin);
                        let (routes, prices, retractions) =
                            self.core.recompute_dsts(&changed_dsts, true);
                        self.announce(ctx, routes, prices, retractions);
                    } else {
                        self.recompute_and_announce(ctx);
                    }
                }
            }
            FpssMsg::CostUpdate {
                origin,
                declared,
                epoch,
            } => {
                let last = self.cost_epochs.get(&origin).copied().unwrap_or(0);
                if epoch <= last {
                    return;
                }
                self.cost_epochs.insert(origin, epoch);
                // Re-flood on epoch newness (not value change): the flood
                // must reach nodes that already hold the value through a
                // different path, and the epoch check terminates it.
                for &b in self.core.neighbors() {
                    if b != from {
                        ctx.send(
                            b,
                            FpssMsg::CostUpdate {
                                origin,
                                declared,
                                epoch,
                            },
                        );
                    }
                }
                if self.core.update_cost(origin, declared) {
                    self.recompute_after_cost_change(ctx, origin);
                }
            }
            FpssMsg::RoutingUpdate { rows } => {
                let mut changed_dsts = BTreeSet::new();
                for row in &rows {
                    if self.core.learn_route(from, row) {
                        changed_dsts.insert(row.dst);
                    }
                }
                if !changed_dsts.is_empty() {
                    if self.incremental {
                        let (routes, prices, retractions) =
                            self.core.recompute_dsts(&changed_dsts, true);
                        self.announce(ctx, routes, prices, retractions);
                    } else {
                        self.recompute_and_announce(ctx);
                    }
                }
            }
            FpssMsg::PricingUpdate { rows, retractions } => {
                let mut changed_dsts = BTreeSet::new();
                for row in &rows {
                    if self.core.learn_price(from, row) {
                        changed_dsts.insert(row.dst);
                    }
                }
                for &(dst, transit) in &retractions {
                    if self.core.learn_price_retraction(from, dst, transit) {
                        changed_dsts.insert(dst);
                    }
                }
                if !changed_dsts.is_empty() {
                    if self.incremental {
                        // Advertised prices are not a routing input:
                        // routing rows cannot change here.
                        let (routes, prices, retractions) =
                            self.core.recompute_dsts(&changed_dsts, false);
                        self.announce(ctx, routes, prices, retractions);
                    } else {
                        self.recompute_and_announce(ctx);
                    }
                }
            }
            FpssMsg::Data(pkt) => self.handle_packet(ctx, pkt),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, FpssMsg>, tag: u64) {
        if tag == TAG_BEGIN_EXECUTION {
            self.begin_execution(ctx);
        } else if tag == TAG_STREAM {
            let cmds = std::mem::take(&mut self.stream_commands);
            for cmd in cmds {
                self.apply_stream_command(ctx, cmd);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn core_recompute_reports_changes_once() {
        let mut core = FpssCore::new(n(0), vec![n(1)]);
        core.learn_cost(n(0), Cost::new(0));
        core.learn_cost(n(1), Cost::new(5));
        let (routes, _, _) = core.recompute();
        // Trivial self-row plus the adjacency row to 1.
        assert!(routes.iter().any(|r| r.dst == n(1)));
        let (routes2, prices2, retractions2) = core.recompute();
        assert!(routes2.is_empty(), "no change on re-run");
        assert!(prices2.is_empty());
        assert!(retractions2.is_empty());
    }

    #[test]
    fn core_me_and_neighbors() {
        let core = FpssCore::new(n(2), vec![n(0), n(1)]);
        assert_eq!(core.me(), n(2));
        assert_eq!(core.neighbors(), &[n(0), n(1)]);
    }

    #[test]
    fn node_debug_names_strategy() {
        let node = PlainFpssNode::faithful(n(0), vec![n(1)], Cost::new(1), 32);
        assert!(format!("{node:?}").contains("faithful"));
    }
}
