//! # specfaith-netsim
//!
//! A deterministic discrete-event simulator for message-passing protocols
//! on static topologies — the substrate every experiment in this workspace
//! runs on.
//!
//! Design constraints, all imposed by the paper's setting:
//!
//! * **Determinism.** Faithfulness experiments compare a faithful run
//!   against thousands of single-deviation runs; any nondeterminism would
//!   confound utility differences. Events are ordered by `(time, sequence
//!   number)`, randomness comes only from a seeded RNG, and two runs with
//!   the same seed produce identical traces (tested).
//! * **Virtual time.** The paper's model (after Griffin–Wilfong) is an
//!   asynchronous static network; a virtual-clock DES reproduces it exactly
//!   and runs orders of magnitude faster than wall-clock async runtimes.
//! * **Quiescence hooks.** FPSS's bank checkpoints "at a network quiescence
//!   point"; the simulator detects global quiescence exactly (drained event
//!   queue) and hands control to registered observers.
//! * **Accounting.** Per-node message and byte counters feed the overhead
//!   experiments (E8) that quantify the cost of checkpointing the paper
//!   warns about.
//! * **Pluggable network models.** The paper assumes a benign network;
//!   the [`model`] subsystem relaxes that with bandwidth contention and
//!   loss, and [`dynamics`] adds scheduled partitions and node churn —
//!   with [`model::Ideal`] (the default) reproducing the latency-only
//!   engine byte-for-byte.
//!
//! # Example
//!
//! ```
//! use specfaith_netsim::{Actor, Connectivity, Ctx, FixedLatency, Network, Payload};
//! use specfaith_core::id::NodeId;
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl Payload for Ping {
//!     fn size_bytes(&self) -> usize { 4 }
//! }
//!
//! struct Echo;
//! impl Actor for Echo {
//!     type Msg = Ping;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
//!         if ctx.id() == NodeId::new(0) {
//!             ctx.send(NodeId::new(1), Ping(1));
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, Ping>, from: NodeId, msg: Ping) {
//!         if msg.0 < 3 {
//!             ctx.send(from, Ping(msg.0 + 1));
//!         }
//!     }
//! }
//!
//! let mut net = Network::new(
//!     Connectivity::fully_connected(2),
//!     vec![Echo, Echo],
//!     FixedLatency::new(10),
//!     42,
//! );
//! let outcome = net.run();
//! assert_eq!(outcome.messages_delivered, 3);
//! ```

pub mod connect;
pub mod dynamics;
pub mod latency;
pub mod model;
pub mod payload;
pub mod sim;
pub mod time;

pub use connect::Connectivity;
pub use dynamics::{Dynamics, TopologyEvent};
pub use latency::{FixedLatency, JitteredLatency, Latency, LatencyModel};
pub use model::{NetModel, NetworkModel, TransferId};
pub use payload::Payload;
pub use sim::{Actor, Ctx, NetStats, Network, RunOutcome};
pub use time::{SimDuration, SimTime};

pub use specfaith_core::id::NodeId;
