//! Pluggable network models: how long a message occupies its link.
//!
//! The [`LatencyModel`](crate::latency::LatencyModel) decides a message's
//! *propagation* delay; a [`NetworkModel`] decides everything else about
//! its delivery — serialization time as a function of wire size, fair
//! sharing of a link's bandwidth among concurrent transfers, and loss.
//! Four implementations cover the space the experiments need:
//!
//! | model | delivery time | state |
//! |---|---|---|
//! | [`Ideal`] | `now + latency` (the pre-0.3 behavior, default) | none |
//! | [`ConstantThroughput`] | `now + latency + size/bandwidth` | none |
//! | [`SharedThroughput`] | latency + fair-share serialization | per-link in-flight set |
//! | [`Lossy`] | inner model's, or dropped | seeded RNG draws |
//!
//! **Determinism contract.** Every model is a pure function of its
//! configuration, the message sequence, and the simulator's seeded RNG
//! stream ([`Lossy`] draws one value per send; the others draw nothing).
//! [`SharedThroughput`] keeps its in-flight bookkeeping in `BTreeMap`s so
//! iteration order — and therefore every reschedule — is deterministic.
//! Two runs with the same seed and the same model produce identical
//! traces, exactly as with latency-only simulation.
//!
//! **Engine protocol.** The simulator assigns each sent message a
//! [`TransferId`] and calls [`NetworkModel::on_send`] with the message's
//! wire size and pre-drawn propagation latency. The model answers with a
//! [`SendVerdict`]: deliver at a final time, drop, or treat the message as
//! an in-flight *transfer* whose serialization completes at a tentative
//! time. Transfers may be **re-scheduled** while in flight (fair sharing
//! slows everyone down when a link gains a transfer, speeds everyone up
//! when one completes); the engine honors reschedules lazily — a delayed
//! completion is discovered when its queued event pops early and
//! re-pushes itself, and only completions moving *earlier* than their
//! queued event push a fresh one. When a transfer's
//! serialization completes, [`NetworkModel::on_serialized`] yields the
//! final delivery time (completion + propagation latency) plus any
//! reschedules freed bandwidth causes.

use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use specfaith_core::id::NodeId;
use std::collections::BTreeMap;
use std::fmt;

/// Engine-assigned identity of one sent message, used to address
/// re-schedulable in-flight transfers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransferId(pub u64);

impl fmt::Display for TransferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transfer#{}", self.0)
    }
}

/// What a [`NetworkModel`] decides about a freshly sent message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SendVerdict {
    /// Deliver at `at`, final — the model will not touch this message
    /// again. Stateless models ([`Ideal`], [`ConstantThroughput`]) always
    /// answer this.
    Deliver {
        /// Final delivery time.
        at: SimTime,
    },
    /// The message is an in-flight transfer whose serialization currently
    /// completes at `completes_at`; the engine calls
    /// [`NetworkModel::on_serialized`] when the (possibly re-scheduled)
    /// completion fires.
    Transfer {
        /// Tentative serialization-completion time.
        completes_at: SimTime,
    },
    /// The message is lost; it is never delivered.
    Drop,
}

/// [`NetworkModel::on_send`]'s full answer: the new message's verdict plus
/// reschedules of *other* in-flight transfers whose fair share changed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SendOutcome {
    /// The new message's fate.
    pub verdict: SendVerdict,
    /// `(transfer, new completion time)` for every in-flight transfer
    /// whose serialization-completion moved.
    pub reschedules: Vec<(TransferId, SimTime)>,
}

impl SendOutcome {
    /// A final delivery at `at`, rescheduling nothing.
    pub fn deliver(at: SimTime) -> Self {
        SendOutcome {
            verdict: SendVerdict::Deliver { at },
            reschedules: Vec::new(),
        }
    }
}

/// [`NetworkModel::on_serialized`]'s answer: when the completed transfer
/// is delivered, plus reschedules of transfers sped up by the freed
/// bandwidth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Serialized {
    /// Final delivery time of the completed transfer (completion time plus
    /// its propagation latency).
    pub deliver_at: SimTime,
    /// `(transfer, new completion time)` for transfers that sped up.
    pub reschedules: Vec<(TransferId, SimTime)>,
}

/// Decides delivery time from message size, link state, and in-flight
/// load.
///
/// Implementations must be deterministic given the RNG stream (see the
/// [module docs](self) for the engine protocol and determinism contract).
pub trait NetworkModel: fmt::Debug + Send {
    /// A message of `size_bytes` enters the directed link
    /// `link.0 → link.1` at `now`, with propagation latency `latency`
    /// already drawn by the engine.
    fn on_send(
        &mut self,
        id: TransferId,
        link: (NodeId, NodeId),
        size_bytes: u64,
        latency: SimDuration,
        now: SimTime,
        rng: &mut StdRng,
    ) -> SendOutcome;

    /// Transfer `id`'s serialization completed at `now`. Only called for
    /// messages answered with [`SendVerdict::Transfer`], exactly once
    /// each.
    fn on_serialized(&mut self, id: TransferId, now: SimTime) -> Serialized;
}

/// Latency-only delivery: every message arrives after exactly its
/// propagation delay, regardless of size or load — the simulator's
/// historical behavior and the default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ideal;

impl NetworkModel for Ideal {
    fn on_send(
        &mut self,
        _id: TransferId,
        _link: (NodeId, NodeId),
        _size_bytes: u64,
        latency: SimDuration,
        now: SimTime,
        _rng: &mut StdRng,
    ) -> SendOutcome {
        SendOutcome::deliver(now + latency)
    }

    fn on_serialized(&mut self, id: TransferId, _now: SimTime) -> Serialized {
        unreachable!("Ideal never answers Transfer (asked about {id})")
    }
}

/// Per-link constant bandwidth: a message of `s` bytes takes
/// `⌈s / bandwidth⌉` to serialize on top of its propagation latency,
/// independent of what else the link carries (every transfer gets the
/// full link rate — the dslab `ConstantThroughputNetwork` shape).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstantThroughput {
    bytes_per_sec: u64,
}

impl ConstantThroughput {
    /// A constant-throughput model where every link carries
    /// `bytes_per_sec` bytes per (virtual) second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "link bandwidth must be positive");
        ConstantThroughput { bytes_per_sec }
    }

    /// Serialization delay of `size_bytes` at this bandwidth, rounded up
    /// to whole microseconds.
    fn serialization(&self, size_bytes: u64) -> SimDuration {
        let micros = (size_bytes * 1_000_000).div_ceil(self.bytes_per_sec);
        SimDuration::from_micros(micros)
    }
}

impl NetworkModel for ConstantThroughput {
    fn on_send(
        &mut self,
        _id: TransferId,
        _link: (NodeId, NodeId),
        size_bytes: u64,
        latency: SimDuration,
        now: SimTime,
        _rng: &mut StdRng,
    ) -> SendOutcome {
        SendOutcome::deliver(now + latency + self.serialization(size_bytes))
    }

    fn on_serialized(&mut self, id: TransferId, _now: SimTime) -> Serialized {
        unreachable!("ConstantThroughput never answers Transfer (asked about {id})")
    }
}

/// One in-flight transfer of the [`SharedThroughput`] model.
#[derive(Clone, Debug)]
struct Flight {
    /// Bytes still to serialize (fractional: fair shares divide bandwidth).
    remaining: f64,
    /// Propagation latency drawn at send time, applied after completion.
    latency: SimDuration,
    /// Currently scheduled completion (to skip no-op reschedules).
    completes_at: SimTime,
}

/// One directed link's in-flight population. Every flight on a link shares
/// the link's fair rate, so a single `updated` stamp covers them all:
/// every arrival or completion brings the whole link current first.
///
/// Flights are kept in a `Vec` sorted by id — transfer ids are globally
/// monotone, so arrivals always append — which makes the per-event passes
/// below linear scans instead of tree walks.
#[derive(Clone, Debug, Default)]
struct Link {
    /// Sim time at which every flight's `remaining` was last brought
    /// current.
    updated: SimTime,
    flights: Vec<(TransferId, Flight)>,
}

impl Link {
    /// Brings every flight current to `now`: subtracts the bytes
    /// serialized since the last update at the fair share `rate` that held
    /// over that interval (the share was constant, because every
    /// arrival/completion passes through here first).
    fn advance(&mut self, rate: f64, now: SimTime) {
        let elapsed = (now - self.updated).micros() as f64;
        self.updated = now;
        if elapsed == 0.0 {
            return;
        }
        let served = rate * elapsed;
        for (_, flight) in self.flights.iter_mut() {
            flight.remaining = (flight.remaining - served).max(0.0);
        }
    }

    /// Recomputes every completion for the current population at fair
    /// share `rate`, returning the `(id, completes_at)` pairs that
    /// actually moved.
    fn reschedule(&mut self, rate: f64, now: SimTime) -> Vec<(TransferId, SimTime)> {
        let mut moved = Vec::new();
        for (id, flight) in self.flights.iter_mut() {
            let micros = (flight.remaining / rate).ceil() as u64;
            let completes_at = now + SimDuration::from_micros(micros);
            if completes_at != flight.completes_at {
                flight.completes_at = completes_at;
                moved.push((*id, completes_at));
            }
        }
        moved
    }

    /// Removes and returns flight `id` (present by protocol contract).
    fn remove(&mut self, id: TransferId) -> Flight {
        let i = self
            .flights
            .binary_search_by_key(&id, |(fid, _)| *fid)
            .expect("links and flights agree");
        self.flights.remove(i).1
    }
}

/// Fair sharing of each directed link's bandwidth among its concurrent
/// transfers (the dslab `SharedThroughputNetwork` shape): a link carrying
/// `k` transfers serializes each at `bandwidth / k`, and every arrival or
/// completion re-divides the rate — re-scheduling the in-flight
/// completions.
///
/// Bookkeeping is in `BTreeMap`s keyed by link and [`TransferId`], so the
/// reschedule order is deterministic. Remaining sizes are tracked in `f64`
/// bytes (fair shares are fractional); completion times round up to whole
/// microseconds. All arithmetic is IEEE-deterministic, so runs remain
/// byte-reproducible per seed.
#[derive(Clone, Debug)]
pub struct SharedThroughput {
    bytes_per_sec: u64,
    links: BTreeMap<(NodeId, NodeId), Link>,
    /// Which link each in-flight transfer occupies (completions arrive by
    /// transfer id).
    occupied: BTreeMap<TransferId, (NodeId, NodeId)>,
}

impl SharedThroughput {
    /// A fair-sharing model where each directed link carries
    /// `bytes_per_sec` bytes per (virtual) second, split evenly among the
    /// link's concurrent transfers.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "link bandwidth must be positive");
        SharedThroughput {
            bytes_per_sec,
            links: BTreeMap::new(),
            occupied: BTreeMap::new(),
        }
    }

    /// Number of transfers currently in flight (all links).
    pub fn in_flight(&self) -> usize {
        self.occupied.len()
    }

    fn rate_per_flight(&self, k: usize) -> f64 {
        self.bytes_per_sec as f64 / 1_000_000.0 / k as f64
    }
}

impl NetworkModel for SharedThroughput {
    fn on_send(
        &mut self,
        id: TransferId,
        link: (NodeId, NodeId),
        size_bytes: u64,
        latency: SimDuration,
        now: SimTime,
        _rng: &mut StdRng,
    ) -> SendOutcome {
        let key = link;
        let old_rate = self.rate_per_flight(self.links.get(&key).map_or(1, |l| l.flights.len()));
        let link = self.links.entry(key).or_default();
        // The bytes served so far accrued at the *old* population's share.
        link.advance(old_rate, now);
        link.flights.push((
            id,
            Flight {
                remaining: size_bytes as f64,
                latency,
                // Placeholder; the reschedule below sets the real time
                // (and reports it as "moved", which is how we read it out).
                completes_at: SimTime::from_micros(u64::MAX),
            },
        ));
        let new_rate = self.bytes_per_sec as f64 / 1_000_000.0 / link.flights.len() as f64;
        let mut reschedules = link.reschedule(new_rate, now);
        self.occupied.insert(id, key);
        let at = reschedules
            .iter()
            .position(|(moved, _)| *moved == id)
            .map(|i| reschedules.remove(i).1)
            .expect("a fresh transfer always receives a completion time");
        SendOutcome {
            verdict: SendVerdict::Transfer { completes_at: at },
            reschedules,
        }
    }

    fn on_serialized(&mut self, id: TransferId, now: SimTime) -> Serialized {
        let key = self
            .occupied
            .remove(&id)
            .expect("completion of a live transfer");
        let link = self.links.get_mut(&key).expect("links and flights agree");
        let rate = self.bytes_per_sec as f64 / 1_000_000.0 / link.flights.len() as f64;
        link.advance(rate, now);
        let flight = link.remove(id);
        let reschedules = if link.flights.is_empty() {
            self.links.remove(&key);
            Vec::new()
        } else {
            let rate = self.bytes_per_sec as f64 / 1_000_000.0 / link.flights.len() as f64;
            link.reschedule(rate, now)
        };
        Serialized {
            deliver_at: now + flight.latency,
            reschedules,
        }
    }
}

/// Seeded per-link loss wrapping any inner model: each send is dropped
/// with probability `drop_permille / 1000`, drawn from the simulator's
/// seeded RNG stream (one draw per send, so loss patterns are
/// reproducible per seed); survivors are passed through unchanged.
#[derive(Debug)]
pub struct Lossy {
    drop_permille: u32,
    inner: Box<dyn NetworkModel>,
}

impl Lossy {
    /// Wraps `inner`, dropping each message with probability
    /// `drop_permille / 1000`.
    ///
    /// # Panics
    ///
    /// Panics if `drop_permille` exceeds 1000.
    pub fn new(drop_permille: u32, inner: Box<dyn NetworkModel>) -> Self {
        assert!(drop_permille <= 1000, "drop probability is per-mille");
        Lossy {
            drop_permille,
            inner,
        }
    }
}

impl NetworkModel for Lossy {
    fn on_send(
        &mut self,
        id: TransferId,
        link: (NodeId, NodeId),
        size_bytes: u64,
        latency: SimDuration,
        now: SimTime,
        rng: &mut StdRng,
    ) -> SendOutcome {
        // One draw per send, taken *before* delegating, so the RNG stream
        // does not depend on the inner model's decisions.
        let roll = rng.gen_range(0..1000);
        if roll < self.drop_permille {
            return SendOutcome {
                verdict: SendVerdict::Drop,
                reschedules: Vec::new(),
            };
        }
        self.inner.on_send(id, link, size_bytes, latency, now, rng)
    }

    fn on_serialized(&mut self, id: TransferId, now: SimTime) -> Serialized {
        self.inner.on_serialized(id, now)
    }
}

/// A plain-data network model: the closed enum over the models above.
///
/// Like [`Latency`](crate::latency::Latency), scenario configuration
/// wants the network model as a *value* (clonable, comparable, buildable
/// from config); unlike latency models, some network models are stateful,
/// so this enum is a **configuration** that [`NetModel::instantiate`]s a
/// fresh runtime model per run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetModel {
    /// Latency-only delivery (see [`Ideal`]) — the default.
    Ideal,
    /// Per-link constant bandwidth (see [`ConstantThroughput`]).
    Constant {
        /// Link bandwidth in bytes per (virtual) second.
        bytes_per_sec: u64,
    },
    /// Fair-shared per-link bandwidth (see [`SharedThroughput`]).
    Shared {
        /// Link bandwidth in bytes per (virtual) second.
        bytes_per_sec: u64,
    },
    /// Seeded loss wrapping any inner model (see [`Lossy`]).
    Lossy {
        /// Drop probability in per-mille (`10` = 1%).
        drop_permille: u32,
        /// The wrapped model.
        inner: Box<NetModel>,
    },
}

impl NetModel {
    /// The default model: [`NetModel::Ideal`].
    pub const DEFAULT: NetModel = NetModel::Ideal;

    /// A megabyte per second — a preset bandwidth at which the FPSS
    /// construction flood (tens of bytes per message, 10 µs links)
    /// visibly contends: one byte per microsecond.
    pub const PRESET_CONGESTED_BPS: u64 = 1_000_000;

    /// Per-link constant bandwidth of `bytes_per_sec`.
    pub fn constant(bytes_per_sec: u64) -> Self {
        NetModel::Constant { bytes_per_sec }
    }

    /// Fair-shared per-link bandwidth of `bytes_per_sec`.
    pub fn shared(bytes_per_sec: u64) -> Self {
        NetModel::Shared { bytes_per_sec }
    }

    /// The congested preset: fair-shared links at
    /// [`NetModel::PRESET_CONGESTED_BPS`].
    pub fn congested() -> Self {
        NetModel::shared(NetModel::PRESET_CONGESTED_BPS)
    }

    /// This model wrapped in `drop_permille / 1000` seeded loss
    /// (`NetModel::congested().with_loss(10)` = congestion plus 1% loss).
    #[must_use]
    pub fn with_loss(self, drop_permille: u32) -> Self {
        NetModel::Lossy {
            drop_permille,
            inner: Box::new(self),
        }
    }

    /// Builds a fresh runtime model from this configuration.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (zero bandwidth, loss beyond
    /// 1000 ‰).
    pub fn instantiate(&self) -> Box<dyn NetworkModel> {
        match self {
            NetModel::Ideal => Box::new(Ideal),
            NetModel::Constant { bytes_per_sec } => {
                Box::new(ConstantThroughput::new(*bytes_per_sec))
            }
            NetModel::Shared { bytes_per_sec } => Box::new(SharedThroughput::new(*bytes_per_sec)),
            NetModel::Lossy {
                drop_permille,
                inner,
            } => Box::new(Lossy::new(*drop_permille, inner.instantiate())),
        }
    }
}

impl Default for NetModel {
    fn default() -> Self {
        NetModel::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    const LAT: SimDuration = SimDuration::from_micros(10);

    #[test]
    fn ideal_is_latency_only() {
        let mut model = Ideal;
        let out = model.on_send(
            TransferId(0),
            (n(0), n(1)),
            1_000_000,
            LAT,
            SimTime::from_micros(5),
            &mut rng(),
        );
        assert_eq!(
            out.verdict,
            SendVerdict::Deliver {
                at: SimTime::from_micros(15)
            }
        );
        assert!(out.reschedules.is_empty());
    }

    #[test]
    fn constant_throughput_adds_size_dependent_serialization() {
        // 1 MB/s = 1 byte/µs: 100 bytes serialize in 100 µs.
        let mut model = ConstantThroughput::new(1_000_000);
        let out = model.on_send(
            TransferId(0),
            (n(0), n(1)),
            100,
            LAT,
            SimTime::ZERO,
            &mut rng(),
        );
        assert_eq!(
            out.verdict,
            SendVerdict::Deliver {
                at: SimTime::from_micros(110)
            }
        );
        // Rounding is up: 1 byte at 1 MB/s is a full microsecond.
        let out = model.on_send(
            TransferId(1),
            (n(0), n(1)),
            1,
            LAT,
            SimTime::ZERO,
            &mut rng(),
        );
        assert_eq!(
            out.verdict,
            SendVerdict::Deliver {
                at: SimTime::from_micros(11)
            }
        );
        // Load-independent: a third concurrent send sees the same delay.
        let out = model.on_send(
            TransferId(2),
            (n(0), n(1)),
            100,
            LAT,
            SimTime::ZERO,
            &mut rng(),
        );
        assert_eq!(
            out.verdict,
            SendVerdict::Deliver {
                at: SimTime::from_micros(110)
            }
        );
    }

    #[test]
    fn shared_throughput_halves_rate_under_contention() {
        // The tentpole's required unit test: adding a concurrent transfer
        // delays an in-flight delivery.
        let mut model = SharedThroughput::new(1_000_000); // 1 byte/µs
        let a = TransferId(0);
        let b = TransferId(1);
        // A alone: 100 bytes at full rate → completes at t=100.
        let out = model.on_send(a, (n(0), n(1)), 100, LAT, SimTime::ZERO, &mut rng());
        assert_eq!(
            out.verdict,
            SendVerdict::Transfer {
                completes_at: SimTime::from_micros(100)
            }
        );
        assert!(out.reschedules.is_empty());
        // B arrives on the same link at t=50: A has 50 bytes left, now at
        // half rate → 100 more µs → A's completion moves from 100 to 150.
        let out = model.on_send(
            b,
            (n(0), n(1)),
            100,
            LAT,
            SimTime::from_micros(50),
            &mut rng(),
        );
        assert_eq!(
            out.verdict,
            SendVerdict::Transfer {
                completes_at: SimTime::from_micros(250)
            },
            "B: 100 bytes at half rate"
        );
        assert_eq!(
            out.reschedules,
            vec![(a, SimTime::from_micros(150))],
            "A's in-flight delivery is delayed by B's arrival"
        );
        // A completes at 150: delivery adds latency; B — 50 bytes left
        // after 100 µs at half rate — speeds back up to the full rate and
        // its completion moves from 250 up to 200.
        let done = model.on_serialized(a, SimTime::from_micros(150));
        assert_eq!(done.deliver_at, SimTime::from_micros(160));
        assert_eq!(
            done.reschedules,
            vec![(b, SimTime::from_micros(200))],
            "B speeds up when A's transfer completes"
        );
        assert_eq!(model.in_flight(), 1);
        let done = model.on_serialized(b, SimTime::from_micros(200));
        assert_eq!(done.deliver_at, SimTime::from_micros(210));
        assert_eq!(model.in_flight(), 0);
    }

    #[test]
    fn shared_throughput_completion_frees_bandwidth_early() {
        let mut model = SharedThroughput::new(1_000_000);
        let a = TransferId(0);
        let b = TransferId(1);
        // A (20 bytes) and B (200 bytes) start together: half rate each.
        let out = model.on_send(a, (n(0), n(1)), 20, LAT, SimTime::ZERO, &mut rng());
        assert_eq!(
            out.verdict,
            SendVerdict::Transfer {
                completes_at: SimTime::from_micros(20)
            }
        );
        let out = model.on_send(b, (n(0), n(1)), 200, LAT, SimTime::ZERO, &mut rng());
        assert_eq!(
            out.verdict,
            SendVerdict::Transfer {
                completes_at: SimTime::from_micros(400)
            }
        );
        assert_eq!(out.reschedules, vec![(a, SimTime::from_micros(40))]);
        // A (10 bytes left at half rate) completes at t=40; B then has
        // 180 bytes left and the full rate → completes at 220, not 400.
        let done = model.on_serialized(a, SimTime::from_micros(40));
        assert_eq!(
            done.reschedules,
            vec![(b, SimTime::from_micros(220))],
            "a completed transfer speeds up the survivors"
        );
    }

    #[test]
    fn shared_throughput_links_are_independent() {
        let mut model = SharedThroughput::new(1_000_000);
        let out = model.on_send(
            TransferId(0),
            (n(0), n(1)),
            100,
            LAT,
            SimTime::ZERO,
            &mut rng(),
        );
        assert_eq!(
            out.verdict,
            SendVerdict::Transfer {
                completes_at: SimTime::from_micros(100)
            }
        );
        // A transfer on a *different* directed link contends with nothing.
        let out = model.on_send(
            TransferId(1),
            (n(1), n(0)),
            100,
            LAT,
            SimTime::ZERO,
            &mut rng(),
        );
        assert_eq!(
            out.verdict,
            SendVerdict::Transfer {
                completes_at: SimTime::from_micros(100)
            }
        );
        assert!(out.reschedules.is_empty());
    }

    #[test]
    fn lossy_drops_are_seeded_and_reproducible() {
        let drops = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut model = Lossy::new(500, Box::new(Ideal));
            (0..100)
                .map(|i| {
                    let out =
                        model.on_send(TransferId(i), (n(0), n(1)), 8, LAT, SimTime::ZERO, &mut rng);
                    out.verdict == SendVerdict::Drop
                })
                .collect::<Vec<_>>()
        };
        let a = drops(7);
        assert_eq!(a, drops(7), "loss pattern is a pure function of the seed");
        let dropped = a.iter().filter(|&&d| d).count();
        assert!(
            (30..70).contains(&dropped),
            "500‰ loss drops about half ({dropped}/100)"
        );
        assert_ne!(a, drops(8), "different seeds draw different patterns");
    }

    #[test]
    fn lossy_zero_and_full_are_degenerate() {
        let mut rng = rng();
        let mut none = Lossy::new(0, Box::new(Ideal));
        let mut all = Lossy::new(1000, Box::new(Ideal));
        for i in 0..50 {
            let out = none.on_send(TransferId(i), (n(0), n(1)), 8, LAT, SimTime::ZERO, &mut rng);
            assert_ne!(out.verdict, SendVerdict::Drop);
            let out = all.on_send(TransferId(i), (n(0), n(1)), 8, LAT, SimTime::ZERO, &mut rng);
            assert_eq!(out.verdict, SendVerdict::Drop);
        }
    }

    #[test]
    fn net_model_instantiates_every_variant() {
        let mut rng = rng();
        let configs = [
            NetModel::Ideal,
            NetModel::constant(1_000_000),
            NetModel::shared(1_000_000),
            NetModel::congested().with_loss(10),
        ];
        for config in &configs {
            let mut model = config.instantiate();
            // Every model answers on_send without panicking.
            let _ = model.on_send(
                TransferId(0),
                (n(0), n(1)),
                64,
                LAT,
                SimTime::ZERO,
                &mut rng,
            );
        }
        assert_eq!(NetModel::default(), NetModel::Ideal);
        assert_eq!(
            NetModel::congested(),
            NetModel::Shared {
                bytes_per_sec: NetModel::PRESET_CONGESTED_BPS
            }
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = SharedThroughput::new(0);
    }

    #[test]
    #[should_panic(expected = "per-mille")]
    fn overfull_loss_rejected() {
        let _ = Lossy::new(1001, Box::new(Ideal));
    }
}
