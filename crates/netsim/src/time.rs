//! Virtual simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since simulation start.
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Constructs a time from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// The span in microseconds.
    pub const fn micros(self) -> u64 {
        self.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("sim time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative sim duration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("sim duration overflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}µs", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(100);
        let d = SimDuration::from_micros(50);
        assert_eq!(t + d, SimTime::from_micros(150));
        assert_eq!(SimTime::from_micros(150) - t, d);
        assert_eq!(d + d, SimDuration::from_micros(100));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimDuration::ZERO < SimDuration::from_micros(1));
    }

    #[test]
    #[should_panic(expected = "negative sim duration")]
    fn negative_duration_panics() {
        let _ = SimTime::ZERO - SimTime::from_micros(1);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_micros(5).to_string(), "t=5µs");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5µs");
    }
}
