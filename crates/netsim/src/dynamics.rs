//! Scheduled topology dynamics: link-cost changes, node churn, partitions.
//!
//! A [`Dynamics`] value is a plain-data schedule of [`TopologyEvent`]s at
//! absolute sim times. The engine applies every event whose time has
//! arrived *before* processing each simulation event, so a partition
//! scheduled at `t=500µs` blocks a message delivered at `t=500µs` or
//! later — even one sent long before.
//!
//! Semantics (all checked at both send *and* delivery time, so a message
//! in flight when a link goes down is lost):
//!
//! - [`TopologyEvent::LinkCost`] overrides the propagation latency of one
//!   undirected link, replacing the latency model's draw for it. While an
//!   override is active the engine skips the RNG draw for that link, so
//!   overrides perturb the random stream of jittered models; fixed-latency
//!   runs (the default) are unaffected.
//! - [`TopologyEvent::NodeDown`] silently drops everything the node sends
//!   or would receive. Its timers still fire (the node's local clock keeps
//!   running) — a crashed process loses its network, not its scheduler
//!   entries; protocols must tolerate a neighbor that times out silently.
//! - [`TopologyEvent::NodeUp`] restores a downed node.
//! - [`TopologyEvent::Partition`] splits the network in two: messages
//!   crossing the island boundary (either direction) are dropped. Nodes
//!   not named in `island` — including engine overlay nodes such as the
//!   faithful harness's bank — form the other side. A new partition
//!   replaces any active one.
//! - [`TopologyEvent::Heal`] removes the active partition.
//!
//! Dynamics never mutate the static [`Connectivity`](crate::Connectivity)
//! graph: sending to a non-neighbor remains a protocol bug (a panic), and
//! messages blocked by dynamics are *dropped* (counted in
//! `NetStats::msgs_dropped`), not rejected.

use crate::time::{SimDuration, SimTime};
use specfaith_core::id::NodeId;
use std::collections::BTreeMap;

/// One scheduled change to the network's behavior.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyEvent {
    /// Override the propagation latency of the undirected link `a ↔ b`
    /// to `micros`, replacing the latency model's draw (both directions).
    LinkCost {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// New propagation latency in microseconds.
        micros: u64,
    },
    /// Take a node offline: everything it sends or would receive is
    /// dropped until a matching [`TopologyEvent::NodeUp`].
    NodeDown(NodeId),
    /// Bring a downed node back online.
    NodeUp(NodeId),
    /// A node re-declares its transit cost (protocol-level event). The
    /// transport engine ignores it — links and latencies are unaffected —
    /// but streaming run engines interpret it as "re-converge from the
    /// current fixed point with `node`'s declared cost set to `cost`".
    NodeCost {
        /// The node whose declared cost changes.
        node: NodeId,
        /// The new declared transit cost, in cost units.
        cost: u64,
    },
    /// Split the network: messages between `island` and everyone else
    /// (including overlay nodes) are dropped until [`TopologyEvent::Heal`].
    Partition {
        /// The nodes on one side of the split.
        island: Vec<NodeId>,
    },
    /// Remove the active partition.
    Heal,
}

/// A plain-data schedule of [`TopologyEvent`]s at absolute sim times.
///
/// Build with [`Dynamics::at`]; times need not be added in order (the
/// schedule sorts stably, so same-time events apply in insertion order).
///
/// # Example
///
/// ```
/// use specfaith_netsim::{Dynamics, TopologyEvent};
/// use specfaith_core::id::NodeId;
///
/// let dynamics = Dynamics::new()
///     .at(500, TopologyEvent::Partition { island: vec![NodeId::new(0), NodeId::new(1)] })
///     .at(2_000, TopologyEvent::Heal);
/// assert_eq!(dynamics.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Dynamics {
    schedule: Vec<(SimTime, TopologyEvent)>,
}

impl Dynamics {
    /// An empty schedule (no dynamics — the default).
    pub fn new() -> Self {
        Dynamics::default()
    }

    /// Adds `event` at `micros` microseconds of sim time.
    #[must_use]
    pub fn at(mut self, micros: u64, event: TopologyEvent) -> Self {
        let at = SimTime::from_micros(micros);
        let pos = self.schedule.partition_point(|(t, _)| *t <= at);
        self.schedule.insert(pos, (at, event));
        self
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// The scheduled events in application order.
    pub fn events(&self) -> &[(SimTime, TopologyEvent)] {
        &self.schedule
    }
}

/// Engine-side interpreter of a [`Dynamics`] schedule: tracks which nodes
/// are down, the active partition, and latency overrides as sim time
/// advances.
#[derive(Debug)]
pub struct DynamicsState {
    schedule: Vec<(SimTime, TopologyEvent)>,
    /// Index of the next unapplied event.
    next: usize,
    /// `down[i]` — node `i` is offline. Indexed past `n` returns false
    /// (overlay nodes can only go down if explicitly named).
    down: Vec<bool>,
    /// Active partition: `Some(island)` where `island[i]` marks side A.
    island: Option<Vec<bool>>,
    /// Latency overrides per undirected link, keyed `(min, max)`.
    overrides: BTreeMap<(NodeId, NodeId), SimDuration>,
    /// Total nodes (topology + overlay), for sizing the flag vectors.
    n: usize,
}

impl DynamicsState {
    /// Interprets `dynamics` for a network of `n` nodes (including any
    /// overlay nodes).
    pub fn new(dynamics: &Dynamics, n: usize) -> Self {
        DynamicsState {
            schedule: dynamics.schedule.clone(),
            next: 0,
            down: vec![false; n],
            island: None,
            overrides: BTreeMap::new(),
            n,
        }
    }

    /// Whether any events remain unapplied or any state is active; when
    /// false, `blocked`/`latency_override` are trivially inert.
    pub fn is_inert(&self) -> bool {
        self.next >= self.schedule.len()
            && self.island.is_none()
            && self.overrides.is_empty()
            && !self.down.iter().any(|&d| d)
    }

    /// Applies every scheduled event with time ≤ `now`, in order.
    pub fn apply_until(&mut self, now: SimTime) {
        while let Some((at, event)) = self.schedule.get(self.next) {
            if *at > now {
                break;
            }
            let event = event.clone();
            self.next += 1;
            self.apply(&event);
        }
    }

    /// Applies one event immediately, outside the schedule — the streaming
    /// engines' entry point: they inject events between quiescent runs
    /// instead of scheduling them in advance.
    pub fn apply_now(&mut self, event: &TopologyEvent) {
        self.apply(event);
    }

    fn apply(&mut self, event: &TopologyEvent) {
        match event {
            TopologyEvent::LinkCost { a, b, micros } => {
                let key = if a <= b { (*a, *b) } else { (*b, *a) };
                self.overrides
                    .insert(key, SimDuration::from_micros(*micros));
            }
            TopologyEvent::NodeDown(node) => {
                if node.index() < self.n {
                    self.down[node.index()] = true;
                }
            }
            TopologyEvent::NodeUp(node) => {
                if node.index() < self.n {
                    self.down[node.index()] = false;
                }
            }
            // Protocol-level event: the transport layer carries it in the
            // schedule vocabulary but links/latencies are unaffected.
            TopologyEvent::NodeCost { .. } => {}
            TopologyEvent::Partition { island } => {
                let mut side = vec![false; self.n];
                for node in island {
                    if node.index() < self.n {
                        side[node.index()] = true;
                    }
                }
                self.island = Some(side);
            }
            TopologyEvent::Heal => {
                self.island = None;
            }
        }
    }

    /// Whether a message `from → to` is dropped under the current state
    /// (either endpoint down, or the link crosses the active partition).
    pub fn blocked(&self, from: NodeId, to: NodeId) -> bool {
        if self.down.get(from.index()).copied().unwrap_or(false)
            || self.down.get(to.index()).copied().unwrap_or(false)
        {
            return true;
        }
        if let Some(island) = &self.island {
            let side = |id: NodeId| island.get(id.index()).copied().unwrap_or(false);
            if side(from) != side(to) {
                return true;
            }
        }
        false
    }

    /// The active latency override for `from → to`, if any.
    pub fn latency_override(&self, from: NodeId, to: NodeId) -> Option<SimDuration> {
        let key = if from <= to { (from, to) } else { (to, from) };
        self.overrides.get(&key).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn schedule_sorts_by_time_stably() {
        let d = Dynamics::new()
            .at(200, TopologyEvent::Heal)
            .at(100, TopologyEvent::NodeDown(n(1)))
            .at(100, TopologyEvent::NodeUp(n(1)));
        let times: Vec<u64> = d.events().iter().map(|(t, _)| t.micros()).collect();
        assert_eq!(times, vec![100, 100, 200]);
        // Same-time events keep insertion order: down then up.
        assert_eq!(d.events()[0].1, TopologyEvent::NodeDown(n(1)));
        assert_eq!(d.events()[1].1, TopologyEvent::NodeUp(n(1)));
    }

    #[test]
    fn node_down_blocks_both_directions_until_up() {
        let d = Dynamics::new()
            .at(100, TopologyEvent::NodeDown(n(1)))
            .at(300, TopologyEvent::NodeUp(n(1)));
        let mut state = DynamicsState::new(&d, 4);
        state.apply_until(SimTime::from_micros(50));
        assert!(!state.blocked(n(0), n(1)));
        state.apply_until(SimTime::from_micros(100));
        assert!(state.blocked(n(0), n(1)), "receive blocked");
        assert!(state.blocked(n(1), n(2)), "send blocked");
        assert!(!state.blocked(n(0), n(2)), "bystanders unaffected");
        state.apply_until(SimTime::from_micros(300));
        assert!(!state.blocked(n(0), n(1)));
        assert!(state.is_inert());
    }

    #[test]
    fn partition_blocks_crossings_and_heals() {
        let d = Dynamics::new()
            .at(
                100,
                TopologyEvent::Partition {
                    island: vec![n(0), n(1)],
                },
            )
            .at(500, TopologyEvent::Heal);
        let mut state = DynamicsState::new(&d, 5);
        state.apply_until(SimTime::from_micros(100));
        assert!(state.blocked(n(0), n(2)), "island → mainland");
        assert!(state.blocked(n(3), n(1)), "mainland → island");
        assert!(!state.blocked(n(0), n(1)), "within island");
        assert!(!state.blocked(n(2), n(3)), "within mainland");
        // Overlay node 4 (not named) is on the mainland side.
        assert!(state.blocked(n(0), n(4)));
        assert!(!state.blocked(n(2), n(4)));
        state.apply_until(SimTime::from_micros(500));
        assert!(!state.blocked(n(0), n(2)));
    }

    #[test]
    fn link_cost_overrides_one_undirected_link() {
        let d = Dynamics::new().at(
            0,
            TopologyEvent::LinkCost {
                a: n(2),
                b: n(1),
                micros: 77,
            },
        );
        let mut state = DynamicsState::new(&d, 4);
        state.apply_until(SimTime::ZERO);
        let want = Some(SimDuration::from_micros(77));
        assert_eq!(state.latency_override(n(1), n(2)), want);
        assert_eq!(state.latency_override(n(2), n(1)), want, "undirected");
        assert_eq!(state.latency_override(n(0), n(1)), None);
    }

    #[test]
    fn events_apply_in_order_not_all_at_once() {
        let d = Dynamics::new()
            .at(100, TopologyEvent::NodeDown(n(0)))
            .at(200, TopologyEvent::NodeDown(n(1)));
        let mut state = DynamicsState::new(&d, 2);
        state.apply_until(SimTime::from_micros(150));
        assert!(state.blocked(n(0), n(1)));
        assert!(state.down[0]);
        assert!(!state.down[1], "the t=200 event has not arrived");
    }

    #[test]
    fn node_cost_is_transport_inert() {
        let d = Dynamics::new().at(
            100,
            TopologyEvent::NodeCost {
                node: n(1),
                cost: 9,
            },
        );
        let mut state = DynamicsState::new(&d, 4);
        state.apply_until(SimTime::from_micros(100));
        assert!(state.is_inert(), "NodeCost leaves the transport untouched");
        assert!(!state.blocked(n(0), n(1)));
        assert_eq!(state.latency_override(n(0), n(1)), None);
    }

    #[test]
    fn empty_dynamics_is_inert() {
        let state = DynamicsState::new(&Dynamics::new(), 8);
        assert!(state.is_inert());
        assert!(!state.blocked(n(0), n(1)));
        assert_eq!(state.latency_override(n(0), n(1)), None);
    }
}
