//! The discrete-event engine: actors, contexts, and the network.

use crate::connect::Connectivity;
use crate::dynamics::{Dynamics, DynamicsState};
use crate::latency::LatencyModel;
use crate::model::{NetModel, NetworkModel, SendVerdict, TransferId};
use crate::payload::Payload;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use specfaith_core::id::NodeId;
use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

/// A protocol node.
///
/// All callbacks receive a [`Ctx`] through which the node sends messages,
/// sets timers, and reads the clock. Every mutation of the outside world
/// goes through the context, which is what lets deviation strategies in
/// `specfaith-faithful` interpose on exactly the externally visible
/// actions.
pub trait Actor {
    /// The message type this protocol exchanges.
    type Msg: Payload;

    /// Called once, at time zero, in increasing node-id order.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, _tag: u64) {}

    /// Whether this node wants [`Actor::on_quiescence`] callbacks.
    fn observes_quiescence(&self) -> bool {
        false
    }

    /// Called when the network is globally quiescent (no in-flight
    /// messages or timers). FPSS's bank checkpoints from this hook.
    fn on_quiescence(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}
}

/// The side-effect interface handed to actor callbacks.
pub struct Ctx<'a, M> {
    id: NodeId,
    now: SimTime,
    outbox: &'a mut Vec<(NodeId, M)>,
    timers: &'a mut Vec<(SimDuration, u64)>,
    rng: &'a mut StdRng,
}

impl<M> Ctx<'_, M> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Queues a message to `to`. Delivery is asynchronous; the connectivity
    /// check happens at flush time and panics on illegal links (a protocol
    /// bug, not a runtime condition).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Schedules an [`Actor::on_timer`] callback after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.timers.push((delay, tag));
    }

    /// The simulation RNG (shared, seeded; use for protocol randomness so
    /// runs stay reproducible).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

enum EventKind<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    Timer {
        node: NodeId,
        tag: u64,
    },
    /// Serialization of transfer `id` tentatively completes (see
    /// [`crate::model::SendVerdict::Transfer`]). Completion events are
    /// lazy: a popped event whose transfer has since been re-scheduled to
    /// a later time re-pushes itself at the new target instead of firing.
    /// Re-schedules that *delay* a transfer — the overwhelmingly common
    /// case under fair sharing, where every arrival slows the whole link —
    /// therefore cost no heap traffic at all.
    Complete {
        id: u64,
    },
}

/// A message held by the engine while its serialization is in flight under
/// a throughput model; delivered when a `Complete` fires on its
/// [`TransferTimes`] target.
struct PendingTransfer<M> {
    from: NodeId,
    to: NodeId,
    msg: M,
}

/// The re-schedule-hot state of one transfer, kept in a flat slab indexed
/// by transfer id (ids are dense and sequential) — fair sharing
/// re-schedules every flight on a link per arrival/completion, so this is
/// touched orders of magnitude more often than the transfer's message.
#[derive(Clone, Copy, Default)]
struct TransferTimes {
    /// Authoritative serialization-completion time (moved by re-schedules).
    target: SimTime,
    /// Sequence number the completion fires with. Every re-schedule draws
    /// a fresh sequence number (whether or not it pushes an event), so
    /// same-timestamp tie-breaking is identical to an engine that pushed a
    /// fresh event per re-schedule — traces are independent of how many
    /// events were actually queued.
    tie_seq: u64,
    /// A lower bound on the earliest queued `Complete` for this transfer.
    /// Invariant: while the transfer is pending, an event is queued at or
    /// before `min(scheduled, target)`, so a pop happens no later than the
    /// target; pops that don't match `(target, tie_seq)` re-push the real
    /// completion and are skipped.
    scheduled: SimTime,
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // (time, then insertion sequence) — a deterministic total order.
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// Per-run message accounting.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Messages sent per node.
    pub msgs_sent: Vec<u64>,
    /// Estimated bytes sent per node.
    pub bytes_sent: Vec<u64>,
    /// Total messages delivered.
    pub msgs_delivered: u64,
    /// Total timer callbacks fired.
    pub timers_fired: u64,
    /// Messages lost to the network model or topology dynamics (loss,
    /// downed nodes, partitions). Dropped messages still count in
    /// `msgs_sent`/`bytes_sent` — the sender paid for them.
    pub msgs_dropped: u64,
    /// In-flight deliveries re-scheduled by a throughput model reacting to
    /// load changes (zero under `Ideal`/`ConstantThroughput`).
    pub deliveries_rescheduled: u64,
    /// High-water mark of the event queue — a gauge of simultaneous
    /// in-flight work (messages, transfers, timers).
    pub max_queue_depth: u64,
}

impl NetStats {
    fn new(n: usize) -> Self {
        NetStats {
            msgs_sent: vec![0; n],
            bytes_sent: vec![0; n],
            ..NetStats::default()
        }
    }

    /// Total messages sent across all nodes.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_sent.iter().sum()
    }

    /// Total bytes sent across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent.iter().sum()
    }
}

/// Summary of a [`Network::run`].
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Messages delivered during the run.
    pub messages_delivered: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
    /// Number of quiescence rounds in which observers were invoked.
    pub quiescence_rounds: u64,
    /// Virtual time when the run ended.
    pub final_time: SimTime,
    /// Whether the run hit the event budget before reaching quiescence
    /// (indicates a livelocked protocol; treated as a failed run by
    /// experiments).
    pub truncated: bool,
}

/// A simulated network of homogeneous actors.
pub struct Network<A: Actor, L> {
    connectivity: Connectivity,
    actors: Vec<A>,
    latency: L,
    model: Box<dyn NetworkModel>,
    dynamics: DynamicsState,
    /// False ⇒ no dynamics were configured; skips all per-event dynamics
    /// bookkeeping (the default path is exactly the pre-dynamics engine).
    dynamics_active: bool,
    rng: StdRng,
    queue: BinaryHeap<Reverse<Event<A::Msg>>>,
    /// Transfers whose serialization is in flight, keyed by transfer id.
    pending: BTreeMap<u64, PendingTransfer<A::Msg>>,
    /// Hot per-transfer scheduling state, indexed by transfer id. Grows
    /// only when a model answers `Transfer` (never under `Ideal`).
    times: Vec<TransferTimes>,
    next_transfer: u64,
    now: SimTime,
    seq: u64,
    stats: NetStats,
    started: bool,
    max_events: u64,
    max_quiescence_rounds: u64,
}

impl<A: Actor, L> fmt::Debug for Network<A, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Network({} nodes, {} queued, {})",
            self.actors.len(),
            self.queue.len(),
            self.now
        )
    }
}

impl<A: Actor, L: LatencyModel> Network<A, L> {
    /// Builds a network.
    ///
    /// # Panics
    ///
    /// Panics if the number of actors differs from the connectivity's node
    /// count.
    pub fn new(connectivity: Connectivity, actors: Vec<A>, latency: L, seed: u64) -> Self {
        assert_eq!(
            connectivity.num_nodes(),
            actors.len(),
            "one actor per connectivity node"
        );
        let n = actors.len();
        Network {
            connectivity,
            actors,
            latency,
            model: NetModel::Ideal.instantiate(),
            dynamics: DynamicsState::new(&Dynamics::default(), n),
            dynamics_active: false,
            rng: StdRng::seed_from_u64(seed),
            queue: BinaryHeap::new(),
            pending: BTreeMap::new(),
            times: Vec::new(),
            next_transfer: 0,
            now: SimTime::ZERO,
            seq: 0,
            stats: NetStats::new(n),
            started: false,
            max_events: 10_000_000,
            max_quiescence_rounds: 10_000,
        }
    }

    /// Replaces the network model (default: [`NetModel::Ideal`], which
    /// reproduces the latency-only engine byte-for-byte).
    #[must_use]
    pub fn with_network(mut self, model: &NetModel) -> Self {
        self.model = model.instantiate();
        self
    }

    /// Installs a topology-dynamics schedule (default: none).
    #[must_use]
    pub fn with_dynamics(mut self, dynamics: &Dynamics) -> Self {
        self.dynamics_active = !dynamics.is_empty();
        self.dynamics = DynamicsState::new(dynamics, self.actors.len());
        self
    }

    /// Applies one topology event to the live dynamics state immediately —
    /// the streaming engines' entry point between [`Network::run`] calls
    /// (a scheduled [`Dynamics`] drives the same state during a run).
    /// Events applied this way activate dynamics bookkeeping for the rest
    /// of the network's lifetime.
    pub fn apply_dynamics_event(&mut self, event: &crate::dynamics::TopologyEvent) {
        self.dynamics.apply_now(event);
        self.dynamics_active = true;
    }

    /// Caps total processed events (protection against livelocked
    /// protocols under deviation).
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Caps quiescence rounds (protection against observers that restart
    /// forever).
    #[must_use]
    pub fn with_max_quiescence_rounds(mut self, rounds: u64) -> Self {
        self.max_quiescence_rounds = rounds;
        self
    }

    /// Immutable access to a node's actor.
    pub fn node(&self, id: NodeId) -> &A {
        &self.actors[id.index()]
    }

    /// Mutable access to a node's actor (used by experiment harnesses to
    /// inspect or prime state between runs).
    pub fn node_mut(&mut self, id: NodeId) -> &mut A {
        &mut self.actors[id.index()]
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + Clone {
        specfaith_core::id::node_ids(self.actors.len())
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Schedules a timer for `node` from outside the simulation — how
    /// experiment harnesses hand control to actors between [`Network::run`]
    /// calls (e.g. to start the FPSS execution phase after construction
    /// has converged).
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, tag: u64) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            at: self.now + delay,
            seq: self.seq,
            kind: EventKind::Timer { node, tag },
        }));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn flush(
        &mut self,
        from: NodeId,
        outbox: Vec<(NodeId, A::Msg)>,
        timers: Vec<(SimDuration, u64)>,
    ) {
        for (to, msg) in outbox {
            assert!(
                self.connectivity.can_send(from, to),
                "protocol bug: {from} attempted to send to non-neighbor {to}"
            );
            self.stats.msgs_sent[from.index()] += 1;
            let size = msg.size_bytes() as u64;
            self.stats.bytes_sent[from.index()] += size;
            if self.dynamics_active && self.dynamics.blocked(from, to) {
                self.stats.msgs_dropped += 1;
                continue;
            }
            // A link-cost override replaces the model's draw — and skips
            // it, so overrides perturb jittered RNG streams (documented in
            // `dynamics`); the default path draws exactly as before.
            let delay = if self.dynamics_active {
                self.dynamics
                    .latency_override(from, to)
                    .unwrap_or_else(|| self.latency.delay(from, to, &mut self.rng))
            } else {
                self.latency.delay(from, to, &mut self.rng)
            };
            let id = self.next_transfer;
            self.next_transfer += 1;
            let outcome = self.model.on_send(
                TransferId(id),
                (from, to),
                size,
                delay,
                self.now,
                &mut self.rng,
            );
            match outcome.verdict {
                SendVerdict::Deliver { at } => {
                    self.seq += 1;
                    self.queue.push(Reverse(Event {
                        at,
                        seq: self.seq,
                        kind: EventKind::Deliver { from, to, msg },
                    }));
                }
                SendVerdict::Transfer { completes_at } => {
                    self.seq += 1;
                    self.pending.insert(id, PendingTransfer { from, to, msg });
                    if self.times.len() <= id as usize {
                        self.times.resize(id as usize + 1, TransferTimes::default());
                    }
                    self.times[id as usize] = TransferTimes {
                        target: completes_at,
                        tie_seq: self.seq,
                        scheduled: completes_at,
                    };
                    self.queue.push(Reverse(Event {
                        at: completes_at,
                        seq: self.seq,
                        kind: EventKind::Complete { id },
                    }));
                }
                SendVerdict::Drop => {
                    self.stats.msgs_dropped += 1;
                }
            }
            self.apply_reschedules(outcome.reschedules);
        }
        for (delay, tag) in timers {
            self.seq += 1;
            self.queue.push(Reverse(Event {
                at: self.now + delay,
                seq: self.seq,
                kind: EventKind::Timer { node: from, tag },
            }));
        }
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len() as u64);
    }

    /// Moves in-flight transfers to new completion times. Delays are free —
    /// an already-queued event discovers the later target when it pops and
    /// re-pushes itself; only a completion moving *earlier* than everything
    /// queued for its transfer needs a fresh event. Every re-schedule
    /// draws a sequence number either way, so traces are exactly those of
    /// an engine that pushed one event per re-schedule.
    fn apply_reschedules(&mut self, reschedules: Vec<(TransferId, SimTime)>) {
        self.stats.deliveries_rescheduled += reschedules.len() as u64;
        for (TransferId(id), at) in reschedules {
            debug_assert!(
                self.pending.contains_key(&id),
                "models only reschedule in-flight transfers"
            );
            self.seq += 1;
            let times = &mut self.times[id as usize];
            times.target = at;
            times.tie_seq = self.seq;
            if at < times.scheduled {
                times.scheduled = at;
                self.queue.push(Reverse(Event {
                    at,
                    seq: self.seq,
                    kind: EventKind::Complete { id },
                }));
            }
        }
    }

    fn invoke(&mut self, node: NodeId, call: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>)) {
        let mut outbox = Vec::new();
        let mut timers = Vec::new();
        {
            let mut ctx = Ctx {
                id: node,
                now: self.now,
                outbox: &mut outbox,
                timers: &mut timers,
                rng: &mut self.rng,
            };
            call(&mut self.actors[node.index()], &mut ctx);
        }
        self.flush(node, outbox, timers);
    }

    /// Runs to global quiescence: starts actors (first call only), drains
    /// the event queue, invokes quiescence observers, and repeats until no
    /// observer generates further work.
    pub fn run(&mut self) -> RunOutcome {
        if self.dynamics_active {
            // Events scheduled at or before the current time (e.g. a
            // partition at t=0) take effect before anything is sent.
            self.dynamics.apply_until(self.now);
        }
        if !self.started {
            self.started = true;
            for node in self.node_ids().collect::<Vec<_>>() {
                self.invoke(node, |actor, ctx| actor.on_start(ctx));
            }
        }
        let mut processed = 0u64;
        let mut quiescence_rounds = 0u64;
        let mut truncated = false;
        'outer: loop {
            while let Some(Reverse(event)) = self.queue.pop() {
                if processed >= self.max_events {
                    truncated = true;
                    break 'outer;
                }
                debug_assert!(event.at >= self.now, "time must be monotone");
                // Lazy completions: an event whose transfer already fired
                // is heap garbage, and one that doesn't match the
                // transfer's `(target, tie_seq)` — it was queued before a
                // re-schedule — re-pushes the real completion and is
                // skipped. Neither advances time nor spends event budget.
                if let EventKind::Complete { id } = event.kind {
                    if !self.pending.contains_key(&id) {
                        continue;
                    }
                    let times = &mut self.times[id as usize];
                    if event.at != times.target || event.seq != times.tie_seq {
                        debug_assert!(
                            event.at <= times.target,
                            "an event queued at `scheduled ≤ target` pops by the target"
                        );
                        let (at, seq) = (times.target, times.tie_seq);
                        times.scheduled = at;
                        self.queue.push(Reverse(Event {
                            at,
                            seq,
                            kind: EventKind::Complete { id },
                        }));
                        continue;
                    }
                }
                processed += 1;
                self.now = event.at;
                if self.dynamics_active {
                    self.dynamics.apply_until(self.now);
                }
                match event.kind {
                    EventKind::Deliver { from, to, msg } => {
                        // Checked at delivery as well as send: a message in
                        // flight when its link goes down is lost.
                        if self.dynamics_active && self.dynamics.blocked(from, to) {
                            self.stats.msgs_dropped += 1;
                            continue;
                        }
                        self.stats.msgs_delivered += 1;
                        self.invoke(to, |actor, ctx| actor.on_message(ctx, from, msg));
                    }
                    EventKind::Timer { node, tag } => {
                        self.stats.timers_fired += 1;
                        self.invoke(node, |actor, ctx| actor.on_timer(ctx, tag));
                    }
                    EventKind::Complete { id } => {
                        let done = self.model.on_serialized(TransferId(id), self.now);
                        let transfer = self.pending.remove(&id).expect("checked live above");
                        self.seq += 1;
                        self.queue.push(Reverse(Event {
                            at: done.deliver_at,
                            seq: self.seq,
                            kind: EventKind::Deliver {
                                from: transfer.from,
                                to: transfer.to,
                                msg: transfer.msg,
                            },
                        }));
                        self.apply_reschedules(done.reschedules);
                        self.stats.max_queue_depth =
                            self.stats.max_queue_depth.max(self.queue.len() as u64);
                    }
                }
            }
            debug_assert!(
                self.pending.is_empty(),
                "a drained queue leaves no transfer in flight"
            );
            // Queue drained: give quiescence observers a chance.
            if quiescence_rounds >= self.max_quiescence_rounds {
                truncated = true;
                break;
            }
            let observers: Vec<NodeId> = self
                .node_ids()
                .filter(|&id| self.actors[id.index()].observes_quiescence())
                .collect();
            if observers.is_empty() {
                break;
            }
            quiescence_rounds += 1;
            for node in observers {
                self.invoke(node, |actor, ctx| actor.on_quiescence(ctx));
            }
            if self.queue.is_empty() {
                break;
            }
        }
        RunOutcome {
            messages_delivered: self.stats.msgs_delivered,
            timers_fired: self.stats.timers_fired,
            quiescence_rounds,
            final_time: self.now,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::TopologyEvent;
    use crate::latency::{FixedLatency, JitteredLatency};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[derive(Clone, Debug)]
    struct Token(u64);

    impl Payload for Token {
        fn size_bytes(&self) -> usize {
            8
        }
    }

    /// Passes a token around the full ring `hops` times, recording the
    /// order in which this node saw tokens.
    struct RingActor {
        n: u32,
        hops: u64,
        seen: Vec<u64>,
    }

    impl Actor for RingActor {
        type Msg = Token;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Token>) {
            if ctx.id() == NodeId::new(0) {
                let next = NodeId::new(1 % self.n);
                ctx.send(next, Token(0));
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, _from: NodeId, msg: Token) {
            self.seen.push(msg.0);
            if msg.0 + 1 < self.hops {
                let next = NodeId::new((ctx.id().raw() + 1) % self.n);
                ctx.send(next, Token(msg.0 + 1));
            }
        }
    }

    fn ring_network(nodes: u32, hops: u64, seed: u64) -> Network<RingActor, FixedLatency> {
        let actors = (0..nodes)
            .map(|_| RingActor {
                n: nodes,
                hops,
                seen: Vec::new(),
            })
            .collect();
        Network::new(
            Connectivity::fully_connected(nodes as usize),
            actors,
            FixedLatency::new(10),
            seed,
        )
    }

    #[test]
    fn token_ring_delivers_all_hops() {
        let mut net = ring_network(4, 8, 1);
        let outcome = net.run();
        assert_eq!(outcome.messages_delivered, 8);
        assert!(!outcome.truncated);
        assert_eq!(outcome.final_time, SimTime::from_micros(80));
        // Node 1 saw tokens 0 and 4.
        assert_eq!(net.node(n(1)).seen, vec![0, 4]);
    }

    #[test]
    fn stats_account_messages_and_bytes() {
        let mut net = ring_network(4, 8, 1);
        net.run();
        let stats = net.stats();
        assert_eq!(stats.total_msgs(), 8);
        assert_eq!(stats.total_bytes(), 64);
        assert_eq!(stats.msgs_sent[0], 2); // tokens 0 (start) and 4→5 hop
    }

    #[test]
    fn identical_seeds_give_identical_traces() {
        let mut a = ring_network(5, 20, 7);
        let mut b = ring_network(5, 20, 7);
        a.run();
        b.run();
        for i in 0..5 {
            assert_eq!(a.node(n(i)).seen, b.node(n(i)).seen);
        }
        assert_eq!(a.stats().msgs_sent, b.stats().msgs_sent);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let build = |seed| {
            let actors = (0..3)
                .map(|_| RingActor {
                    n: 3,
                    hops: 12,
                    seen: Vec::new(),
                })
                .collect::<Vec<_>>();
            Network::new(
                Connectivity::fully_connected(3),
                actors,
                JitteredLatency::new(5, 10),
                seed,
            )
        };
        let mut a = build(3);
        let mut b = build(3);
        assert_eq!(a.run().final_time, b.run().final_time);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sends_outside_connectivity_panic() {
        struct Rogue;
        impl Actor for Rogue {
            type Msg = Token;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Token>) {
                ctx.send(NodeId::new(1), Token(0));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Token>, _: NodeId, _: Token) {}
        }
        let mut net = Network::new(
            Connectivity::disconnected(2),
            vec![Rogue, Rogue],
            FixedLatency::new(1),
            0,
        );
        net.run();
    }

    /// Fires a chain of timers and records tags in order.
    struct TimerActor {
        fired: Vec<u64>,
    }

    impl Actor for TimerActor {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(SimDuration::from_micros(30), 3);
            ctx.set_timer(SimDuration::from_micros(10), 1);
            ctx.set_timer(SimDuration::from_micros(20), 2);
        }

        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}

        fn on_timer(&mut self, _: &mut Ctx<'_, ()>, tag: u64) {
            self.fired.push(tag);
        }
    }

    #[test]
    fn timers_fire_in_time_order() {
        let mut net = Network::new(
            Connectivity::disconnected(1),
            vec![TimerActor { fired: Vec::new() }],
            FixedLatency::new(1),
            0,
        );
        let outcome = net.run();
        assert_eq!(outcome.timers_fired, 3);
        assert_eq!(net.node(n(0)).fired, vec![1, 2, 3]);
    }

    /// A quiescence observer that kicks off `rounds` extra rounds of work.
    struct Checkpointer {
        rounds_left: u32,
        observed: u32,
    }

    impl Actor for Checkpointer {
        type Msg = Token;

        fn on_message(&mut self, _: &mut Ctx<'_, Token>, _: NodeId, _: Token) {}

        fn observes_quiescence(&self) -> bool {
            true
        }

        fn on_quiescence(&mut self, ctx: &mut Ctx<'_, Token>) {
            self.observed += 1;
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                ctx.send(NodeId::new(1), Token(0));
            }
        }
    }

    struct Sink;
    impl Actor for Sink {
        type Msg = Token;
        fn on_message(&mut self, _: &mut Ctx<'_, Token>, _: NodeId, _: Token) {}
    }

    #[test]
    fn quiescence_observers_run_until_silent() {
        enum Either {
            Check(Checkpointer),
            Sink(Sink),
        }
        impl Actor for Either {
            type Msg = Token;
            fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, from: NodeId, msg: Token) {
                match self {
                    Either::Check(c) => c.on_message(ctx, from, msg),
                    Either::Sink(s) => s.on_message(ctx, from, msg),
                }
            }
            fn observes_quiescence(&self) -> bool {
                matches!(self, Either::Check(_))
            }
            fn on_quiescence(&mut self, ctx: &mut Ctx<'_, Token>) {
                if let Either::Check(c) = self {
                    c.on_quiescence(ctx);
                }
            }
        }
        let mut net = Network::new(
            Connectivity::fully_connected(2),
            vec![
                Either::Check(Checkpointer {
                    rounds_left: 3,
                    observed: 0,
                }),
                Either::Sink(Sink),
            ],
            FixedLatency::new(5),
            0,
        );
        let outcome = net.run();
        // 3 rounds generate work, the 4th is silent and ends the run.
        assert_eq!(outcome.quiescence_rounds, 4);
        assert_eq!(outcome.messages_delivered, 3);
        match net.node(n(0)) {
            Either::Check(c) => assert_eq!(c.observed, 4),
            Either::Sink(_) => panic!("node 0 is the checkpointer"),
        }
    }

    #[test]
    fn event_budget_truncates_livelock() {
        /// Two nodes bounce a message forever.
        struct Bouncer;
        impl Actor for Bouncer {
            type Msg = Token;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Token>) {
                if ctx.id() == NodeId::new(0) {
                    ctx.send(NodeId::new(1), Token(0));
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, from: NodeId, msg: Token) {
                ctx.send(from, msg);
            }
        }
        let mut net = Network::new(
            Connectivity::fully_connected(2),
            vec![Bouncer, Bouncer],
            FixedLatency::new(1),
            0,
        )
        .with_max_events(100);
        let outcome = net.run();
        assert!(outcome.truncated);
        assert_eq!(outcome.messages_delivered, 100);
    }

    #[test]
    #[should_panic(expected = "one actor per connectivity node")]
    fn actor_count_must_match() {
        let _ = Network::new(
            Connectivity::fully_connected(3),
            vec![Sink, Sink],
            FixedLatency::new(1),
            0,
        );
    }

    #[test]
    fn externally_scheduled_timers_fire() {
        let mut net = Network::new(
            Connectivity::disconnected(2),
            vec![
                TimerActor { fired: Vec::new() },
                TimerActor { fired: Vec::new() },
            ],
            FixedLatency::new(1),
            0,
        );
        net.run();
        // First run consumed the actors' own timers; schedule fresh ones
        // externally (the harness pattern for starting execution phases).
        net.schedule_timer(n(1), SimDuration::from_micros(5), 42);
        net.schedule_timer(n(0), SimDuration::from_micros(3), 41);
        let outcome = net.run();
        assert_eq!(outcome.timers_fired, 3 + 3 + 2);
        assert_eq!(net.node(n(1)).fired.last(), Some(&42));
        assert_eq!(net.node(n(0)).fired.last(), Some(&41));
    }

    #[test]
    fn time_advances_across_runs() {
        let mut net = Network::new(
            Connectivity::disconnected(1),
            vec![TimerActor { fired: Vec::new() }],
            FixedLatency::new(1),
            0,
        );
        let first = net.run();
        net.schedule_timer(n(0), SimDuration::from_micros(100), 9);
        let second = net.run();
        assert!(second.final_time > first.final_time);
        assert_eq!(
            second.final_time - first.final_time,
            SimDuration::from_micros(100)
        );
    }

    #[test]
    fn explicit_ideal_model_is_the_default_engine() {
        let mut plain = ring_network(5, 20, 7);
        let mut ideal = ring_network(5, 20, 7);
        ideal = ideal
            .with_network(&NetModel::Ideal)
            .with_dynamics(&Dynamics::new());
        let a = plain.run();
        let b = ideal.run();
        assert_eq!(a.final_time, b.final_time);
        assert_eq!(a.messages_delivered, b.messages_delivered);
        for i in 0..5 {
            assert_eq!(plain.node(n(i)).seen, ideal.node(n(i)).seen);
        }
        assert_eq!(plain.stats().msgs_sent, ideal.stats().msgs_sent);
        assert_eq!(ideal.stats().msgs_dropped, 0);
        assert_eq!(ideal.stats().deliveries_rescheduled, 0);
    }

    #[test]
    fn constant_throughput_stretches_the_ring() {
        // 8-byte tokens at 1 MB/s add 8 µs serialization per hop on top of
        // the 10 µs latency: 8 hops × 18 µs.
        let mut net = ring_network(4, 8, 1).with_network(&NetModel::constant(1_000_000));
        let outcome = net.run();
        assert_eq!(outcome.messages_delivered, 8);
        assert_eq!(outcome.final_time, SimTime::from_micros(8 * 18));
    }

    #[test]
    fn shared_throughput_reschedules_under_engine_contention() {
        /// Node 0 sends two 40-byte messages back-to-back to node 1 on the
        /// same link; fair sharing must reschedule the first in flight.
        #[derive(Clone, Debug)]
        struct Wide;
        impl Payload for Wide {
            fn size_bytes(&self) -> usize {
                40
            }
        }
        struct Burst;
        struct Gather(Vec<SimTime>);
        enum Side {
            Burst(Burst),
            Gather(Gather),
        }
        impl Actor for Side {
            type Msg = Wide;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Wide>) {
                if matches!(self, Side::Burst(_)) {
                    ctx.send(NodeId::new(1), Wide);
                    ctx.send(NodeId::new(1), Wide);
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, Wide>, _: NodeId, _: Wide) {
                if let Side::Gather(g) = self {
                    g.0.push(ctx.now());
                }
            }
        }
        let mut net = Network::new(
            Connectivity::fully_connected(2),
            vec![Side::Burst(Burst), Side::Gather(Gather(Vec::new()))],
            FixedLatency::new(10),
            0,
        )
        .with_network(&NetModel::shared(1_000_000));
        let outcome = net.run();
        assert_eq!(outcome.messages_delivered, 2);
        // Both transfers share the link from t=0 at half rate (40 bytes
        // each → both complete at 80), then latency: delivered at 90.
        match net.node(n(1)) {
            Side::Gather(g) => {
                assert_eq!(
                    g.0,
                    vec![SimTime::from_micros(90), SimTime::from_micros(90)]
                );
            }
            Side::Burst(_) => panic!("node 1 gathers"),
        }
        assert_eq!(net.stats().deliveries_rescheduled, 1, "first send moved");
        assert_eq!(net.stats().msgs_delivered, 2);
    }

    #[test]
    fn lossy_engine_counts_drops_deterministically() {
        let run = |seed| {
            let mut net = ring_network(4, 200, seed).with_network(&NetModel::Ideal.with_loss(200));
            net.run();
            (net.stats().msgs_dropped, net.stats().msgs_delivered)
        };
        let (dropped, delivered) = run(3);
        // The ring halts at the first drop: the token is never forwarded.
        assert_eq!(dropped, 1);
        assert!(delivered < 200);
        assert_eq!(run(3), (dropped, delivered), "loss is seed-deterministic");
    }

    #[test]
    fn node_down_drops_in_flight_and_future_messages() {
        // Token ring with node 2 crashing at t=15: the token sent 0→1 at
        // t=0 arrives (t=10), 1→2 is in flight when 2 dies → lost.
        let dynamics = Dynamics::new().at(15, TopologyEvent::NodeDown(n(2)));
        let mut net = ring_network(4, 8, 1).with_dynamics(&dynamics);
        let outcome = net.run();
        assert_eq!(outcome.messages_delivered, 1);
        assert_eq!(net.stats().msgs_dropped, 1);
        assert_eq!(net.node(n(1)).seen, vec![0]);
        assert!(net.node(n(2)).seen.is_empty());
    }

    #[test]
    fn partition_and_heal_gate_the_ring() {
        // Partition {0,1} away at t=5 (token 0→1 at t=0 is in-island and
        // survives; 1→2 crosses and is lost); heal at t=50 — but the ring
        // has no retransmission, so traffic never resumes: the documented
        // liveness failure mode.
        let dynamics = Dynamics::new()
            .at(
                5,
                TopologyEvent::Partition {
                    island: vec![n(0), n(1)],
                },
            )
            .at(50, TopologyEvent::Heal);
        let mut net = ring_network(4, 8, 1).with_dynamics(&dynamics);
        let outcome = net.run();
        assert_eq!(outcome.messages_delivered, 1);
        assert_eq!(net.stats().msgs_dropped, 1);
        assert!(!outcome.truncated, "loss is not livelock");
    }

    #[test]
    fn downed_node_timers_still_fire() {
        let dynamics = Dynamics::new().at(0, TopologyEvent::NodeDown(n(0)));
        let mut net = Network::new(
            Connectivity::disconnected(1),
            vec![TimerActor { fired: Vec::new() }],
            FixedLatency::new(1),
            0,
        )
        .with_dynamics(&dynamics);
        let outcome = net.run();
        assert_eq!(
            outcome.timers_fired, 3,
            "crash loses the network, not the clock"
        );
    }

    #[test]
    fn link_cost_override_changes_delay_without_rng() {
        let dynamics = Dynamics::new().at(
            0,
            TopologyEvent::LinkCost {
                a: n(0),
                b: n(1),
                micros: 100,
            },
        );
        let mut net = ring_network(2, 2, 1).with_dynamics(&dynamics);
        let outcome = net.run();
        // Hop 0→1 takes the overridden 100 µs, hop 1→0 the same link back.
        assert_eq!(outcome.final_time, SimTime::from_micros(200));
    }

    #[test]
    fn max_queue_depth_tracks_in_flight_work() {
        let mut net = ring_network(4, 8, 1);
        net.run();
        // The ring holds one token: one in-flight event at a time (plus
        // nothing else), so the gauge reads 1.
        assert_eq!(net.stats().max_queue_depth, 1);
    }

    #[test]
    fn zero_latency_preserves_send_order() {
        /// Sender emits 0,1,2 to the sink; sink must see them in order
        /// (seq numbers break the time tie deterministically).
        struct Seq;
        struct Collect(Vec<u64>);
        enum Node {
            Seq(Seq),
            Collect(Collect),
        }
        impl Actor for Node {
            type Msg = Token;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Token>) {
                if matches!(self, Node::Seq(_)) {
                    for i in 0..3 {
                        ctx.send(NodeId::new(1), Token(i));
                    }
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Token>, _: NodeId, msg: Token) {
                if let Node::Collect(c) = self {
                    c.0.push(msg.0);
                }
            }
        }
        let mut net = Network::new(
            Connectivity::fully_connected(2),
            vec![Node::Seq(Seq), Node::Collect(Collect(Vec::new()))],
            FixedLatency::new(0),
            0,
        );
        net.run();
        match net.node(n(1)) {
            Node::Collect(c) => assert_eq!(c.0, vec![0, 1, 2]),
            Node::Seq(_) => panic!("node 1 collects"),
        }
    }
}
