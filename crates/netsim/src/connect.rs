//! Who may send to whom.
//!
//! Protocol messages travel only along topology edges; the faithful FPSS
//! extension additionally gives every node a direct (overlay) link to the
//! bank — see DESIGN.md's substitution table. [`Connectivity`] captures the
//! permitted directed links, and the simulator refuses sends outside them,
//! so a protocol bug cannot silently teleport messages.

use specfaith_core::id::NodeId;
use specfaith_graph::topology::Topology;

/// The set of permitted communication links.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Connectivity {
    n: usize,
    allowed: Vec<Vec<bool>>,
}

impl Connectivity {
    /// No links at all between `n` nodes.
    pub fn disconnected(n: usize) -> Self {
        Connectivity {
            n,
            allowed: vec![vec![false; n]; n],
        }
    }

    /// Every ordered pair may communicate.
    pub fn fully_connected(n: usize) -> Self {
        let mut c = Connectivity::disconnected(n);
        for i in 0..n {
            for j in 0..n {
                c.allowed[i][j] = i != j;
            }
        }
        c
    }

    /// Links along the undirected edges of a topology.
    pub fn from_topology(topo: &Topology) -> Self {
        let mut c = Connectivity::disconnected(topo.num_nodes());
        for &(a, b) in topo.edges() {
            c.add_link(a, b);
        }
        c
    }

    /// Like [`Connectivity::from_topology`], but with `extra` additional
    /// nodes appended (ids `n..n+extra`), each bidirectionally linked to
    /// every topology node — the bank-overlay construction.
    pub fn from_topology_with_overlay(topo: &Topology, extra: usize) -> Self {
        let n = topo.num_nodes();
        let mut c = Connectivity::disconnected(n + extra);
        for &(a, b) in topo.edges() {
            c.add_link(a, b);
        }
        for o in n..n + extra {
            for v in 0..n {
                c.add_link(NodeId::from_index(o), NodeId::from_index(v));
            }
        }
        c
    }

    /// Number of nodes (including overlay nodes).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Adds a bidirectional link.
    ///
    /// # Panics
    ///
    /// Panics on self-links or out-of-range ids.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) {
        assert_ne!(a, b, "self-links are not allowed");
        self.allowed[a.index()][b.index()] = true;
        self.allowed[b.index()][a.index()] = true;
    }

    /// Whether `from` may send to `to`.
    pub fn can_send(&self, from: NodeId, to: NodeId) -> bool {
        self.allowed[from.index()][to.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn fully_connected_excludes_self() {
        let c = Connectivity::fully_connected(3);
        assert!(c.can_send(n(0), n(2)));
        assert!(!c.can_send(n(1), n(1)));
    }

    #[test]
    fn from_topology_matches_edges() {
        let topo = Topology::builder(3).edge(0, 1).build();
        let c = Connectivity::from_topology(&topo);
        assert!(c.can_send(n(0), n(1)) && c.can_send(n(1), n(0)));
        assert!(!c.can_send(n(0), n(2)));
    }

    #[test]
    fn overlay_links_every_node_to_extras() {
        let topo = Topology::builder(3).edge(0, 1).edge(1, 2).build();
        let c = Connectivity::from_topology_with_overlay(&topo, 1);
        assert_eq!(c.num_nodes(), 4);
        for v in 0..3 {
            assert!(c.can_send(n(3), n(v)) && c.can_send(n(v), n(3)));
        }
        // Topology links unchanged; 0-2 still not adjacent.
        assert!(!c.can_send(n(0), n(2)));
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn rejects_self_link() {
        let mut c = Connectivity::disconnected(2);
        c.add_link(n(1), n(1));
    }
}
