//! Link latency models.

use crate::time::SimDuration;
use rand::Rng;
use specfaith_core::id::NodeId;

/// Decides the delivery delay of each message.
///
/// Implementations must be deterministic given the RNG stream; the
/// simulator threads one seeded RNG through all latency draws.
pub trait LatencyModel {
    /// Delay for a message from `from` to `to`.
    fn delay<R: Rng>(&self, from: NodeId, to: NodeId, rng: &mut R) -> SimDuration;
}

/// The same fixed delay on every link.
#[derive(Clone, Copy, Debug)]
pub struct FixedLatency {
    delay: SimDuration,
}

impl FixedLatency {
    /// A fixed latency of `micros` microseconds.
    pub fn new(micros: u64) -> Self {
        FixedLatency {
            delay: SimDuration::from_micros(micros),
        }
    }
}

impl LatencyModel for FixedLatency {
    fn delay<R: Rng>(&self, _from: NodeId, _to: NodeId, _rng: &mut R) -> SimDuration {
        self.delay
    }
}

/// A base delay plus uniform jitter in `0..=jitter` microseconds.
///
/// Jitter exercises the protocols' insensitivity to message ordering
/// across links (FIFO per link is still guaranteed by event ordering when
/// jitter is zero; with jitter, cross-link races become visible).
#[derive(Clone, Copy, Debug)]
pub struct JitteredLatency {
    base: u64,
    jitter: u64,
}

impl JitteredLatency {
    /// Base delay `base` µs plus uniform jitter up to `jitter` µs.
    pub fn new(base: u64, jitter: u64) -> Self {
        JitteredLatency { base, jitter }
    }
}

impl LatencyModel for JitteredLatency {
    fn delay<R: Rng>(&self, _from: NodeId, _to: NodeId, rng: &mut R) -> SimDuration {
        SimDuration::from_micros(self.base + rng.gen_range(0..=self.jitter))
    }
}

/// A plain-data latency model: the closed enum over the models above.
///
/// Scenario configuration wants latency as a *value* (clonable,
/// comparable, buildable from config) rather than a type parameter; this
/// enum is that value, and implements [`LatencyModel`] by dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Latency {
    /// The same fixed delay on every link (see [`FixedLatency`]).
    Fixed {
        /// Delay in microseconds.
        micros: u64,
    },
    /// Base delay plus uniform jitter (see [`JitteredLatency`]).
    Jittered {
        /// Base delay in microseconds.
        base: u64,
        /// Maximum additional jitter in microseconds.
        jitter: u64,
    },
}

impl Latency {
    /// The default link delay used by the run engines: fixed 10 µs.
    pub const DEFAULT: Latency = Latency::Fixed { micros: 10 };

    /// A fixed latency of `micros` microseconds.
    pub fn fixed(micros: u64) -> Self {
        Latency::Fixed { micros }
    }

    /// Base delay plus uniform jitter in `0..=jitter` microseconds.
    pub fn jittered(base: u64, jitter: u64) -> Self {
        Latency::Jittered { base, jitter }
    }
}

impl Default for Latency {
    fn default() -> Self {
        Latency::DEFAULT
    }
}

impl LatencyModel for Latency {
    fn delay<R: Rng>(&self, from: NodeId, to: NodeId, rng: &mut R) -> SimDuration {
        match *self {
            Latency::Fixed { micros } => FixedLatency::new(micros).delay(from, to, rng),
            Latency::Jittered { base, jitter } => {
                JitteredLatency::new(base, jitter).delay(from, to, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let model = FixedLatency::new(25);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            assert_eq!(
                model.delay(NodeId::new(0), NodeId::new(1), &mut rng),
                SimDuration::from_micros(25)
            );
        }
    }

    #[test]
    fn enum_dispatch_matches_concrete_models() {
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = StdRng::seed_from_u64(4);
        let concrete = JitteredLatency::new(7, 3);
        let value = Latency::jittered(7, 3);
        for _ in 0..20 {
            assert_eq!(
                concrete.delay(NodeId::new(0), NodeId::new(1), &mut rng_a),
                value.delay(NodeId::new(0), NodeId::new(1), &mut rng_b)
            );
        }
        assert_eq!(
            Latency::fixed(25).delay(NodeId::new(0), NodeId::new(1), &mut rng_a),
            SimDuration::from_micros(25)
        );
        assert_eq!(Latency::default(), Latency::Fixed { micros: 10 });
    }

    #[test]
    fn jittered_stays_in_range_and_is_seed_deterministic() {
        let model = JitteredLatency::new(10, 5);
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20)
                .map(|_| {
                    model
                        .delay(NodeId::new(0), NodeId::new(1), &mut rng)
                        .micros()
                })
                .collect::<Vec<_>>()
        };
        let a = draw(9);
        assert!(a.iter().all(|&d| (10..=15).contains(&d)));
        assert_eq!(a, draw(9));
    }
}
