//! Link latency models.

use crate::time::SimDuration;
use rand::Rng;
use specfaith_core::id::NodeId;

/// Decides the delivery delay of each message.
///
/// Implementations must be deterministic given the RNG stream; the
/// simulator threads one seeded RNG through all latency draws.
pub trait LatencyModel {
    /// Delay for a message from `from` to `to`.
    fn delay<R: Rng>(&self, from: NodeId, to: NodeId, rng: &mut R) -> SimDuration;
}

/// The same fixed delay on every link.
#[derive(Clone, Copy, Debug)]
pub struct FixedLatency {
    delay: SimDuration,
}

impl FixedLatency {
    /// A fixed latency of `micros` microseconds.
    pub fn new(micros: u64) -> Self {
        FixedLatency {
            delay: SimDuration::from_micros(micros),
        }
    }
}

impl LatencyModel for FixedLatency {
    fn delay<R: Rng>(&self, _from: NodeId, _to: NodeId, _rng: &mut R) -> SimDuration {
        self.delay
    }
}

/// A base delay plus uniform jitter in `0..=jitter` microseconds.
///
/// Jitter exercises the protocols' insensitivity to message ordering
/// across links (FIFO per link is still guaranteed by event ordering when
/// jitter is zero; with jitter, cross-link races become visible).
#[derive(Clone, Copy, Debug)]
pub struct JitteredLatency {
    base: u64,
    jitter: u64,
}

impl JitteredLatency {
    /// Base delay `base` µs plus uniform jitter up to `jitter` µs.
    pub fn new(base: u64, jitter: u64) -> Self {
        JitteredLatency { base, jitter }
    }
}

impl LatencyModel for JitteredLatency {
    fn delay<R: Rng>(&self, _from: NodeId, _to: NodeId, rng: &mut R) -> SimDuration {
        SimDuration::from_micros(self.base + rng.gen_range(0..=self.jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let model = FixedLatency::new(25);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            assert_eq!(
                model.delay(NodeId::new(0), NodeId::new(1), &mut rng),
                SimDuration::from_micros(25)
            );
        }
    }

    #[test]
    fn jittered_stays_in_range_and_is_seed_deterministic() {
        let model = JitteredLatency::new(10, 5);
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20)
                .map(|_| model.delay(NodeId::new(0), NodeId::new(1), &mut rng).micros())
                .collect::<Vec<_>>()
        };
        let a = draw(9);
        assert!(a.iter().all(|&d| (10..=15).contains(&d)));
        assert_eq!(a, draw(9));
    }
}
