//! Message payloads and size accounting.

use std::fmt;

/// A message payload that knows its wire size.
///
/// The simulator never serializes messages (they move between actors as
/// cloned Rust values), but the overhead experiments need byte accounting:
/// the faithful FPSS extension multiplies message traffic by forwarding
/// everything to checkers, and E8 quantifies that in bytes as well as
/// message counts.
pub trait Payload: Clone + fmt::Debug {
    /// Estimated serialized size in bytes.
    fn size_bytes(&self) -> usize;
}

impl Payload for () {
    fn size_bytes(&self) -> usize {
        0
    }
}

impl Payload for u64 {
    fn size_bytes(&self) -> usize {
        8
    }
}

impl<T: Payload> Payload for Vec<T> {
    fn size_bytes(&self) -> usize {
        8 + self.iter().map(Payload::size_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_free() {
        assert_eq!(().size_bytes(), 0);
    }

    #[test]
    fn vec_adds_header() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(v.size_bytes(), 8 + 24);
    }
}
