//! Exact integer cost and money arithmetic.
//!
//! Everything economic in this workspace — transit costs, VCG payments,
//! utilities, penalties — is integer-valued. Exactness matters beyond taste:
//! the faithful FPSS extension has checker nodes recomputing a principal's
//! tables and a bank comparing *hashes* of those tables, so the arithmetic
//! must be bit-reproducible across nodes. Floating point would make honest
//! nodes disagree.
//!
//! Two types are provided:
//!
//! * [`Cost`] — a nonnegative per-packet transit cost (`u64`), with a
//!   dedicated [`Cost::INFINITE`] sentinel for "no path".
//! * [`Money`] — a signed amount (`i64`) for payments, utilities, penalties.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A nonnegative per-packet transit cost.
///
/// Finite costs are bounded by [`Cost::MAX_FINITE`] so that sums along any
/// realistic path can never overflow and every finite cost converts to
/// [`Money`] losslessly. [`Cost::INFINITE`] represents "unreachable".
///
/// # Example
///
/// ```
/// use specfaith_core::money::Cost;
///
/// let a = Cost::new(5);
/// let b = Cost::new(7);
/// assert_eq!(a + b, Cost::new(12));
/// assert!(a + Cost::INFINITE == Cost::INFINITE);
/// assert!(Cost::new(3) < Cost::INFINITE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cost(u64);

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost(0);

    /// Largest allowed finite cost (2⁴⁰). Keeps any sum of up to ~2²³ hops
    /// within `u64`/`i64` range.
    pub const MAX_FINITE: u64 = 1 << 40;

    /// Sentinel for "no path" / unreachable. Absorbing under addition.
    pub const INFINITE: Cost = Cost(u64::MAX);

    /// Creates a finite cost.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds [`Cost::MAX_FINITE`].
    pub fn new(value: u64) -> Self {
        assert!(value <= Self::MAX_FINITE, "cost {value} exceeds MAX_FINITE");
        Cost(value)
    }

    /// Returns the raw value of a finite cost, or `None` if infinite.
    pub fn finite(self) -> Option<u64> {
        if self.is_infinite() {
            None
        } else {
            Some(self.0)
        }
    }

    /// Returns the raw value.
    ///
    /// # Panics
    ///
    /// Panics if the cost is [`Cost::INFINITE`].
    pub fn value(self) -> u64 {
        assert!(!self.is_infinite(), "value() called on Cost::INFINITE");
        self.0
    }

    /// Whether this is the unreachable sentinel.
    pub fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }

    /// Converts a finite cost into [`Money`].
    ///
    /// # Panics
    ///
    /// Panics if the cost is infinite.
    pub fn to_money(self) -> Money {
        Money::new(i64::try_from(self.value()).expect("finite cost fits in i64"))
    }

    /// Saturating-but-infinity-preserving addition, also available via `+`.
    pub fn saturating_add(self, rhs: Cost) -> Cost {
        if self.is_infinite() || rhs.is_infinite() {
            Cost::INFINITE
        } else {
            // Both operands are ≤ MAX_FINITE = 2^40, so the sum cannot wrap u64;
            // it may exceed MAX_FINITE for very long paths, which is fine for
            // comparison purposes as long as it stays below the sentinel.
            Cost(self.0 + rhs.0)
        }
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl fmt::Debug for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "Cost(∞)")
        } else {
            write!(f, "Cost({})", self.0)
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl From<u32> for Cost {
    fn from(value: u32) -> Self {
        Cost::new(u64::from(value))
    }
}

/// A signed monetary amount: payments, utilities, penalties.
///
/// Payments in this workspace are always expressed **to** an agent, so a
/// negative payment means the agent pays. Utility arithmetic is plain `i64`
/// with overflow checks in debug builds.
///
/// # Example
///
/// ```
/// use specfaith_core::money::Money;
///
/// let received = Money::new(10);
/// let cost = Money::new(4);
/// assert_eq!(received - cost, Money::new(6));
/// assert_eq!(-received, Money::new(-10));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Money(i64);

impl Money {
    /// The zero amount.
    pub const ZERO: Money = Money(0);

    /// Creates an amount.
    pub const fn new(value: i64) -> Self {
        Money(value)
    }

    /// Returns the raw signed value.
    pub const fn value(self) -> i64 {
        self.0
    }

    /// Whether the amount is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Whether the amount is strictly negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Multiplies by an integer factor (e.g. per-packet price × packet count).
    pub fn scale(self, factor: i64) -> Money {
        Money(self.0.checked_mul(factor).expect("money overflow in scale"))
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0.checked_add(rhs.0).expect("money overflow in add"))
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        *self = *self + rhs;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0.checked_sub(rhs.0).expect("money overflow in sub"))
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        *self = *self - rhs;
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(self.0.checked_neg().expect("money overflow in neg"))
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

impl fmt::Debug for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Money({})", self.0)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Cost> for Money {
    /// Converts a finite cost to money.
    ///
    /// # Panics
    ///
    /// Panics if the cost is [`Cost::INFINITE`].
    fn from(cost: Cost) -> Self {
        cost.to_money()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_addition_is_exact_for_finite() {
        assert_eq!(Cost::new(3) + Cost::new(4), Cost::new(7));
        assert_eq!(Cost::ZERO + Cost::new(9), Cost::new(9));
    }

    #[test]
    fn cost_infinity_is_absorbing() {
        assert_eq!(Cost::INFINITE + Cost::new(1), Cost::INFINITE);
        assert_eq!(Cost::new(1) + Cost::INFINITE, Cost::INFINITE);
        assert_eq!(Cost::INFINITE + Cost::INFINITE, Cost::INFINITE);
    }

    #[test]
    fn cost_infinity_compares_greater_than_any_finite() {
        assert!(Cost::new(Cost::MAX_FINITE) < Cost::INFINITE);
        assert!(Cost::ZERO < Cost::INFINITE);
    }

    #[test]
    fn cost_sum_over_iterator() {
        let total: Cost = [1u64, 2, 3, 4].into_iter().map(Cost::new).sum();
        assert_eq!(total, Cost::new(10));
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_FINITE")]
    fn cost_rejects_values_colliding_with_sentinel() {
        let _ = Cost::new(u64::MAX);
    }

    #[test]
    #[should_panic(expected = "value() called on Cost::INFINITE")]
    fn cost_value_panics_on_infinite() {
        let _ = Cost::INFINITE.value();
    }

    #[test]
    fn cost_finite_accessor() {
        assert_eq!(Cost::new(5).finite(), Some(5));
        assert_eq!(Cost::INFINITE.finite(), None);
    }

    #[test]
    fn money_arithmetic() {
        let a = Money::new(10);
        let b = Money::new(-4);
        assert_eq!(a + b, Money::new(6));
        assert_eq!(a - b, Money::new(14));
        assert_eq!(-b, Money::new(4));
        assert_eq!(b.scale(3), Money::new(-12));
    }

    #[test]
    fn money_sum_and_signs() {
        let total: Money = [1i64, -2, 3].into_iter().map(Money::new).sum();
        assert_eq!(total, Money::new(2));
        assert!(Money::new(1).is_positive());
        assert!(Money::new(-1).is_negative());
        assert!(!Money::ZERO.is_positive() && !Money::ZERO.is_negative());
    }

    #[test]
    fn cost_to_money_roundtrip() {
        assert_eq!(Cost::new(42).to_money(), Money::new(42));
        assert_eq!(Money::from(Cost::new(7)), Money::new(7));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cost::new(5).to_string(), "5");
        assert_eq!(Cost::INFINITE.to_string(), "∞");
        assert_eq!(Money::new(-3).to_string(), "-3");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Cost addition is commutative and associative, with infinity
        /// absorbing — the semiring laws the LCP computation relies on.
        #[test]
        fn cost_addition_laws(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
            let (a, b, c) = (Cost::new(a), Cost::new(b), Cost::new(c));
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!(a + Cost::ZERO, a);
            prop_assert_eq!(a + Cost::INFINITE, Cost::INFINITE);
        }

        /// Adding a cost never decreases it (monotonicity under extension).
        #[test]
        fn cost_addition_is_monotone(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let (a, b) = (Cost::new(a), Cost::new(b));
            prop_assert!(a + b >= a);
            prop_assert!(a + b >= b);
        }

        /// Money forms an ordered abelian group under the tested range.
        #[test]
        fn money_group_laws(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
            let (ma, mb) = (Money::new(a), Money::new(b));
            prop_assert_eq!(ma + mb, mb + ma);
            prop_assert_eq!(ma + Money::ZERO, ma);
            prop_assert_eq!(ma - ma, Money::ZERO);
            prop_assert_eq!(-(-ma), ma);
            prop_assert_eq!((ma + mb) - mb, ma);
            // Order is translation-invariant.
            if ma < mb {
                prop_assert!(ma + Money::new(7) < mb + Money::new(7));
            }
        }

        /// Scaling distributes over addition.
        #[test]
        fn money_scaling(a in -10_000i64..10_000, b in -10_000i64..10_000, k in -100i64..100) {
            let (ma, mb) = (Money::new(a), Money::new(b));
            prop_assert_eq!((ma + mb).scale(k), ma.scale(k) + mb.scale(k));
            prop_assert_eq!(ma.scale(1), ma);
            prop_assert_eq!(ma.scale(0), Money::ZERO);
        }
    }
}
