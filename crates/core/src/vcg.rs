//! Generic Vickrey–Clarke–Groves payments for cost-minimization problems.
//!
//! FPSS pays transit nodes "based on the utility that they bring to the
//! routing system plus their declared cost" — the Clarke pivot rule for a
//! procurement (cost-minimization) setting:
//!
//! ```text
//! paymentᵢ = declared_costᵢ(alloc) + [ opt_cost_without_i − opt_cost ]
//! ```
//!
//! This module implements that rule once, generically, over any
//! [`CostMinimizationProblem`]. The FPSS per-pair payment
//! `pᵏᵢⱼ = cₖ + d_{G−k}(i,j) − d_G(i,j)` is an instance (path procurement);
//! so is the Vickrey second-price selection used by the leader-election
//! example (§3's motivating scenario).

use crate::mechanism::DirectMechanism;
use crate::money::Money;
use std::fmt;

/// A cost-minimization (procurement) problem suitable for VCG.
///
/// The designer picks the allocation minimizing **declared** total cost;
/// excluded-agent optima define the Clarke pivot terms.
pub trait CostMinimizationProblem {
    /// Per-agent declaration (e.g. a declared transit cost).
    type Decl: Clone + fmt::Debug;
    /// An allocation (e.g. a chosen path, or a selected leader).
    type Alloc: Clone + fmt::Debug;

    /// Number of agents.
    fn num_agents(&self) -> usize;

    /// The allocation minimizing total declared cost, with that total.
    /// `None` if the problem is infeasible.
    fn optimal(&self, decls: &[Self::Decl]) -> Option<(Self::Alloc, Money)>;

    /// The optimal allocation when `excluded` may not participate.
    /// `None` if infeasible without that agent (VCG then being ill-defined —
    /// the reason FPSS assumes a biconnected graph).
    fn optimal_excluding(
        &self,
        decls: &[Self::Decl],
        excluded: usize,
    ) -> Option<(Self::Alloc, Money)>;

    /// The cost agent `agent` incurs under `alloc`, priced by the given
    /// declaration (pass the agent's declaration for declared cost, or its
    /// true type for true cost).
    fn cost_under(&self, decl: &Self::Decl, alloc: &Self::Alloc, agent: usize) -> Money;

    /// Whether `agent` plays a costly role in `alloc` (is on the chosen
    /// path, is the selected leader, ...). Non-participants receive zero
    /// payment; participants receive the Clarke pivot payment even when
    /// their declared cost is zero.
    fn participates(&self, alloc: &Self::Alloc, agent: usize) -> bool;
}

/// Result of running VCG on a [`CostMinimizationProblem`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VcgOutcome<A> {
    /// The cost-minimizing allocation under declared costs.
    pub allocation: A,
    /// Total declared cost of that allocation.
    pub total_declared_cost: Money,
    /// VCG payment **to** each agent.
    pub payments: Vec<Money>,
}

/// Errors from [`vcg`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VcgError {
    /// No feasible allocation exists at all.
    Infeasible,
    /// Removing this agent makes the problem infeasible, so its Clarke
    /// pivot payment is undefined (FPSS avoids this via biconnectivity).
    PivotalMonopoly {
        /// The agent whose exclusion is infeasible.
        agent: usize,
    },
}

impl fmt::Display for VcgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcgError::Infeasible => f.write_str("no feasible allocation"),
            VcgError::PivotalMonopoly { agent } => {
                write!(f, "agent {agent} is a monopoly: exclusion is infeasible")
            }
        }
    }
}

impl std::error::Error for VcgError {}

/// Computes the VCG (Clarke pivot) outcome for a cost-minimization problem.
///
/// # Errors
///
/// Returns [`VcgError::Infeasible`] when no allocation exists, and
/// [`VcgError::PivotalMonopoly`] when an agent that incurs cost in the
/// optimum cannot be excluded feasibly.
pub fn vcg<P: CostMinimizationProblem>(
    problem: &P,
    decls: &[P::Decl],
) -> Result<VcgOutcome<P::Alloc>, VcgError> {
    assert_eq!(decls.len(), problem.num_agents(), "declaration arity");
    let (allocation, total) = problem.optimal(decls).ok_or(VcgError::Infeasible)?;
    let mut payments = Vec::with_capacity(decls.len());
    for agent in 0..decls.len() {
        if !problem.participates(&allocation, agent) {
            // Agent plays no role in the optimum: it is paid nothing.
            // (FPSS pays only transit nodes actually on the LCP.)
            payments.push(Money::ZERO);
            continue;
        }
        let declared = problem.cost_under(&decls[agent], &allocation, agent);
        let (_, total_without) = problem
            .optimal_excluding(decls, agent)
            .ok_or(VcgError::PivotalMonopoly { agent })?;
        payments.push(declared + (total_without - total));
    }
    Ok(VcgOutcome {
        allocation,
        total_declared_cost: total,
        payments,
    })
}

/// A VCG mechanism viewed as a centralized [`DirectMechanism`], for use with
/// the strategyproofness tester.
///
/// Valuation is the negated **true** cost incurred under the chosen
/// allocation, making utility `paymentᵢ − true_costᵢ`.
#[derive(Clone, Debug)]
pub struct VcgMechanism<P> {
    problem: P,
}

impl<P: CostMinimizationProblem> VcgMechanism<P> {
    /// Wraps a problem.
    pub fn new(problem: P) -> Self {
        VcgMechanism { problem }
    }

    /// The wrapped problem.
    pub fn problem(&self) -> &P {
        &self.problem
    }
}

impl<P: CostMinimizationProblem> DirectMechanism for VcgMechanism<P> {
    type Type = P::Decl;
    type Outcome = VcgOutcome<P::Alloc>;

    fn num_agents(&self) -> usize {
        self.problem.num_agents()
    }

    fn outcome(&self, reports: &[P::Decl]) -> VcgOutcome<P::Alloc> {
        vcg(&self.problem, reports).expect("VCG outcome must be well-defined on tested profiles")
    }

    fn payments(&self, _reports: &[P::Decl], outcome: &VcgOutcome<P::Alloc>) -> Vec<Money> {
        outcome.payments.clone()
    }

    fn valuation(
        &self,
        agent: usize,
        true_type: &P::Decl,
        outcome: &VcgOutcome<P::Alloc>,
    ) -> Money {
        -self
            .problem
            .cost_under(true_type, &outcome.allocation, agent)
    }
}

/// The paper's §3 leader-election scenario as a procurement problem: each
/// node declares its cost of serving (inverse of "computational power");
/// the lowest-cost node is selected and compensated at the second-lowest
/// declared cost — a Vickrey auction.
#[derive(Clone, Debug)]
pub struct SelectionProblem {
    n: usize,
}

impl SelectionProblem {
    /// A selection among `n ≥ 2` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (VCG needs an excluded-agent optimum).
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "selection needs at least two candidates");
        SelectionProblem { n }
    }

    fn argmin(decls: &[Money], skip: Option<usize>) -> Option<(usize, Money)> {
        decls
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != skip)
            .min_by_key(|(i, c)| (**c, *i))
            .map(|(i, c)| (i, *c))
    }
}

impl CostMinimizationProblem for SelectionProblem {
    type Decl = Money;
    /// The selected leader.
    type Alloc = usize;

    fn num_agents(&self) -> usize {
        self.n
    }

    fn optimal(&self, decls: &[Money]) -> Option<(usize, Money)> {
        Self::argmin(decls, None)
    }

    fn optimal_excluding(&self, decls: &[Money], excluded: usize) -> Option<(usize, Money)> {
        Self::argmin(decls, Some(excluded))
    }

    fn cost_under(&self, decl: &Money, alloc: &usize, agent: usize) -> Money {
        if *alloc == agent {
            *decl
        } else {
            Money::ZERO
        }
    }

    fn participates(&self, alloc: &usize, agent: usize) -> bool {
        *alloc == agent
    }
}

/// Vickrey (second-price) selection: the ready-made leader-election
/// mechanism. See [`SelectionProblem`].
///
/// # Example
///
/// ```
/// use specfaith_core::vcg::SecondPriceSelection;
/// use specfaith_core::mechanism::DirectMechanism;
/// use specfaith_core::money::Money;
///
/// let mech = SecondPriceSelection::new(3);
/// let reports = vec![Money::new(4), Money::new(9), Money::new(6)];
/// let outcome = mech.outcome(&reports);
/// assert_eq!(outcome.allocation, 0);                   // lowest cost wins
/// assert_eq!(outcome.payments[0], Money::new(6));      // paid second price
/// ```
#[derive(Clone, Debug)]
pub struct SecondPriceSelection {
    inner: VcgMechanism<SelectionProblem>,
}

impl SecondPriceSelection {
    /// A Vickrey selection among `n ≥ 2` agents.
    pub fn new(n: usize) -> Self {
        SecondPriceSelection {
            inner: VcgMechanism::new(SelectionProblem::new(n)),
        }
    }
}

impl DirectMechanism for SecondPriceSelection {
    type Type = Money;
    type Outcome = VcgOutcome<usize>;

    fn num_agents(&self) -> usize {
        self.inner.num_agents()
    }

    fn outcome(&self, reports: &[Money]) -> VcgOutcome<usize> {
        self.inner.outcome(reports)
    }

    fn payments(&self, reports: &[Money], outcome: &VcgOutcome<usize>) -> Vec<Money> {
        self.inner.payments(reports, outcome)
    }

    fn valuation(&self, agent: usize, true_type: &Money, outcome: &VcgOutcome<usize>) -> Money {
        self.inner.valuation(agent, true_type, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{check_strategyproof, MisreportGrid};

    #[test]
    fn vickrey_winner_paid_second_price() {
        let problem = SelectionProblem::new(4);
        let decls = vec![Money::new(7), Money::new(3), Money::new(5), Money::new(11)];
        let outcome = vcg(&problem, &decls).expect("feasible");
        assert_eq!(outcome.allocation, 1);
        assert_eq!(outcome.total_declared_cost, Money::new(3));
        assert_eq!(
            outcome.payments,
            vec![Money::ZERO, Money::new(5), Money::ZERO, Money::ZERO]
        );
    }

    #[test]
    fn vickrey_tie_breaks_by_lowest_index() {
        let problem = SelectionProblem::new(3);
        let decls = vec![Money::new(4), Money::new(4), Money::new(9)];
        let outcome = vcg(&problem, &decls).expect("feasible");
        assert_eq!(outcome.allocation, 0);
        // Second price equals the tied declaration: winner paid 4, net 0.
        assert_eq!(outcome.payments[0], Money::new(4));
    }

    #[test]
    fn vickrey_is_strategyproof_on_grid() {
        let mech = SecondPriceSelection::new(3);
        let profiles = vec![
            vec![Money::new(10), Money::new(7), Money::new(3)],
            vec![Money::new(5), Money::new(5), Money::new(9)],
            vec![Money::new(1), Money::new(2), Money::new(2)],
            vec![Money::new(0), Money::new(100), Money::new(50)],
        ];
        let report = check_strategyproof(&mech, &profiles, &MisreportGrid::standard());
        assert!(report.is_strategyproof(), "{report}");
    }

    #[test]
    fn winner_utility_is_marginal_contribution() {
        // Winner's utility = second price − true cost > 0 when strictly best.
        let mech = SecondPriceSelection::new(2);
        let profile = vec![Money::new(3), Money::new(8)];
        let u0 = mech.utility(0, &profile[0], &profile);
        assert_eq!(u0, Money::new(5));
        let u1 = mech.utility(1, &profile[1], &profile);
        assert_eq!(u1, Money::ZERO);
    }

    /// A problem where one agent is a monopoly: excluding it is infeasible.
    struct Monopoly;

    impl CostMinimizationProblem for Monopoly {
        type Decl = Money;
        type Alloc = usize;

        fn num_agents(&self) -> usize {
            2
        }

        fn optimal(&self, decls: &[Money]) -> Option<(usize, Money)> {
            Some((0, decls[0]))
        }

        fn optimal_excluding(&self, decls: &[Money], excluded: usize) -> Option<(usize, Money)> {
            if excluded == 0 {
                None
            } else {
                Some((0, decls[0]))
            }
        }

        fn cost_under(&self, decl: &Money, alloc: &usize, agent: usize) -> Money {
            if *alloc == agent {
                *decl
            } else {
                Money::ZERO
            }
        }

        fn participates(&self, alloc: &usize, agent: usize) -> bool {
            *alloc == agent
        }
    }

    #[test]
    fn monopoly_is_reported() {
        let err = vcg(&Monopoly, &[Money::new(5), Money::new(1)]).unwrap_err();
        assert_eq!(err, VcgError::PivotalMonopoly { agent: 0 });
        assert!(err.to_string().contains("monopoly"));
    }

    #[test]
    fn zero_cost_agents_are_paid_nothing() {
        let problem = SelectionProblem::new(3);
        let decls = vec![Money::new(2), Money::new(4), Money::new(6)];
        let outcome = vcg(&problem, &decls).expect("feasible");
        assert_eq!(outcome.payments[1], Money::ZERO);
        assert_eq!(outcome.payments[2], Money::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least two candidates")]
    fn selection_rejects_singleton() {
        let _ = SelectionProblem::new(1);
    }
}
