//! Node identities.
//!
//! Every participant in a distributed mechanism — autonomous systems in the
//! FPSS routing case study, voters in a leader election, the bank — is
//! identified by a dense small integer wrapped in [`NodeId`] for type safety.

use std::fmt;

/// Identity of a node (agent) in a distributed mechanism.
///
/// `NodeId` is a dense index: topologies with `n` nodes use ids `0..n`.
/// The wrapper prevents accidentally mixing node ids with other integers
/// (counts, costs, sequence numbers).
///
/// # Example
///
/// ```
/// use specfaith_core::id::NodeId;
///
/// let a = NodeId::new(0);
/// let b = NodeId::new(3);
/// assert!(a < b);
/// assert_eq!(b.index(), 3);
/// assert_eq!(b.to_string(), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Returns the raw index, usable for direct vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Creates a node id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

/// Iterator over the node ids `0..n`, in increasing order.
///
/// # Example
///
/// ```
/// use specfaith_core::id::{node_ids, NodeId};
///
/// let ids: Vec<NodeId> = node_ids(3).collect();
/// assert_eq!(ids, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
/// ```
pub fn node_ids(n: usize) -> impl Iterator<Item = NodeId> + Clone {
    (0..u32::try_from(n).expect("node count exceeds u32 range")).map(NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ordering_follows_raw_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(NodeId::new(7) > NodeId::new(0));
        assert_eq!(NodeId::new(4), NodeId::new(4));
    }

    #[test]
    fn roundtrip_index() {
        for i in [0usize, 1, 17, 65_535] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_and_debug_are_compact() {
        let id = NodeId::new(12);
        assert_eq!(format!("{id}"), "n12");
        assert_eq!(format!("{id:?}"), "n12");
    }

    #[test]
    fn node_ids_is_dense_and_sorted() {
        let ids: Vec<NodeId> = node_ids(5).collect();
        assert_eq!(ids.len(), 5);
        let set: BTreeSet<NodeId> = ids.iter().copied().collect();
        assert_eq!(set.len(), 5);
        assert_eq!(ids.first(), Some(&NodeId::new(0)));
        assert_eq!(ids.last(), Some(&NodeId::new(4)));
    }

    #[test]
    fn conversions_from_u32() {
        let id: NodeId = 9u32.into();
        assert_eq!(u32::from(id), 9);
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32 range")]
    fn from_index_rejects_huge() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }
}
