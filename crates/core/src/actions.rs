//! External-action classification (paper §3.4) and deviation surfaces.
//!
//! A node's suggested strategy `sᵐᵢ` decomposes into three sub-strategies
//! `(rᵐᵢ, pᵐᵢ, cᵐᵢ)`: information revelation, message passing, and
//! computation. Every externally visible action of a node belongs to exactly
//! one of these classes (Definitions 2–4), and the compatibility properties
//! IC / CC / AC (Definitions 9–11) quantify over deviations in exactly one
//! class. The *strong* variants (Definitions 12–13) quantify over deviations
//! in one class **jointly with arbitrary behavior in the others**, which is
//! why deviation strategies carry a [`DeviationSurface`] naming every class
//! they touch.

use std::fmt;

/// The classes of external action a node can take (Definitions 2–4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ExternalActionKind {
    /// Reveals (possibly partial, possibly untruthful, but *consistent*)
    /// information about the node's own type to other nodes — e.g. declaring
    /// a transit cost, or announcing adjacency (semi-private type).
    InformationRevelation,
    /// Forwards a message received from another node to one or more
    /// neighbors, unmodified — e.g. relaying a routing update to checkers.
    MessagePassing,
    /// Any external action that can affect the outcome rule beyond
    /// revelation or forwarding — e.g. recomputing and announcing routing or
    /// pricing tables, or reporting payment tallies.
    Computation,
}

impl ExternalActionKind {
    /// All three classes, in a fixed order.
    pub const ALL: [ExternalActionKind; 3] = [
        ExternalActionKind::InformationRevelation,
        ExternalActionKind::MessagePassing,
        ExternalActionKind::Computation,
    ];

    /// The compatibility property whose proof obligation covers deviations
    /// of this kind (Definitions 9–11).
    pub fn compatibility(self) -> CompatibilityKind {
        match self {
            ExternalActionKind::InformationRevelation => CompatibilityKind::Incentive,
            ExternalActionKind::MessagePassing => CompatibilityKind::Communication,
            ExternalActionKind::Computation => CompatibilityKind::Algorithm,
        }
    }
}

impl fmt::Display for ExternalActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExternalActionKind::InformationRevelation => "information-revelation",
            ExternalActionKind::MessagePassing => "message-passing",
            ExternalActionKind::Computation => "computation",
        };
        f.write_str(s)
    }
}

/// The compatibility properties of a distributed mechanism specification
/// (Definitions 9–11): a specification faithful in all three, in the same
/// ex post Nash equilibrium, is a faithful implementation (Proposition 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CompatibilityKind {
    /// IC — no profitable deviation from the suggested
    /// information-revelation strategy `rᵐᵢ`.
    Incentive,
    /// CC — no profitable deviation from the suggested message-passing
    /// strategy `pᵐᵢ`.
    Communication,
    /// AC — no profitable deviation from the suggested computational
    /// strategy `cᵐᵢ`.
    Algorithm,
}

impl CompatibilityKind {
    /// All three properties, in a fixed order.
    pub const ALL: [CompatibilityKind; 3] = [
        CompatibilityKind::Incentive,
        CompatibilityKind::Communication,
        CompatibilityKind::Algorithm,
    ];

    /// Short conventional abbreviation (IC / CC / AC).
    pub fn abbrev(self) -> &'static str {
        match self {
            CompatibilityKind::Incentive => "IC",
            CompatibilityKind::Communication => "CC",
            CompatibilityKind::Algorithm => "AC",
        }
    }
}

impl fmt::Display for CompatibilityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// The set of action classes a deviation strategy touches.
///
/// Strong-CC must rule out deviations whose surface includes
/// `MessagePassing` *regardless* of what else is in the surface; likewise
/// strong-AC for `Computation`. A joint deviation (the paper's "any
/// combination of deviation") simply has more than one class set.
///
/// # Example
///
/// ```
/// use specfaith_core::actions::{DeviationSurface, ExternalActionKind};
///
/// let s = DeviationSurface::new()
///     .with(ExternalActionKind::MessagePassing)
///     .with(ExternalActionKind::Computation);
/// assert!(s.touches(ExternalActionKind::MessagePassing));
/// assert!(s.is_joint());
/// assert_eq!(s.to_string(), "message-passing+computation");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DeviationSurface {
    bits: u8,
}

impl DeviationSurface {
    /// The empty surface (an internal-only deviation; harmless by
    /// definition since internal actions generate no messages).
    pub fn new() -> Self {
        DeviationSurface { bits: 0 }
    }

    /// A surface touching exactly one class.
    pub fn only(kind: ExternalActionKind) -> Self {
        DeviationSurface::new().with(kind)
    }

    /// A surface touching every class.
    pub fn all() -> Self {
        ExternalActionKind::ALL
            .into_iter()
            .fold(DeviationSurface::new(), DeviationSurface::with)
    }

    fn bit(kind: ExternalActionKind) -> u8 {
        match kind {
            ExternalActionKind::InformationRevelation => 1,
            ExternalActionKind::MessagePassing => 2,
            ExternalActionKind::Computation => 4,
        }
    }

    /// Returns a surface additionally touching `kind`.
    #[must_use]
    pub fn with(self, kind: ExternalActionKind) -> Self {
        DeviationSurface {
            bits: self.bits | Self::bit(kind),
        }
    }

    /// Whether the surface touches `kind`.
    pub fn touches(self, kind: ExternalActionKind) -> bool {
        self.bits & Self::bit(kind) != 0
    }

    /// Whether more than one class is touched (a joint deviation).
    pub fn is_joint(self) -> bool {
        self.bits.count_ones() > 1
    }

    /// Whether no class is touched.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Iterates over the touched classes in declaration order.
    pub fn kinds(self) -> impl Iterator<Item = ExternalActionKind> {
        ExternalActionKind::ALL
            .into_iter()
            .filter(move |k| self.touches(*k))
    }

    /// The compatibility properties this surface puts at risk.
    pub fn compatibilities(self) -> impl Iterator<Item = CompatibilityKind> {
        self.kinds().map(ExternalActionKind::compatibility)
    }
}

impl fmt::Debug for DeviationSurface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DeviationSurface({self})")
    }
}

impl fmt::Display for DeviationSurface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("internal-only");
        }
        let mut first = true;
        for kind in self.kinds() {
            if !first {
                f.write_str("+")?;
            }
            write!(f, "{kind}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<ExternalActionKind> for DeviationSurface {
    fn from_iter<T: IntoIterator<Item = ExternalActionKind>>(iter: T) -> Self {
        iter.into_iter()
            .fold(DeviationSurface::new(), DeviationSurface::with)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_maps_to_compatibility() {
        assert_eq!(
            ExternalActionKind::InformationRevelation.compatibility(),
            CompatibilityKind::Incentive
        );
        assert_eq!(
            ExternalActionKind::MessagePassing.compatibility(),
            CompatibilityKind::Communication
        );
        assert_eq!(
            ExternalActionKind::Computation.compatibility(),
            CompatibilityKind::Algorithm
        );
    }

    #[test]
    fn empty_surface_touches_nothing() {
        let s = DeviationSurface::new();
        assert!(s.is_empty());
        assert!(!s.is_joint());
        for k in ExternalActionKind::ALL {
            assert!(!s.touches(k));
        }
        assert_eq!(s.to_string(), "internal-only");
    }

    #[test]
    fn single_surface_is_not_joint() {
        let s = DeviationSurface::only(ExternalActionKind::Computation);
        assert!(s.touches(ExternalActionKind::Computation));
        assert!(!s.touches(ExternalActionKind::MessagePassing));
        assert!(!s.is_joint());
    }

    #[test]
    fn joint_surface_detection() {
        let s: DeviationSurface = [
            ExternalActionKind::InformationRevelation,
            ExternalActionKind::Computation,
        ]
        .into_iter()
        .collect();
        assert!(s.is_joint());
        let kinds: Vec<_> = s.kinds().collect();
        assert_eq!(
            kinds,
            vec![
                ExternalActionKind::InformationRevelation,
                ExternalActionKind::Computation
            ]
        );
    }

    #[test]
    fn all_surface_touches_everything() {
        let s = DeviationSurface::all();
        for k in ExternalActionKind::ALL {
            assert!(s.touches(k));
        }
        assert_eq!(s.compatibilities().count(), 3);
    }

    #[test]
    fn with_is_idempotent() {
        let s = DeviationSurface::only(ExternalActionKind::MessagePassing)
            .with(ExternalActionKind::MessagePassing);
        assert!(!s.is_joint());
    }

    #[test]
    fn display_joins_kinds() {
        let s = DeviationSurface::all();
        assert_eq!(
            s.to_string(),
            "information-revelation+message-passing+computation"
        );
    }

    #[test]
    fn abbreviations() {
        assert_eq!(CompatibilityKind::Incentive.abbrev(), "IC");
        assert_eq!(CompatibilityKind::Communication.abbrev(), "CC");
        assert_eq!(CompatibilityKind::Algorithm.abbrev(), "AC");
    }
}
