//! Ex post Nash deviation testing (Definitions 6–8).
//!
//! A strategy profile `s*` is an **ex post Nash equilibrium** when no agent
//! can strictly improve its utility by unilateral deviation, *for all type
//! profiles* of the other agents. A distributed mechanism specification is
//! a **faithful implementation** when the suggested strategy `sᵐ` is such an
//! equilibrium (Definition 8).
//!
//! This module turns that definition into an empirical test: given
//!
//! * a simulator (any closure that plays the game and returns realized
//!   utilities),
//! * a library of deviation strategies, each tagged with the action-classes
//!   it touches (its [`DeviationSurface`]) and the phase it attacks,
//!
//! [`test_deviations`] plays the faithful profile once and then each
//! `(agent, deviation)` unilateral deviation, recording whether any
//! deviation was strictly profitable. Repeating the test over many sampled
//! type profiles (see [`EquilibriumSuite`]) is the computational analogue of
//! the paper's "for all θ" quantifier.
//!
//! Per Remark 1, a *weak* equilibrium suffices: agents are benevolent and
//! follow the suggested strategy unless some deviation is **strictly**
//! better.

use crate::actions::{CompatibilityKind, DeviationSurface, ExternalActionKind};
use crate::money::Money;
use std::fmt;

/// A named deviation strategy in the tested library.
///
/// # Example
///
/// ```
/// use specfaith_core::equilibrium::DeviationSpec;
/// use specfaith_core::actions::{DeviationSurface, ExternalActionKind};
///
/// let spec = DeviationSpec::new(
///     "drop-routing-forward",
///     DeviationSurface::only(ExternalActionKind::MessagePassing),
/// )
/// .in_phase("construction-2");
/// assert_eq!(spec.phase(), Some("construction-2"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviationSpec {
    name: String,
    surface: DeviationSurface,
    phase: Option<String>,
}

impl DeviationSpec {
    /// Creates a deviation description.
    pub fn new(name: impl Into<String>, surface: DeviationSurface) -> Self {
        DeviationSpec {
            name: name.into(),
            surface,
            phase: None,
        }
    }

    /// Tags the deviation with the mechanism phase it attacks (§3.9's
    /// decomposition assigns each proof obligation to a phase).
    #[must_use]
    pub fn in_phase(mut self, phase: impl Into<String>) -> Self {
        self.phase = Some(phase.into());
        self
    }

    /// The deviation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The action classes the deviation touches.
    pub fn surface(&self) -> DeviationSurface {
        self.surface
    }

    /// The phase the deviation attacks, if tagged.
    pub fn phase(&self) -> Option<&str> {
        self.phase.as_deref()
    }
}

impl fmt::Display for DeviationSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.surface)?;
        if let Some(phase) = &self.phase {
            write!(f, " @{phase}")?;
        }
        Ok(())
    }
}

/// Utilities realized when one agent deviated, compared with the faithful
/// baseline.
///
/// `PartialEq`/`Eq` compare every field exactly — that is what lets the
/// scenario sweep assert parallel results are identical to serial ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviationOutcome {
    /// The deviating agent.
    pub agent: usize,
    /// Which deviation was played.
    pub deviation: DeviationSpec,
    /// The deviator's utility in the all-faithful run.
    pub faithful_utility: Money,
    /// The deviator's utility in the deviant run.
    pub deviant_utility: Money,
    /// Whether the mechanism's enforcement layer flagged the deviation
    /// (bank restart, penalty, MAC rejection, ...). Purely diagnostic:
    /// profitability is what decides equilibrium.
    pub detected: bool,
}

impl DeviationOutcome {
    /// Whether the deviation strictly improved the deviator (an equilibrium
    /// violation under the weak/benevolent convention of Remark 1).
    pub fn strictly_profitable(&self) -> bool {
        self.deviant_utility > self.faithful_utility
    }

    /// Deviator's gain (negative when the deviation hurt it).
    pub fn gain(&self) -> Money {
        self.deviant_utility - self.faithful_utility
    }
}

/// The result of testing one type profile: the faithful utility vector and
/// one [`DeviationOutcome`] per `(agent, deviation)` pair.
///
/// Equality is exact, field by field (see [`DeviationOutcome`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EquilibriumReport {
    /// Utilities in the all-faithful run.
    pub faithful_utilities: Vec<Money>,
    /// One entry per unilateral deviation tested.
    pub outcomes: Vec<DeviationOutcome>,
}

impl EquilibriumReport {
    /// Whether no tested deviation was strictly profitable — the suggested
    /// strategy is a (weak) best response on this profile.
    pub fn is_ex_post_nash(&self) -> bool {
        self.outcomes.iter().all(|o| !o.strictly_profitable())
    }

    /// Every strictly profitable deviation found.
    pub fn violations(&self) -> impl Iterator<Item = &DeviationOutcome> {
        self.outcomes.iter().filter(|o| o.strictly_profitable())
    }

    /// Whether every deviation *risking* the given compatibility property
    /// (i.e. whose surface touches the corresponding action class, possibly
    /// jointly with others — the "strong" quantifier of Definitions 12–13)
    /// was unprofitable.
    pub fn holds_for(&self, kind: CompatibilityKind) -> bool {
        let action = match kind {
            CompatibilityKind::Incentive => ExternalActionKind::InformationRevelation,
            CompatibilityKind::Communication => ExternalActionKind::MessagePassing,
            CompatibilityKind::Algorithm => ExternalActionKind::Computation,
        };
        self.outcomes
            .iter()
            .filter(|o| o.deviation.surface().touches(action))
            .all(|o| !o.strictly_profitable())
    }

    /// Strong-CC (Definition 12) on this profile: no profitable deviation
    /// that touches message-passing, whatever else it touches.
    pub fn strong_cc_holds(&self) -> bool {
        self.holds_for(CompatibilityKind::Communication)
    }

    /// Strong-AC (Definition 13) on this profile: no profitable deviation
    /// that touches computation, whatever else it touches.
    pub fn strong_ac_holds(&self) -> bool {
        self.holds_for(CompatibilityKind::Algorithm)
    }

    /// IC (Definition 9) restricted to the tested library: no profitable
    /// deviation touching information revelation.
    pub fn ic_holds(&self) -> bool {
        self.holds_for(CompatibilityKind::Incentive)
    }

    /// Fraction of tested deviations flagged by the enforcement layer.
    /// `None` when no deviations were tested.
    pub fn detection_rate(&self) -> Option<f64> {
        if self.outcomes.is_empty() {
            return None;
        }
        let detected = self.outcomes.iter().filter(|o| o.detected).count();
        Some(detected as f64 / self.outcomes.len() as f64)
    }
}

impl fmt::Display for EquilibriumReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} deviations tested; ex post Nash: {}",
            self.outcomes.len(),
            self.is_ex_post_nash()
        )?;
        for v in self.violations() {
            writeln!(
                f,
                "  VIOLATION: agent {} gains {} via {}",
                v.agent,
                v.gain(),
                v.deviation
            )?;
        }
        Ok(())
    }
}

/// Plays the faithful profile and every unilateral `(agent, deviation)`
/// pair, producing an [`EquilibriumReport`].
///
/// `play(None)` must run the all-faithful profile;
/// `play(Some((agent, spec)))` must run the game with only `agent`
/// deviating according to `spec`. Both return `(utilities, detected)`,
/// where `detected` reports whether enforcement flagged a deviation.
///
/// # Panics
///
/// Panics if `play` returns a utility vector whose length differs from
/// `num_agents`.
pub fn test_deviations(
    num_agents: usize,
    deviations: &[DeviationSpec],
    mut play: impl FnMut(Option<(usize, &DeviationSpec)>) -> (Vec<Money>, bool),
) -> EquilibriumReport {
    let (faithful_utilities, _) = play(None);
    assert_eq!(
        faithful_utilities.len(),
        num_agents,
        "faithful run returned wrong number of utilities"
    );
    let mut outcomes = Vec::with_capacity(num_agents * deviations.len());
    for agent in 0..num_agents {
        for spec in deviations {
            let (utilities, detected) = play(Some((agent, spec)));
            assert_eq!(
                utilities.len(),
                num_agents,
                "deviant run returned wrong number of utilities"
            );
            outcomes.push(DeviationOutcome {
                agent,
                deviation: spec.clone(),
                faithful_utility: faithful_utilities[agent],
                deviant_utility: utilities[agent],
                detected,
            });
        }
    }
    EquilibriumReport {
        faithful_utilities,
        outcomes,
    }
}

/// A collection of [`EquilibriumReport`]s across sampled type profiles —
/// the empirical stand-in for the paper's "for all θ" quantifier.
#[derive(Clone, Debug, Default)]
pub struct EquilibriumSuite {
    reports: Vec<(String, EquilibriumReport)>,
}

impl EquilibriumSuite {
    /// An empty suite.
    pub fn new() -> Self {
        EquilibriumSuite::default()
    }

    /// Adds a labeled profile's report.
    pub fn push(&mut self, label: impl Into<String>, report: EquilibriumReport) {
        self.reports.push((label.into(), report));
    }

    /// The per-profile reports.
    pub fn reports(&self) -> &[(String, EquilibriumReport)] {
        &self.reports
    }

    /// Ex post Nash across every tested profile.
    pub fn is_ex_post_nash(&self) -> bool {
        self.reports.iter().all(|(_, r)| r.is_ex_post_nash())
    }

    /// Strong-CC across every profile.
    pub fn strong_cc_holds(&self) -> bool {
        self.reports.iter().all(|(_, r)| r.strong_cc_holds())
    }

    /// Strong-AC across every profile.
    pub fn strong_ac_holds(&self) -> bool {
        self.reports.iter().all(|(_, r)| r.strong_ac_holds())
    }

    /// IC across every profile.
    pub fn ic_holds(&self) -> bool {
        self.reports.iter().all(|(_, r)| r.ic_holds())
    }

    /// Total deviations tested.
    pub fn total_deviations(&self) -> usize {
        self.reports.iter().map(|(_, r)| r.outcomes.len()).sum()
    }

    /// All violations across profiles, with their profile labels.
    pub fn violations(&self) -> impl Iterator<Item = (&str, &DeviationOutcome)> {
        self.reports
            .iter()
            .flat_map(|(label, r)| r.violations().map(move |v| (label.as_str(), v)))
    }

    /// Overall detection rate across profiles. `None` if nothing tested.
    pub fn detection_rate(&self) -> Option<f64> {
        let total = self.total_deviations();
        if total == 0 {
            return None;
        }
        let detected: usize = self
            .reports
            .iter()
            .map(|(_, r)| r.outcomes.iter().filter(|o| o.detected).count())
            .sum();
        Some(detected as f64 / total as f64)
    }
}

impl fmt::Display for EquilibriumSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} profiles, {} deviations; ex post Nash: {}, strong-CC: {}, strong-AC: {}, IC: {}",
            self.reports.len(),
            self.total_deviations(),
            self.is_ex_post_nash(),
            self.strong_cc_holds(),
            self.strong_ac_holds(),
            self.ic_holds()
        )?;
        for (label, v) in self.violations() {
            writeln!(
                f,
                "  VIOLATION [{label}]: agent {} gains {} via {}",
                v.agent,
                v.gain(),
                v.deviation
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mp_spec(name: &str) -> DeviationSpec {
        DeviationSpec::new(
            name,
            DeviationSurface::only(ExternalActionKind::MessagePassing),
        )
    }

    fn comp_spec(name: &str) -> DeviationSpec {
        DeviationSpec::new(
            name,
            DeviationSurface::only(ExternalActionKind::Computation),
        )
    }

    /// A toy game: faithful utility is 10 each; deviation "steal" gives the
    /// deviator +5 (undetected); deviation "caught" gives −3 (detected).
    fn toy_play(n: usize) -> impl FnMut(Option<(usize, &DeviationSpec)>) -> (Vec<Money>, bool) {
        move |dev| {
            let mut u = vec![Money::new(10); n];
            match dev {
                None => (u, false),
                Some((agent, spec)) => {
                    if spec.name() == "steal" {
                        u[agent] = Money::new(15);
                        (u, false)
                    } else {
                        u[agent] = Money::new(7);
                        (u, true)
                    }
                }
            }
        }
    }

    #[test]
    fn profitable_deviation_breaks_equilibrium() {
        let deviations = vec![mp_spec("steal"), comp_spec("caught")];
        let report = test_deviations(3, &deviations, toy_play(3));
        assert!(!report.is_ex_post_nash());
        assert_eq!(report.violations().count(), 3); // every agent can steal
        assert!(!report.strong_cc_holds()); // "steal" touches message passing
        assert!(report.strong_ac_holds()); // "caught" is unprofitable
    }

    #[test]
    fn unprofitable_library_is_equilibrium() {
        let deviations = vec![comp_spec("caught")];
        let report = test_deviations(2, &deviations, toy_play(2));
        assert!(report.is_ex_post_nash());
        assert!(report.strong_ac_holds());
        assert_eq!(report.detection_rate(), Some(1.0));
    }

    #[test]
    fn ties_do_not_violate_weak_equilibrium() {
        let deviations = vec![mp_spec("noop")];
        let report = test_deviations(2, &deviations, |dev| {
            // Deviation changes nothing (tie).
            let _ = dev;
            (vec![Money::new(4), Money::new(4)], false)
        });
        assert!(report.is_ex_post_nash());
    }

    #[test]
    fn joint_surface_risks_both_properties() {
        let joint = DeviationSpec::new(
            "tamper-and-miscompute",
            DeviationSurface::new()
                .with(ExternalActionKind::MessagePassing)
                .with(ExternalActionKind::Computation),
        );
        let report = test_deviations(1, &[joint], |dev| match dev {
            None => (vec![Money::ZERO], false),
            Some(_) => (vec![Money::new(1)], false),
        });
        assert!(!report.strong_cc_holds());
        assert!(!report.strong_ac_holds());
        assert!(report.ic_holds()); // surface does not touch revelation
    }

    #[test]
    fn suite_aggregates_across_profiles() {
        let deviations = vec![comp_spec("caught")];
        let mut suite = EquilibriumSuite::new();
        for label in ["profile-a", "profile-b"] {
            suite.push(label, test_deviations(2, &deviations, toy_play(2)));
        }
        assert!(suite.is_ex_post_nash());
        assert_eq!(suite.total_deviations(), 4);
        assert_eq!(suite.detection_rate(), Some(1.0));
        assert_eq!(suite.violations().count(), 0);
    }

    #[test]
    fn suite_reports_violations_with_labels() {
        let deviations = vec![mp_spec("steal")];
        let mut suite = EquilibriumSuite::new();
        suite.push("bad-profile", test_deviations(1, &deviations, toy_play(1)));
        assert!(!suite.is_ex_post_nash());
        let (label, outcome) = suite.violations().next().expect("one violation");
        assert_eq!(label, "bad-profile");
        assert_eq!(outcome.gain(), Money::new(5));
    }

    #[test]
    fn deviation_spec_display_and_phase() {
        let spec = mp_spec("drop").in_phase("construction-2");
        assert_eq!(spec.phase(), Some("construction-2"));
        let shown = spec.to_string();
        assert!(shown.contains("drop"));
        assert!(shown.contains("message-passing"));
        assert!(shown.contains("@construction-2"));
    }

    #[test]
    fn empty_report_detection_rate_is_none() {
        let report = test_deviations(2, &[], |_| (vec![Money::ZERO; 2], false));
        assert_eq!(report.detection_rate(), None);
        assert!(report.is_ex_post_nash());
    }

    #[test]
    #[should_panic(expected = "wrong number of utilities")]
    fn panics_on_malformed_utility_vector() {
        let _ = test_deviations(3, &[], |_| (vec![Money::ZERO; 2], false));
    }
}
