//! Phase decomposition and faithfulness certificates (Propositions 1–2, §3.9).
//!
//! The paper's proof technique decomposes a distributed mechanism into
//! disjoint **phases** separated by runtime checkpoints; each phase is
//! proven strong-CC and strong-AC (plus consistent information revelation)
//! in isolation, and Proposition 2 then stitches the phase results together
//! with strategyproofness of the corresponding centralized mechanism into a
//! claim of faithfulness.
//!
//! [`FaithfulnessCertificate::assemble`] performs exactly that bookkeeping
//! over an `EquilibriumSuite`: it
//! groups tested deviations by the phase they attack, evaluates strong-CC /
//! strong-AC / IC per phase, and combines the verdicts.

use crate::actions::{CompatibilityKind, ExternalActionKind};
use crate::equilibrium::EquilibriumSuite;
use std::collections::BTreeMap;
use std::fmt;

/// Per-phase certification evidence.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Phase name (e.g. `"construction-1"`, `"construction-2"`,
    /// `"execution"`).
    pub phase: String,
    /// No profitable deviation touching message passing (Definition 12).
    pub strong_cc: bool,
    /// No profitable deviation touching computation (Definition 13).
    pub strong_ac: bool,
    /// No profitable deviation touching information revelation, and no
    /// inconsistent-revelation deviation succeeded (Remark 4).
    pub consistent_revelation: bool,
    /// Number of `(agent, deviation, profile)` cases contributing evidence.
    pub deviations_tested: usize,
}

impl PhaseReport {
    /// Whether the phase passed all three obligations.
    pub fn certified(&self) -> bool {
        self.strong_cc && self.strong_ac && self.consistent_revelation
    }
}

impl fmt::Display for PhaseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} strong-CC={} strong-AC={} consistent-IR={} ({} cases)",
            self.phase,
            self.strong_cc,
            self.strong_ac,
            self.consistent_revelation,
            self.deviations_tested
        )
    }
}

/// The assembled faithfulness claim for a distributed mechanism
/// specification, following Proposition 2.
#[derive(Clone, Debug)]
pub struct FaithfulnessCertificate {
    /// Whether the corresponding centralized mechanism passed the
    /// strategyproofness tester (Definition 5).
    pub centralized_strategyproof: bool,
    /// Evidence per phase (§3.9's decomposition).
    pub phases: Vec<PhaseReport>,
}

impl FaithfulnessCertificate {
    /// Assembles a certificate from the strategyproofness verdict and a
    /// deviation-test suite whose [`DeviationSpec`]s are tagged with phases.
    ///
    /// Deviations without a phase tag contribute to a synthetic
    /// `"(untagged)"` phase so that no evidence is silently dropped.
    ///
    /// [`DeviationSpec`]: crate::equilibrium::DeviationSpec
    pub fn assemble(centralized_strategyproof: bool, suite: &EquilibriumSuite) -> Self {
        #[derive(Default)]
        struct Acc {
            cc_ok: bool,
            ac_ok: bool,
            ir_ok: bool,
            count: usize,
        }
        let mut phases: BTreeMap<String, Acc> = BTreeMap::new();
        for (_, report) in suite.reports() {
            for outcome in &report.outcomes {
                let phase = outcome
                    .deviation
                    .phase()
                    .unwrap_or("(untagged)")
                    .to_string();
                let acc = phases.entry(phase).or_insert(Acc {
                    cc_ok: true,
                    ac_ok: true,
                    ir_ok: true,
                    count: 0,
                });
                acc.count += 1;
                if outcome.strictly_profitable() {
                    let surface = outcome.deviation.surface();
                    if surface.touches(ExternalActionKind::MessagePassing) {
                        acc.cc_ok = false;
                    }
                    if surface.touches(ExternalActionKind::Computation) {
                        acc.ac_ok = false;
                    }
                    if surface.touches(ExternalActionKind::InformationRevelation) {
                        acc.ir_ok = false;
                    }
                }
            }
        }
        FaithfulnessCertificate {
            centralized_strategyproof,
            phases: phases
                .into_iter()
                .map(|(phase, acc)| PhaseReport {
                    phase,
                    strong_cc: acc.cc_ok,
                    strong_ac: acc.ac_ok,
                    consistent_revelation: acc.ir_ok,
                    deviations_tested: acc.count,
                })
                .collect(),
        }
    }

    /// Proposition 2's conclusion: the specification is a faithful
    /// implementation when the centralized mechanism is strategyproof and
    /// every phase is strong-CC, strong-AC, and consistent in revelation.
    pub fn is_faithful(&self) -> bool {
        self.centralized_strategyproof && self.phases.iter().all(PhaseReport::certified)
    }

    /// The compatibility properties that failed anywhere, deduplicated.
    pub fn failed_properties(&self) -> Vec<CompatibilityKind> {
        let mut failed = Vec::new();
        let any = |f: fn(&PhaseReport) -> bool| self.phases.iter().any(f);
        if !self.centralized_strategyproof || any(|p| !p.consistent_revelation) {
            failed.push(CompatibilityKind::Incentive);
        }
        if any(|p| !p.strong_cc) {
            failed.push(CompatibilityKind::Communication);
        }
        if any(|p| !p.strong_ac) {
            failed.push(CompatibilityKind::Algorithm);
        }
        failed
    }
}

impl fmt::Display for FaithfulnessCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "faithful: {} (centralized strategyproof: {})",
            self.is_faithful(),
            self.centralized_strategyproof
        )?;
        for phase in &self.phases {
            writeln!(f, "  {phase}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::DeviationSurface;
    use crate::equilibrium::{test_deviations, DeviationSpec, EquilibriumSuite};
    use crate::money::Money;

    fn suite_with(gainful: &str) -> EquilibriumSuite {
        let deviations = vec![
            DeviationSpec::new(
                "drop-forward",
                DeviationSurface::only(ExternalActionKind::MessagePassing),
            )
            .in_phase("construction-2"),
            DeviationSpec::new(
                "miscompute",
                DeviationSurface::only(ExternalActionKind::Computation),
            )
            .in_phase("construction-2"),
            DeviationSpec::new(
                "lie-cost",
                DeviationSurface::only(ExternalActionKind::InformationRevelation),
            )
            .in_phase("construction-1"),
        ];
        let gainful = gainful.to_string();
        let mut suite = EquilibriumSuite::new();
        suite.push(
            "profile-0",
            test_deviations(2, &deviations, move |dev| match dev {
                None => (vec![Money::ZERO; 2], false),
                Some((agent, spec)) => {
                    let mut u = vec![Money::ZERO; 2];
                    if spec.name() == gainful {
                        u[agent] = Money::new(3);
                    } else {
                        u[agent] = Money::new(-3);
                    }
                    (u, true)
                }
            }),
        );
        suite
    }

    #[test]
    fn all_unprofitable_certifies_faithful() {
        let suite = suite_with("nothing-matches");
        let cert = FaithfulnessCertificate::assemble(true, &suite);
        assert!(cert.is_faithful());
        assert!(cert.failed_properties().is_empty());
        assert_eq!(cert.phases.len(), 2); // construction-1 and construction-2
        assert!(cert.phases.iter().all(|p| p.certified()));
    }

    #[test]
    fn profitable_message_drop_fails_cc_in_its_phase() {
        let suite = suite_with("drop-forward");
        let cert = FaithfulnessCertificate::assemble(true, &suite);
        assert!(!cert.is_faithful());
        assert_eq!(
            cert.failed_properties(),
            vec![CompatibilityKind::Communication]
        );
        let phase2 = cert
            .phases
            .iter()
            .find(|p| p.phase == "construction-2")
            .expect("phase present");
        assert!(!phase2.strong_cc);
        assert!(phase2.strong_ac);
        let phase1 = cert
            .phases
            .iter()
            .find(|p| p.phase == "construction-1")
            .expect("phase present");
        assert!(phase1.certified());
    }

    #[test]
    fn profitable_lie_fails_incentive() {
        let suite = suite_with("lie-cost");
        let cert = FaithfulnessCertificate::assemble(true, &suite);
        assert!(!cert.is_faithful());
        assert_eq!(cert.failed_properties(), vec![CompatibilityKind::Incentive]);
    }

    #[test]
    fn non_strategyproof_center_blocks_faithfulness() {
        let suite = suite_with("nothing-matches");
        let cert = FaithfulnessCertificate::assemble(false, &suite);
        assert!(!cert.is_faithful());
        assert_eq!(cert.failed_properties(), vec![CompatibilityKind::Incentive]);
    }

    #[test]
    fn untagged_deviations_get_synthetic_phase() {
        let deviations = vec![DeviationSpec::new(
            "untagged",
            DeviationSurface::only(ExternalActionKind::Computation),
        )];
        let mut suite = EquilibriumSuite::new();
        suite.push(
            "p",
            test_deviations(1, &deviations, |dev| {
                (
                    vec![if dev.is_some() {
                        Money::new(-1)
                    } else {
                        Money::ZERO
                    }],
                    false,
                )
            }),
        );
        let cert = FaithfulnessCertificate::assemble(true, &suite);
        assert_eq!(cert.phases.len(), 1);
        assert_eq!(cert.phases[0].phase, "(untagged)");
        assert!(cert.is_faithful());
    }

    #[test]
    fn display_renders_phases() {
        let cert = FaithfulnessCertificate::assemble(true, &suite_with("x"));
        let s = cert.to_string();
        assert!(s.contains("construction-1"));
        assert!(s.contains("construction-2"));
        assert!(s.contains("faithful: true"));
    }
}
