//! Centralized (direct-revelation) mechanisms and strategyproofness testing.
//!
//! Traditional mechanism design (paper §3.2) considers a mechanism
//! `M = (f, Θ)`: agents report types `θ̂` to a trusted center that selects an
//! outcome `f(θ̂)` and payments. `M` is **strategyproof** (Definition 5) when
//! truthful reporting is a dominant strategy:
//! `uᵢ(f(θᵢ, θ₋ᵢ); θᵢ) ≥ uᵢ(f(θ̂ᵢ, θ₋ᵢ); θᵢ)` for all `θᵢ, θ̂ᵢ, θ₋ᵢ`.
//!
//! Proposition 2 of the paper reduces faithfulness of a distributed
//! specification to strong-CC + strong-AC + strategyproofness of the
//! *corresponding centralized mechanism* `f(θ) = g(sᵐ(θ))`. This module
//! supplies the third leg: [`check_strategyproof`] exhaustively tests a
//! [`DirectMechanism`] over supplied type profiles and a misreport model and
//! reports every violation it finds.

use crate::money::Money;
use std::fmt;

/// A direct-revelation mechanism together with the agents' (quasilinear)
/// preferences: outcome rule, payment rule, and valuation.
///
/// Utility is quasilinear: `uᵢ = vᵢ(outcome; θᵢ) + paymentᵢ`, with payments
/// expressed **to** the agent (negative = the agent pays).
pub trait DirectMechanism {
    /// The type space `Θᵢ` (identical across agents here; heterogeneous
    /// spaces can embed into a common enum).
    type Type: Clone + fmt::Debug;
    /// The outcome space `O`.
    type Outcome: Clone + fmt::Debug;

    /// Number of participating agents `N`.
    fn num_agents(&self) -> usize;

    /// The outcome rule `f(θ̂)`.
    fn outcome(&self, reports: &[Self::Type]) -> Self::Outcome;

    /// Payments to each agent under `outcome` given reports `θ̂`.
    fn payments(&self, reports: &[Self::Type], outcome: &Self::Outcome) -> Vec<Money>;

    /// Agent `agent`'s valuation of `outcome` when its **true** type is
    /// `true_type` (independent of what it reported).
    fn valuation(&self, agent: usize, true_type: &Self::Type, outcome: &Self::Outcome) -> Money;

    /// Quasilinear utility of `agent` with true type `true_type` when the
    /// profile of reports is `reports`.
    fn utility(&self, agent: usize, true_type: &Self::Type, reports: &[Self::Type]) -> Money {
        let outcome = self.outcome(reports);
        let payments = self.payments(reports, &outcome);
        self.valuation(agent, true_type, &outcome) + payments[agent]
    }
}

/// Generates candidate misreports `θ̂ᵢ ≠ θᵢ` from a true type.
///
/// Strategyproofness quantifies over *all* misreports; testers approximate
/// this with a caller-chosen grid. For the integer-valued type spaces in
/// this workspace, offset grids are exact enough to catch every violation a
/// real manipulation could exploit (utilities are piecewise linear in the
/// report with integer breakpoints).
pub trait MisreportModel<T> {
    /// Candidate untruthful reports for an agent whose true type is `truth`.
    fn misreports(&self, truth: &T) -> Vec<T>;
}

/// A [`MisreportModel`] that perturbs integer-valued types by fixed offsets,
/// discarding perturbations that leave the valid range.
///
/// # Example
///
/// ```
/// use specfaith_core::mechanism::{MisreportGrid, MisreportModel};
/// use specfaith_core::money::Money;
///
/// let grid = MisreportGrid::offsets(&[-2, 1]);
/// assert_eq!(
///     grid.misreports(&Money::new(5)),
///     vec![Money::new(3), Money::new(6)]
/// );
/// ```
#[derive(Clone, Debug)]
pub struct MisreportGrid {
    offsets: Vec<i64>,
}

impl MisreportGrid {
    /// Builds a grid from nonzero offsets.
    ///
    /// # Panics
    ///
    /// Panics if any offset is zero (a zero offset is a truthful report, not
    /// a misreport).
    pub fn offsets(offsets: &[i64]) -> Self {
        assert!(
            offsets.iter().all(|&o| o != 0),
            "misreport offsets must be nonzero"
        );
        MisreportGrid {
            offsets: offsets.to_vec(),
        }
    }

    /// A symmetric default grid: ±1, ±2, ±5, ±10, ±100.
    pub fn standard() -> Self {
        MisreportGrid::offsets(&[-100, -10, -5, -2, -1, 1, 2, 5, 10, 100])
    }
}

impl MisreportModel<Money> for MisreportGrid {
    fn misreports(&self, truth: &Money) -> Vec<Money> {
        self.offsets
            .iter()
            .filter_map(|&o| truth.value().checked_add(o).map(Money::new))
            .collect()
    }
}

impl MisreportModel<crate::money::Cost> for MisreportGrid {
    fn misreports(&self, truth: &crate::money::Cost) -> Vec<crate::money::Cost> {
        let base = truth.value() as i64;
        self.offsets
            .iter()
            .filter_map(|&o| {
                let v = base.checked_add(o)?;
                u64::try_from(v).ok().map(crate::money::Cost::new)
            })
            .collect()
    }
}

/// One observed strategyproofness violation: a profile, an agent, and a
/// misreport that strictly improved the agent's utility.
#[derive(Clone, Debug)]
pub struct SpViolation<T> {
    /// Index of the type profile in the tested set.
    pub profile_index: usize,
    /// The manipulating agent.
    pub agent: usize,
    /// The profitable misreport.
    pub misreport: T,
    /// Utility under truthful reporting.
    pub truthful_utility: Money,
    /// Utility under the misreport (strictly higher).
    pub deviant_utility: Money,
}

/// Result of [`check_strategyproof`].
#[derive(Clone, Debug)]
pub struct StrategyproofReport<T> {
    /// Number of (profile, agent, misreport) triples evaluated.
    pub checks: usize,
    /// Every strict violation found.
    pub violations: Vec<SpViolation<T>>,
}

impl<T> StrategyproofReport<T> {
    /// Whether no profitable misreport was found on the tested grid.
    pub fn is_strategyproof(&self) -> bool {
        self.violations.is_empty()
    }

    /// The largest utility gain achieved by any violation, if any.
    pub fn max_gain(&self) -> Option<Money> {
        self.violations
            .iter()
            .map(|v| v.deviant_utility - v.truthful_utility)
            .max()
    }
}

impl<T: fmt::Debug> fmt::Display for StrategyproofReport<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_strategyproof() {
            write!(f, "strategyproof on grid ({} checks)", self.checks)
        } else {
            write!(
                f,
                "NOT strategyproof: {} violations in {} checks (max gain {})",
                self.violations.len(),
                self.checks,
                self.max_gain().expect("nonempty violations")
            )
        }
    }
}

/// Tests Definition 5 over every supplied profile, agent, and misreport.
///
/// Returns a [`StrategyproofReport`] listing each strict violation
/// (`u(misreport) > u(truth)`); ties are not violations (Remark 1's
/// benevolence convention).
///
/// # Panics
///
/// Panics if any profile's length differs from `mechanism.num_agents()`.
pub fn check_strategyproof<M, R>(
    mechanism: &M,
    profiles: &[Vec<M::Type>],
    misreports: &R,
) -> StrategyproofReport<M::Type>
where
    M: DirectMechanism,
    R: MisreportModel<M::Type>,
{
    let n = mechanism.num_agents();
    let mut checks = 0usize;
    let mut violations = Vec::new();
    for (profile_index, profile) in profiles.iter().enumerate() {
        assert_eq!(profile.len(), n, "profile {profile_index} has wrong arity");
        for agent in 0..n {
            let truthful_utility = mechanism.utility(agent, &profile[agent], profile);
            for misreport in misreports.misreports(&profile[agent]) {
                let mut reports = profile.clone();
                reports[agent] = misreport.clone();
                let deviant_utility = mechanism.utility(agent, &profile[agent], &reports);
                checks += 1;
                if deviant_utility > truthful_utility {
                    violations.push(SpViolation {
                        profile_index,
                        agent,
                        misreport,
                        truthful_utility,
                        deviant_utility,
                    });
                }
            }
        }
    }
    StrategyproofReport { checks, violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately manipulable mechanism: pays each agent its own report.
    /// (First-price flavored; obviously not strategyproof.)
    struct PayYourReport {
        n: usize,
    }

    impl DirectMechanism for PayYourReport {
        type Type = Money;
        type Outcome = ();

        fn num_agents(&self) -> usize {
            self.n
        }

        fn outcome(&self, _reports: &[Money]) {}

        fn payments(&self, reports: &[Money], _outcome: &()) -> Vec<Money> {
            reports.to_vec()
        }

        fn valuation(&self, _agent: usize, _true_type: &Money, _outcome: &()) -> Money {
            Money::ZERO
        }
    }

    /// A trivially strategyproof mechanism: constant outcome, zero payments.
    struct Dictatorial {
        n: usize,
    }

    impl DirectMechanism for Dictatorial {
        type Type = Money;
        type Outcome = ();

        fn num_agents(&self) -> usize {
            self.n
        }

        fn outcome(&self, _reports: &[Money]) {}

        fn payments(&self, _reports: &[Money], _outcome: &()) -> Vec<Money> {
            vec![Money::ZERO; self.n]
        }

        fn valuation(&self, _agent: usize, _true_type: &Money, _outcome: &()) -> Money {
            Money::ZERO
        }
    }

    fn profiles() -> Vec<Vec<Money>> {
        vec![
            vec![Money::new(3), Money::new(8)],
            vec![Money::new(0), Money::new(0)],
        ]
    }

    #[test]
    fn detects_manipulable_mechanism() {
        let mech = PayYourReport { n: 2 };
        let report = check_strategyproof(&mech, &profiles(), &MisreportGrid::offsets(&[-1, 1]));
        assert!(!report.is_strategyproof());
        // Over-reporting by 1 gains exactly 1.
        assert_eq!(report.max_gain(), Some(Money::new(1)));
        // Every (profile, agent) has exactly one profitable direction (+1).
        assert_eq!(report.violations.len(), 4);
    }

    #[test]
    fn accepts_constant_mechanism() {
        let mech = Dictatorial { n: 2 };
        let report = check_strategyproof(&mech, &profiles(), &MisreportGrid::standard());
        assert!(report.is_strategyproof());
        assert!(report.max_gain().is_none());
        assert_eq!(report.checks, 2 * 2 * 10);
    }

    #[test]
    fn ties_are_not_violations() {
        // PayYourReport with only offset -1: deviating strictly loses; and a
        // synthetic tie (offset applied then reverted) cannot occur. Check
        // the weak-inequality convention with Dictatorial where all
        // utilities tie at zero.
        let mech = Dictatorial { n: 1 };
        let report = check_strategyproof(
            &mech,
            &[vec![Money::new(5)]],
            &MisreportGrid::offsets(&[1, -1]),
        );
        assert!(report.is_strategyproof());
    }

    #[test]
    fn misreport_grid_for_cost_discards_negatives() {
        use crate::money::Cost;
        let grid = MisreportGrid::offsets(&[-5, 5]);
        let reports = grid.misreports(&Cost::new(2));
        assert_eq!(reports, vec![Cost::new(7)]);
    }

    #[test]
    #[should_panic(expected = "misreport offsets must be nonzero")]
    fn grid_rejects_zero_offset() {
        let _ = MisreportGrid::offsets(&[0]);
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn check_rejects_malformed_profile() {
        let mech = Dictatorial { n: 2 };
        let _ = check_strategyproof(&mech, &[vec![Money::new(1)]], &MisreportGrid::offsets(&[1]));
    }

    #[test]
    fn report_display() {
        let mech = Dictatorial { n: 1 };
        let report =
            check_strategyproof(&mech, &[vec![Money::new(5)]], &MisreportGrid::offsets(&[1]));
        assert!(report.to_string().contains("strategyproof"));
    }
}
