//! # specfaith-core
//!
//! Executable mechanism-design formalism from *"Specification Faithfulness in
//! Networks with Rational Nodes"* (Shneidman & Parkes, PODC 2004).
//!
//! The paper defines a language for **distributed mechanism specifications**
//! `dM = (g, Σ, sᵐ)` over state machines, classifies external actions into
//! information-revelation / message-passing / computation (Definitions 2–4),
//! and gives a proof technique (Proposition 2) reducing *faithfulness* — the
//! suggested specification being an ex post Nash equilibrium — to:
//!
//! 1. strategyproofness of the corresponding centralized mechanism,
//! 2. **strong-CC** (no profitable message-passing deviation, whatever the
//!    node's other actions), and
//! 3. **strong-AC** (no profitable computation deviation, likewise),
//!
//! checked phase by phase (§3.9).
//!
//! This crate provides each piece as a library:
//!
//! * [`id`] / [`money`] — agent identities and exact integer cost/money
//!   arithmetic (bit-reproducibility is what lets checker nodes verify
//!   principals).
//! * [`statemachine`] — the state-machine specification model of §3.1.
//! * [`actions`] — the external-action classification and deviation surfaces.
//! * [`mechanism`] — centralized (direct-revelation) mechanisms and an
//!   exhaustive [strategyproofness tester](mechanism::check_strategyproof)
//!   (Definition 5).
//! * [`vcg`] — generic Vickrey–Clarke–Groves payments for cost-minimization
//!   problems (used by both FPSS routing and the leader-election example).
//! * [`equilibrium`] — the ex post Nash deviation tester (Definition 6) that
//!   turns a simulator plus a deviation library into an empirical
//!   faithfulness check.
//! * [`faithfulness`] — IC/CC/AC bookkeeping, phase decomposition, and the
//!   `FaithfulnessCertificate`
//!   assembled per Proposition 2.
//! * [`failure`] — the extended failure taxonomy with *rational manipulation*
//!   as a first-class failure class (§3).
//!
//! # Example
//!
//! Certify a second-price (Vickrey) selection mechanism strategyproof:
//!
//! ```
//! use specfaith_core::mechanism::{check_strategyproof, MisreportGrid};
//! use specfaith_core::vcg::SecondPriceSelection;
//! use specfaith_core::money::Money;
//!
//! let mech = SecondPriceSelection::new(3);
//! let profiles = vec![
//!     vec![Money::new(10), Money::new(7), Money::new(3)],
//!     vec![Money::new(5), Money::new(5), Money::new(9)],
//! ];
//! let report = check_strategyproof(&mech, &profiles, &MisreportGrid::offsets(&[-4, -1, 1, 4]));
//! assert!(report.is_strategyproof());
//! ```

pub mod actions;
pub mod equilibrium;
pub mod failure;
pub mod faithfulness;
pub mod id;
pub mod mechanism;
pub mod money;
pub mod statemachine;
pub mod vcg;

pub use actions::{CompatibilityKind, DeviationSurface, ExternalActionKind};
pub use equilibrium::{DeviationOutcome, DeviationSpec, EquilibriumReport};
pub use faithfulness::{FaithfulnessCertificate, PhaseReport};
pub use id::NodeId;
pub use money::{Cost, Money};
