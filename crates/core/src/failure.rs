//! The extended failure taxonomy of §3.
//!
//! The paper argues that *rational manipulation* deserves standing as a
//! failure class of its own, alongside the traditional fail-stop → Byzantine
//! spectrum: a rational node deviates only when deviation increases its own
//! utility, which makes the failure **predictable and motivated** — and
//! therefore addressable by design tools (incentives, partitioning,
//! catch-and-punish) rather than only by redundancy.

use std::fmt;

/// Classes of node failure in the extended taxonomy.
///
/// Ordered roughly by the severity of the behaviors each class admits;
/// [`FailureClass::RationalManipulation`] is *behaviorally* a subset of
/// Byzantine but is distinguished by motive, which enables different
/// remedies (see [`FailureClass::remedies`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FailureClass {
    /// The node halts, and its halting is detectable.
    FailStop,
    /// The node halts without notice.
    Crash,
    /// The node drops some messages (send/receive omission).
    Omission,
    /// The node responds outside its timing specification.
    Timing,
    /// The node deviates from its specification **only when the deviation
    /// increases its own utility in the mechanism** (Definition 7).
    RationalManipulation,
    /// Arbitrary, possibly adversarial behavior.
    Byzantine,
}

impl FailureClass {
    /// All classes, mildest first.
    pub const ALL: [FailureClass; 6] = [
        FailureClass::FailStop,
        FailureClass::Crash,
        FailureClass::Omission,
        FailureClass::Timing,
        FailureClass::RationalManipulation,
        FailureClass::Byzantine,
    ];

    /// Whether every behavior admitted by `self` is also admitted by
    /// `other` (the classic containment ordering, with rational
    /// manipulation sitting behaviorally below Byzantine).
    pub fn is_subsumed_by(self, other: FailureClass) -> bool {
        use FailureClass::*;
        if self == other || other == Byzantine {
            return true;
        }
        matches!(
            (self, other),
            (FailStop, Crash | Omission | Timing | RationalManipulation)
                | (Crash, Omission | Timing)
                | (Omission, Timing)
        )
    }

    /// Design remedies appropriate to the class.
    ///
    /// Traditional classes are overcome by redundancy; rational
    /// manipulation additionally admits the paper's design tools:
    /// incentives, problem partitioning, catch-and-punish, and (sparingly)
    /// cryptography.
    pub fn remedies(self) -> &'static [Remedy] {
        use FailureClass::*;
        match self {
            FailStop | Crash | Omission | Timing => &[Remedy::Redundancy],
            RationalManipulation => &[
                Remedy::Incentives,
                Remedy::ProblemPartitioning,
                Remedy::CatchAndPunish,
                Remedy::Redundancy,
                Remedy::Cryptography,
            ],
            Byzantine => &[Remedy::Redundancy, Remedy::Cryptography],
        }
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureClass::FailStop => "fail-stop",
            FailureClass::Crash => "crash",
            FailureClass::Omission => "omission",
            FailureClass::Timing => "timing",
            FailureClass::RationalManipulation => "rational-manipulation",
            FailureClass::Byzantine => "Byzantine",
        };
        f.write_str(s)
    }
}

/// Design techniques for tolerating failures (§1, §3.9).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Remedy {
    /// Replicated computation / communication (the traditional tool; also
    /// the checker nodes of the FPSS extension).
    Redundancy,
    /// Payments aligning a node's utility with faithful behavior.
    Incentives,
    /// Structuring computation so no node computes where it has a vested
    /// interest.
    ProblemPartitioning,
    /// Detection plus penalties exceeding any deviation gain.
    CatchAndPunish,
    /// Signing/verification making deviations detectable or impossible.
    Cryptography,
}

impl fmt::Display for Remedy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Remedy::Redundancy => "redundancy",
            Remedy::Incentives => "incentives",
            Remedy::ProblemPartitioning => "problem-partitioning",
            Remedy::CatchAndPunish => "catch-and-punish",
            Remedy::Cryptography => "cryptography",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byzantine_subsumes_everything() {
        for class in FailureClass::ALL {
            assert!(class.is_subsumed_by(FailureClass::Byzantine));
        }
    }

    #[test]
    fn rational_is_not_subsumed_by_omission() {
        assert!(!FailureClass::RationalManipulation.is_subsumed_by(FailureClass::Omission));
        assert!(!FailureClass::Byzantine.is_subsumed_by(FailureClass::RationalManipulation));
    }

    #[test]
    fn failstop_is_weakest() {
        for class in FailureClass::ALL {
            assert!(FailureClass::FailStop.is_subsumed_by(class));
        }
    }

    #[test]
    fn subsumption_is_reflexive() {
        for class in FailureClass::ALL {
            assert!(class.is_subsumed_by(class));
        }
    }

    #[test]
    fn rational_remedies_include_paper_toolkit() {
        let remedies = FailureClass::RationalManipulation.remedies();
        assert!(remedies.contains(&Remedy::Incentives));
        assert!(remedies.contains(&Remedy::CatchAndPunish));
        assert!(remedies.contains(&Remedy::ProblemPartitioning));
    }

    #[test]
    fn traditional_classes_rely_on_redundancy() {
        assert_eq!(FailureClass::Crash.remedies(), &[Remedy::Redundancy]);
    }

    #[test]
    fn display_names() {
        assert_eq!(
            FailureClass::RationalManipulation.to_string(),
            "rational-manipulation"
        );
        assert_eq!(Remedy::CatchAndPunish.to_string(), "catch-and-punish");
    }
}
