//! # specfaith-bench
//!
//! Shared helpers for the Criterion benchmarks and the experiment runner
//! (`run_experiments`), which regenerates every experiment table in
//! EXPERIMENTS.md.
//!
//! # Shard fragment format
//!
//! `sweep_bench --shard i/N --emit-shard-report <path>` writes one
//! `specfaith-sweep-fragment-v1` JSON document per shard (the
//! serialization of `specfaith::scenario::SweepFragment`), and
//! `sweep_bench --merge` consumes a complete set of them. The layout:
//!
//! ```json
//! {
//!   "format": "specfaith-sweep-fragment-v1",
//!   "shard": {"index": 2, "count": 4},
//!   "instance": "sweep-n64-i2004-s7-quick-ideal",
//!   "instance_fingerprint": "fnv1a64:…",
//!   "seeds": [7],
//!   "agents": [0, 1, …],
//!   "deviations": [{"name": "…", "surface": ["…"], "phase": …}, …],
//!   "baselines": [{"seed": 7, "faithful_utilities": [-12, …]}],
//!   "cells": [
//!     {"index": 5, "seed": 7, "agent": 2, "deviation": 1,
//!      "deviant_utility": -9, "detected": true}, …
//!   ],
//!   "timing": {"baseline_secs": 1.2, "cells_secs": 20.9}
//! }
//! ```
//!
//! The **manifest** — `shard`, `instance`, `instance_fingerprint`,
//! `seeds`, `agents`, `deviations` — declares which grid the fragment
//! is a slice of; merge refuses fragments whose manifests disagree.
//! Each cell's `index` is its row-major position in the
//! `seeds × agents × deviations` grid (shard `i` of `N` owns the
//! indices ≡ `i` mod `N`); the redundant `seed`/`agent`/`deviation`
//! coordinates are re-derived and cross-checked at merge time. Every
//! shard re-runs the cheap per-seed honest `baselines`, so merge also
//! verifies bit-identical baseline utilities across shards — a free
//! cross-machine determinism check. `timing` feeds the merge-time skew
//! table. Money values are exact integers; all floats are timings.
//! Unknown keys are ignored, so the format can grow fields without
//! breaking old readers.

use rand::rngs::StdRng;
use rand::SeedableRng;
use specfaith_fpss::traffic::TrafficMatrix;
use specfaith_graph::costs::CostVector;
use specfaith_graph::generators::random_biconnected;
use specfaith_graph::topology::Topology;

/// A reproducible benchmark instance: topology, costs, traffic.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The topology.
    pub topo: Topology,
    /// True transit costs.
    pub costs: CostVector,
    /// Execution traffic.
    pub traffic: TrafficMatrix,
}

/// Builds the standard random instance for size `n` and `seed`.
pub fn instance(n: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = random_biconnected(n, n / 2, &mut rng);
    let costs = CostVector::random(n, 1, 20, &mut rng);
    let traffic = TrafficMatrix::random(n, (n / 2).max(2), 3, &mut rng);
    Instance {
        topo,
        costs,
        traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_reproducible_and_biconnected() {
        let a = instance(10, 3);
        let b = instance(10, 3);
        assert_eq!(a.topo, b.topo);
        assert_eq!(a.costs, b.costs);
        assert_eq!(a.traffic, b.traffic);
        assert!(a.topo.is_biconnected());
    }
}
