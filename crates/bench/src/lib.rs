//! # specfaith-bench
//!
//! Shared helpers for the Criterion benchmarks and the experiment runner
//! (`run_experiments`), which regenerates every experiment table in
//! EXPERIMENTS.md.
//!
//! # Shard fragment format
//!
//! `sweep_bench --shard i/N --emit-shard-report <path>` writes one
//! `specfaith-sweep-fragment-v1` JSON document per shard (the
//! serialization of `specfaith::scenario::SweepFragment`), and
//! `sweep_bench --merge` consumes a complete set of them. The layout:
//!
//! ```json
//! {
//!   "format": "specfaith-sweep-fragment-v1",
//!   "shard": {"index": 2, "count": 4},
//!   "instance": "sweep-n64-i2004-s7-quick-ideal",
//!   "instance_fingerprint": "fnv1a64:…",
//!   "seeds": [7],
//!   "agents": [0, 1, …],
//!   "deviations": [{"name": "…", "surface": ["…"], "phase": …}, …],
//!   "baselines": [{"seed": 7, "utilities": [-12, …]}],
//!   "cells": [
//!     {"index": 5, "seed": 7, "agent": 2, "deviation": 1,
//!      "deviant_utility": -9, "detected": true}, …
//!   ],
//!   "timing": {"baseline_secs": 1.2, "cells_secs": 20.9}
//! }
//! ```
//!
//! The **manifest** — `shard`, `instance`, `instance_fingerprint`,
//! `seeds`, `agents`, `deviations` — declares which grid the fragment
//! is a slice of; merge refuses fragments whose manifests disagree.
//! Each cell's `index` is its row-major position in the
//! `seeds × agents × deviations` grid (shard `i` of `N` owns the
//! indices ≡ `i` mod `N`); the redundant `seed`/`agent`/`deviation`
//! coordinates are re-derived and cross-checked at merge time. Every
//! shard re-runs the cheap per-seed honest `baselines`, so merge also
//! verifies bit-identical baseline utilities across shards — a free
//! cross-machine determinism check. `timing` feeds the merge-time skew
//! table. Money values are exact integers; all floats are timings.
//! Unknown keys are ignored, so the format can grow fields without
//! breaking old readers.
//!
//! # Coordinator protocol (`specfaith-coord-v1`)
//!
//! `sweep_bench --coordinate N --listen ADDR` replaces the static
//! shard partition with live work stealing: a coordinator process
//! leases small contiguous cell ranges of the same grid to
//! `sweep_bench --worker ADDR` processes over a Unix or TCP socket
//! (`unix:<path>` / `tcp:<host>:<port>`). The wire format is
//! newline-delimited JSON, one frame per line, each tagged
//! `"frame": "<kind>"`:
//!
//! ```text
//! worker → coordinator    hello (name + grid manifest), baselines,
//!                         ready, heartbeat, result
//! coordinator → worker    welcome | reject, lease, idle, done, abort
//! ```
//!
//! Workers *pull*: after `welcome`, a worker sends its per-seed honest
//! `baselines` (cross-checked bit-for-bit across workers, like the
//! fragment merge), then loops `ready` → `lease`/`idle`/`done`. A
//! `result` frame carries the lease's evaluated cells in the same
//! shape as the fragment format's `cells` array. Integers are parsed
//! through the same i128-accumulator JSON layer as fragments, unknown
//! keys are ignored, and an unparsable line costs the sender its
//! connection — never the run.
//!
//! A lease is re-queued when its connection dies (EOF) or its deadline
//! lapses (no `result`/`heartbeat` within the lease timeout), with
//! doubling backoff and a bounded number of grants; late results of
//! re-issued leases are tolerated when bit-identical and fatal
//! (`DuplicateCell`) when conflicting. Because every cell's RNG seed
//! depends only on `(seed, agent, deviation)`, the merged report is
//! byte-identical to the monolithic sweep whatever the worker count,
//! scheduling, or failures — the same `--expect-fingerprint` baseline
//! gates both `--merge` and `--coordinate`. See the `sweep_bench`
//! binary docs for CLI flags, fault-injection clauses, and exit codes,
//! and `specfaith::scenario::Coordinator` for the library API.

use rand::rngs::StdRng;
use rand::SeedableRng;
use specfaith_fpss::traffic::TrafficMatrix;
use specfaith_graph::costs::CostVector;
use specfaith_graph::generators::random_biconnected;
use specfaith_graph::topology::Topology;

/// A reproducible benchmark instance: topology, costs, traffic.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The topology.
    pub topo: Topology,
    /// True transit costs.
    pub costs: CostVector,
    /// Execution traffic.
    pub traffic: TrafficMatrix,
}

/// Builds the standard random instance for size `n` and `seed`.
pub fn instance(n: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = random_biconnected(n, n / 2, &mut rng);
    let costs = CostVector::random(n, 1, 20, &mut rng);
    let traffic = TrafficMatrix::random(n, (n / 2).max(2), 3, &mut rng);
    Instance {
        topo,
        costs,
        traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_reproducible_and_biconnected() {
        let a = instance(10, 3);
        let b = instance(10, 3);
        assert_eq!(a.topo, b.topo);
        assert_eq!(a.costs, b.costs);
        assert_eq!(a.traffic, b.traffic);
        assert!(a.topo.is_biconnected());
    }
}
