//! # specfaith-bench
//!
//! Shared helpers for the Criterion benchmarks and the experiment runner
//! (`run_experiments`), which regenerates every experiment table in
//! EXPERIMENTS.md.

use rand::rngs::StdRng;
use rand::SeedableRng;
use specfaith_fpss::traffic::TrafficMatrix;
use specfaith_graph::costs::CostVector;
use specfaith_graph::generators::random_biconnected;
use specfaith_graph::topology::Topology;

/// A reproducible benchmark instance: topology, costs, traffic.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The topology.
    pub topo: Topology,
    /// True transit costs.
    pub costs: CostVector,
    /// Execution traffic.
    pub traffic: TrafficMatrix,
}

/// Builds the standard random instance for size `n` and `seed`.
pub fn instance(n: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = random_biconnected(n, n / 2, &mut rng);
    let costs = CostVector::random(n, 1, 20, &mut rng);
    let traffic = TrafficMatrix::random(n, (n / 2).max(2), 3, &mut rng);
    Instance {
        topo,
        costs,
        traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_reproducible_and_biconnected() {
        let a = instance(10, 3);
        let b = instance(10, 3);
        assert_eq!(a.topo, b.topo);
        assert_eq!(a.costs, b.costs);
        assert_eq!(a.traffic, b.traffic);
        assert!(a.topo.is_biconnected());
    }
}
