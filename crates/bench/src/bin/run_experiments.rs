//! Regenerates every experiment table in EXPERIMENTS.md.
//!
//! Every simulation below goes through the unified scenario API
//! (`specfaith::scenario`): one builder call per instance, with the
//! mechanism as a knob.
//!
//! ```sh
//! cargo run --release -p specfaith-bench --bin run_experiments          # all
//! cargo run --release -p specfaith-bench --bin run_experiments e6 e8   # some
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use specfaith::scenario::{Catalog, CostModel, Mechanism, Scenario, TopologySource, TrafficModel};
use specfaith_bench::instance;
use specfaith_core::equilibrium::EquilibriumSuite;
use specfaith_core::faithfulness::FaithfulnessCertificate;
use specfaith_core::id::NodeId;
use specfaith_core::mechanism::{check_strategyproof, DirectMechanism, MisreportGrid};
use specfaith_core::money::{Cost, Money};
use specfaith_core::vcg::{SecondPriceSelection, VcgMechanism};
use specfaith_crypto::auth::ChannelKey;
use specfaith_faithful::metrics::measure_overhead;
use specfaith_faithful::penalty::PenaltyPolicy;
use specfaith_fpss::deviation::standard_catalog;
use specfaith_fpss::pricing::RoutingProblem;
use specfaith_fpss::traffic::Flow;
use specfaith_graph::cache::RouteCache;
use specfaith_graph::costs::CostVector;
use specfaith_graph::generators::{figure1, Figure1};
use specfaith_graph::lcp::lcp_tree;

const NODE_NAMES: [&str; 6] = ["A", "B", "C", "D", "Z", "X"];

fn name(id: NodeId) -> &'static str {
    NODE_NAMES[id.index()]
}

fn figure1_traffic(net: &Figure1) -> Vec<Flow> {
    vec![
        Flow {
            src: net.x,
            dst: net.z,
            packets: 5,
        },
        Flow {
            src: net.d,
            dst: net.z,
            packets: 5,
        },
        Flow {
            src: net.z,
            dst: net.x,
            packets: 3,
        },
    ]
}

/// The standard Figure 1 scenario under either mechanism.
fn figure1_scenario(mechanism: Mechanism) -> Scenario {
    let net = figure1();
    Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::Flows(figure1_traffic(&net)))
        .mechanism(mechanism)
        .build()
}

/// A benchmark `instance(n, seed)` lifted into a scenario.
fn instance_scenario(n: usize, seed: u64, mechanism: Mechanism) -> Scenario {
    let inst = instance(n, seed);
    Scenario::builder()
        .topology(TopologySource::Explicit(inst.topo))
        .costs(CostModel::Explicit(inst.costs))
        .traffic(TrafficModel::Flows(inst.traffic.flows().to_vec()))
        .mechanism(mechanism)
        .build()
}

fn e1_figure1_lcps() {
    println!("== E1: Figure 1 — LCPs from Z and the paper's stated costs ==");
    let net = figure1();
    for entry in lcp_tree(&net.topology, &net.costs, net.z).iter().flatten() {
        if entry.destination() == net.z {
            continue;
        }
        let path: Vec<&str> = entry.nodes().iter().map(|&v| name(v)).collect();
        println!(
            "  Z -> {:<2} via {:<10} cost {}",
            name(entry.destination()),
            path.join("-"),
            entry.cost()
        );
    }
    let routes = RouteCache::shared(&net.topology, &net.costs);
    let xz = routes.path(net.x, net.z).expect("connected");
    let zd = routes.path(net.z, net.d).expect("connected");
    let bd = routes.path(net.b, net.d).expect("connected");
    println!(
        "  paper checks: cost(X→Z)={} (paper: 2), cost(Z→D)={} (paper: 1), cost(B→D)={} (paper: 0)",
        xz.cost(),
        zd.cost(),
        bd.cost()
    );
}

fn e2_example1_manipulation() {
    println!("\n== E2: Example 1 — C's lie under naive vs VCG pricing ==");
    let net = figure1();
    let true_c = net.costs.cost(net.c).value();
    let flows = [(net.x, net.z, 10u64), (net.d, net.z, 10u64)];
    println!(
        "  {:>8} {:>9} {:>12} {:>10}",
        "declared", "X-Z LCP", "naive util", "VCG util"
    );
    for (declared, naive, vcg) in
        specfaith_fpss::naive::example1_sweep(&net.topology, &net.costs, &flows, net.c, 8)
    {
        let lied = net.costs.with_cost(net.c, Cost::new(declared));
        let lied_routes = RouteCache::shared(&net.topology, &lied);
        let path = lied_routes.path(net.x, net.z).expect("biconnected");
        let via = if path.transit_nodes().contains(&net.c) {
            "X-D-C-Z"
        } else {
            "X-A-Z"
        };
        let marker = if declared == true_c { "  <- truth" } else { "" };
        println!(
            "  {declared:>8} {via:>9} {:>12} {:>10}{marker}",
            naive.value(),
            vcg.value()
        );
    }
    println!("  (naive pricing rewards the lie; VCG utility is maximized at the truth)");
}

fn e3_strategyproofness() {
    println!("\n== E3: FPSS centralized mechanism strategyproofness sweep ==");
    println!(
        "  {:>4} {:>9} {:>7} {:>11}",
        "n", "profiles", "checks", "violations"
    );
    for n in [6usize, 10, 14, 18] {
        let inst = instance(n, n as u64);
        let flows = inst
            .traffic
            .flows()
            .iter()
            .map(|f| (f.src, f.dst, f.packets))
            .collect();
        let mech = VcgMechanism::new(RoutingProblem::new(inst.topo.clone(), flows));
        let mut rng = StdRng::seed_from_u64(n as u64);
        let profiles: Vec<Vec<Cost>> = (0..4)
            .map(|_| CostVector::random(n, 0, 25, &mut rng).as_slice().to_vec())
            .collect();
        let report = check_strategyproof(&mech, &profiles, &MisreportGrid::standard());
        println!(
            "  {:>4} {:>9} {:>7} {:>11}",
            n,
            profiles.len(),
            report.checks,
            report.violations.len()
        );
        assert!(report.is_strategyproof());
    }
}

fn e4_convergence() {
    println!("\n== E4: distributed FPSS == centralized VCG reference ==");
    println!(
        "  {:>4} {:>6} {:>9} {:>10} {:>7}",
        "n", "seeds", "converged", "msgs(avg)", "match"
    );
    for n in [6usize, 8, 12, 16, 24] {
        let mut all_match = true;
        let mut msgs = 0u64;
        let seeds = 3u64;
        for seed in 0..seeds {
            let scenario = instance_scenario(n, seed * 100 + n as u64, Mechanism::Plain);
            let run = scenario.run(seed);
            all_match &= run.tables_match_centralized() == Some(true) && !run.truncated;
            msgs += run.stats.total_msgs();
        }
        println!(
            "  {:>4} {:>6} {:>9} {:>10} {:>7}",
            n,
            seeds,
            "yes",
            msgs / seeds,
            all_match
        );
        assert!(all_match);
    }
}

fn catalog_sweep_table(scenario: &Scenario) {
    // Shared table printer for E5/E6: rows = deviations, sweeping
    // deviants; per deviation, show the most profitable deviant.
    let net = figure1();
    let faithful = scenario.run(3);
    let specs: Vec<String> = standard_catalog(NodeId::new(0))
        .iter()
        .map(|s| s.spec().name().to_string())
        .collect();
    println!(
        "  {:<36} {:>9} {:>12} {:>9}",
        "deviation (best deviant)", "faithful", "deviant", "detected"
    );
    for spec_name in &specs {
        let mut best: Option<(NodeId, Money, Money, bool)> = None;
        for deviant in net.topology.nodes() {
            let strategy = standard_catalog(deviant)
                .into_iter()
                .find(|s| s.spec().name() == *spec_name)
                .expect("stable names");
            let run = scenario.run_with_deviant(deviant, strategy, 3);
            let faithful_u = faithful.utilities[deviant.index()];
            let deviant_u = run.utilities[deviant.index()];
            let gain = deviant_u - faithful_u;
            if best.as_ref().is_none_or(|(_, f, d, _)| gain > *d - *f) {
                best = Some((deviant, faithful_u, deviant_u, run.detected));
            }
        }
        let (who, f, d, det) = best.expect("six nodes");
        let verdict = if d > f { "PROFITABLE" } else { "no gain" };
        println!(
            "  {:<36} {:>9} {:>12} {:>9}   {}",
            format!("{spec_name} ({})", name(who)),
            f.value(),
            d.value(),
            det,
            verdict
        );
    }
}

fn e5_plain_unfaithful() {
    println!("\n== E5: plain FPSS — §4.3 manipulations are profitable ==");
    let scenario = figure1_scenario(Mechanism::Plain);
    catalog_sweep_table(&scenario);
    println!("  (detection column for plain FPSS = tables visibly corrupted; nobody acts on it)");
}

fn e6_faithful_equilibrium() {
    println!("\n== E6: faithful extension — the same catalog is unprofitable (Theorem 1) ==");
    let scenario = figure1_scenario(Mechanism::faithful());
    catalog_sweep_table(&scenario);
    let report = scenario.equilibrium_report(3, &Catalog::standard());
    println!(
        "  sweep: {} deviations, ex post Nash: {}, strong-CC: {}, strong-AC: {}, IC: {}",
        report.outcomes.len(),
        report.is_ex_post_nash(),
        report.strong_cc_holds(),
        report.strong_ac_holds(),
        report.ic_holds()
    );
    assert!(report.is_ex_post_nash());
}

fn e7_detection_coverage() {
    println!("\n== E7: detection coverage ==");
    let scenario = figure1_scenario(Mechanism::faithful());
    let report = scenario.equilibrium_report(3, &Catalog::standard());
    let total = report.outcomes.len();
    let detected = report.outcomes.iter().filter(|o| o.detected).count();
    let undetected_profitable = report
        .outcomes
        .iter()
        .filter(|o| !o.detected && o.strictly_profitable())
        .count();
    println!("  deviations tested: {total}");
    println!(
        "  detected:          {detected} ({:.1}%)",
        100.0 * detected as f64 / total as f64
    );
    println!(
        "  undetected:        {} (all no-ops or legitimate misreports)",
        total - detected
    );
    println!("  undetected AND profitable: {undetected_profitable} (must be 0)");
    assert_eq!(undetected_profitable, 0);
}

fn e8_overhead() {
    println!("\n== E8: the price of faithfulness (checker redundancy + checkpoints) ==");
    for n in [6usize, 8, 12, 16, 24, 32] {
        let inst = instance(n, 11 + n as u64);
        let report = measure_overhead(&inst.topo, &inst.costs, &inst.traffic, 11);
        println!("  {report}");
    }
}

fn e9_restart_liveness() {
    println!("\n== E9: restart policy liveness ==");
    let net = figure1();
    let scenario = figure1_scenario(Mechanism::faithful());
    let honest = scenario.run(1);
    println!(
        "  honest network:      restarts={} green-lighted={} halted={}",
        honest.restarts(),
        honest.green_lighted(),
        honest.halted()
    );
    let persistent = scenario.run_with_deviant(
        net.c,
        Box::new(specfaith_fpss::deviation::SpoofShortRoutes),
        1,
    );
    println!(
        "  persistent deviant:  restarts={} green-lighted={} halted={}  (utilities zeroed)",
        persistent.restarts(),
        persistent.green_lighted(),
        persistent.halted()
    );
}

fn e10_penalty_calibration() {
    println!("\n== E10: ε-above penalty calibration ==");
    let policy = PenaltyPolicy::new(Money::new(1));
    println!(
        "  {:>8} {:>9} {:>22}",
        "gain g", "p* = g/(g+ε)", "E[Δu] at p=1.0"
    );
    for gain in [1i64, 10, 100, 1000, 100_000] {
        let g = Money::new(gain);
        println!(
            "  {:>8} {:>12.5} {:>19.1}",
            gain,
            policy.deterrence_threshold(g),
            policy.expected_deviation_gain(g, 1.0)
        );
    }
    println!("  (full checker coverage gives p = 1, so any ε > 0 strictly deters)");
}

fn e11_signed_channel() {
    println!("\n== E11: signed bank channel — tampering and replay are rejected ==");
    let key = ChannelKey::derive(b"bank-secret", 4);
    let env = key.seal(1, b"owes n2: 500".to_vec());
    println!("  genuine envelope:   {:?}", key.open(&env, 0).is_ok());
    let mut tampered = env.clone();
    tampered.payload = b"owes n2: 005".to_vec();
    println!(
        "  tampered payload:   rejected = {:?}",
        key.open(&tampered, 0).is_err()
    );
    let mut forged = env.clone();
    forged.sender = 9;
    println!(
        "  forged sender:      rejected = {:?}",
        key.open(&forged, 0).is_err()
    );
    println!(
        "  replayed envelope:  rejected = {:?}",
        key.open(&env, 1).is_err()
    );
}

fn e12_leader_election() {
    println!("\n== E12: framework generality — §3's leader election, faithful ==");
    println!(
        "  {:>4} {:>9} {:>7} {:>11}",
        "n", "profiles", "checks", "violations"
    );
    let mut rng = StdRng::seed_from_u64(12);
    for n in [4usize, 8, 16] {
        let mech = SecondPriceSelection::new(n);
        let profiles: Vec<Vec<Money>> = (0..30)
            .map(|_| {
                (0..n)
                    .map(|_| Money::new(rand::Rng::gen_range(&mut rng, 0..100)))
                    .collect()
            })
            .collect();
        let report = check_strategyproof(&mech, &profiles, &MisreportGrid::standard());
        println!(
            "  {:>4} {:>9} {:>7} {:>11}",
            n,
            profiles.len(),
            report.checks,
            report.violations.len()
        );
        assert!(report.is_strategyproof());
    }
    let mech = SecondPriceSelection::new(4);
    let reports = vec![Money::new(9), Money::new(4), Money::new(7), Money::new(30)];
    let outcome = mech.outcome(&reports);
    println!(
        "  sample election: costs {:?} -> leader {} paid {}",
        reports.iter().map(|m| m.value()).collect::<Vec<_>>(),
        outcome.allocation,
        outcome.payments[outcome.allocation]
    );

    // The distributed version: flooded declarations, redundant tallies,
    // signed reports, bank certification.
    use specfaith_faithful::election::{ElectionSim, HonestVoter};
    let costs = vec![
        Money::new(20),
        Money::new(40),
        Money::new(10),
        Money::new(35),
        Money::new(60),
    ];
    let dist = ElectionSim::new(specfaith_graph::generators::ring(5), costs);
    let honest = dist.run_honest(1);
    println!(
        "  distributed (5-ring): certified outcome {:?}, all reports agreed",
        honest.outcome
    );
    let _ = HonestVoter;
}

fn e13_other_failure_models() {
    println!("\n== E13: §5 — non-rational failures vs the faithfulness machinery ==");
    let net = figure1();
    let scenario = figure1_scenario(Mechanism::faithful());
    let faithful = scenario.run(1);
    let surplus: Money = faithful.utilities.iter().copied().sum();

    let failstop =
        scenario.run_with_deviant(net.c, Box::new(specfaith_fpss::deviation::FailStop), 1);
    println!(
        "  fail-stop node C:    detected={} halted={}  collective surplus forfeited: {}",
        failstop.detected,
        failstop.halted(),
        surplus
    );

    let drop_flood =
        scenario.run_with_deviant(net.c, Box::new(specfaith_fpss::deviation::DropCostFlood), 1);
    println!(
        "  silent flood relay:  detected={} green-lighted={}  (biconnectivity routes around it)",
        drop_flood.detected,
        drop_flood.green_lighted()
    );
    println!("  (the paper's open problem: fail-stop is punished like manipulation, and");
    println!("   the punishment is collective — every honest node loses its surplus too)");
}

fn e14_parallel_sweep() {
    println!("\n== E14: the scenario sweep — seed grid, parallel, deterministic ==");
    let scenario = figure1_scenario(Mechanism::faithful());
    let catalog = Catalog::standard();
    let seeds: Vec<u64> = (0..4).collect();

    let start = std::time::Instant::now();
    let parallel = scenario.sweep(&seeds, &catalog);
    let parallel_time = start.elapsed();

    let start = std::time::Instant::now();
    let serial = scenario.sweep_serial(&seeds, &catalog);
    let serial_time = start.elapsed();

    println!(
        "  {} seeds x {} cells: serial {:?}, parallel {:?} ({} threads)",
        seeds.len(),
        scenario.num_nodes() * catalog.len(),
        serial_time,
        parallel_time,
        rayon::current_num_threads()
    );
    println!("  byte-identical: {}", parallel == serial);
    println!("  {parallel}");
    assert!(parallel == serial && parallel.is_ex_post_nash());
}

fn certificate_summary() {
    println!("\n== Faithfulness certificate (Proposition 2 assembled) ==");
    let net = figure1();
    let traffic = figure1_traffic(&net);
    let flows = traffic.iter().map(|f| (f.src, f.dst, f.packets)).collect();
    let mech = VcgMechanism::new(RoutingProblem::new(net.topology.clone(), flows));
    let mut rng = StdRng::seed_from_u64(20);
    let mut profiles = vec![net.costs.as_slice().to_vec()];
    for _ in 0..3 {
        profiles.push(CostVector::random(6, 0, 25, &mut rng).as_slice().to_vec());
    }
    let sp = check_strategyproof(&mech, &profiles, &MisreportGrid::standard());
    let catalog = Catalog::standard();
    let mut suite = EquilibriumSuite::new();
    for (i, profile) in profiles.iter().enumerate() {
        let costs: CostVector = profile.iter().copied().collect();
        let scenario = Scenario::builder()
            .topology(TopologySource::Figure1)
            .costs(CostModel::Explicit(costs))
            .traffic(TrafficModel::Flows(traffic.clone()))
            .mechanism(Mechanism::faithful())
            .build();
        suite.push(
            format!("profile-{i}"),
            scenario.equilibrium_report(1, &catalog),
        );
    }
    let certificate = FaithfulnessCertificate::assemble(sp.is_strategyproof(), &suite);
    print!("{certificate}");
    assert!(certificate.is_faithful());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |key: &str| args.is_empty() || args.iter().any(|a| a == key);

    if want("e1") {
        e1_figure1_lcps();
    }
    if want("e2") {
        e2_example1_manipulation();
    }
    if want("e3") {
        e3_strategyproofness();
    }
    if want("e4") {
        e4_convergence();
    }
    if want("e5") {
        e5_plain_unfaithful();
    }
    if want("e6") {
        e6_faithful_equilibrium();
    }
    if want("e7") {
        e7_detection_coverage();
    }
    if want("e8") {
        e8_overhead();
    }
    if want("e9") {
        e9_restart_liveness();
    }
    if want("e10") {
        e10_penalty_calibration();
    }
    if want("e11") {
        e11_signed_channel();
    }
    if want("e12") {
        e12_leader_election();
    }
    if want("e13") {
        e13_other_failure_models();
    }
    if want("e14") {
        e14_parallel_sweep();
    }
    if want("cert") {
        certificate_summary();
    }
}
