//! The sweep regression benchmark behind `BENCH_sweep.json` and the CI
//! bench gates.
//!
//! Measures Theorem-1 deviation-sweep throughput on the standard
//! `n = 64` random biconnected instance under the plain mechanism, in two
//! arms on the same machine:
//!
//! * **optimized** — the real `Scenario::sweep_serial` path: run-scoped
//!   `RouteCache` reference tables plus the destination-scoped
//!   incremental recompute on honest nodes;
//! * **reference** — sampled cells through the retained pre-optimization
//!   paths (`run_plain_uncached` per-pair-query tables, and a bench-only
//!   honest strategy that reports `is_faithful() == false` so every node
//!   takes the full-table recompute on every message, exactly as
//!   table-transforming deviants still do).
//!
//! The regression gate compares the **ratio** of the two arms (`speedup`),
//! which is machine-independent: both arms run on the same host in the
//! same process, so host speed and load cancel out.
//!
//! ```sh
//! sweep_bench [--quick | --large | --stream] [--net ideal|shared] [--n N] \
//!             [--out BENCH_sweep.json] [--check baseline.json]
//! sweep_bench [--quick] --shard i/N [--emit-shard-report fragment.json]
//! sweep_bench --merge f0.json f1.json ... [--out merged.json] \
//!             [--expect-fingerprint committed.json] \
//!             [--timing-out timing.json]
//! sweep_bench [--quick] --coordinate N --listen ADDR [--lease-cells K] \
//!             [--lease-timeout-ms MS] [--max-attempts K] [--out merged.json] \
//!             [--expect-fingerprint committed.json] [--expect-reissued N]
//! sweep_bench [--quick] --worker ADDR [--worker-name NAME] [--fault CLAUSE]...
//! ```
//!
//! `--quick` trims the swept catalog (CI-sized run, same instance and
//! mechanics). `--large` switches to the large-`n` smoke (default
//! `n = 1024` uniform-cost scale-free): one honest run, one
//! agent-sampled quick sweep, and a cached-vs-uncached reference-table
//! ratio over sampled sources (the uncached arm at full `n` would take
//! hours). `--check` exits nonzero when the measured speedup falls more
//! than 20% below the committed baseline's.
//!
//! `--stream` measures the streaming service mode
//! ([`Scenario::stream_session`]): checkpoint each preset at its
//! converged fixed point, stream a deterministic sequence of single-node
//! cost re-declarations, and report **updates/sec** — incremental
//! re-convergence plus per-event reference re-verification — against a
//! cold-rebuild arm that reconverges the whole network from scratch at
//! sampled points of the same sequence (asserting the streamed tables
//! byte-identical to the cold fixed point at each sample). Two presets,
//! both under the ideal network: the standard `n = 64` random
//! biconnected instance (full reference check) and the `n = 1024`
//! uniform-cost scale-free large preset (sampled reference check, as in
//! `--large`). The gate compares each preset's incremental-vs-cold
//! speedup ratio — machine-independent like the sweep gate — against
//! `crates/bench/baselines/BENCH_sweep_stream.json` with the same >20%
//! floor and exit-code scheme.
//!
//! # Distributed (sharded) sweeps
//!
//! `--shard i/N` runs shard `i` of an `N`-way partition of the standard
//! `n = 64` sweep grid (the same grid the `--quick`/full optimized arm
//! sweeps, ideal network only) and writes a
//! [`SweepFragment`] JSON document —
//! the shard manifest plus evaluated cells and a per-shard timing
//! summary — to `--emit-shard-report` (default
//! `BENCH_sweep_shard_<i>of<N>.json`). Shard mode measures nothing
//! against a reference arm and is never gated; it exists to fan the grid
//! out across processes or machines. See the `specfaith-bench` crate
//! docs for the fragment format.
//!
//! `--merge` reads fragment files (in any order), recombines them with
//! [`SweepFragment::merge`](specfaith::scenario::SweepFragment::merge) —
//! refusing incomplete, overlapping, or cross-instance fragment sets —
//! prints the per-shard skew table, and writes the merged report (with
//! its `fnv1a64` content fingerprint) to `--out` (default
//! `SWEEP_merged.json`). With `--expect-fingerprint`, the merged
//! report's fingerprint is compared against the committed one
//! (`crates/bench/baselines/SWEEP_fingerprint_quick.json` in CI): any
//! divergence — a nondeterministic cell, a stale baseline, a changed
//! grid — fails the run. The merged report is byte-identical to the
//! single-process sweep, so the fingerprint gate proves the sharding
//! contract end to end on every PR. `--timing-out` additionally writes
//! the per-shard timing summary (cells, wall seconds, cells/s, baseline
//! seconds per shard) as its own small JSON document — CI uploads it as
//! an artifact so shard skew is inspectable without downloading the full
//! merged report.
//!
//! # Live coordination (work stealing)
//!
//! Where `--shard`/`--merge` partition the grid *statically* up front,
//! `--coordinate N --listen ADDR` serves the same grid *dynamically*:
//! the coordinator splits the cells into small contiguous leases and
//! `--worker ADDR` processes pull them as fast as they finish, so a slow
//! or killed worker's share flows to the others (see the coordinator
//! subsection of the `specfaith-bench` crate docs and the README for the
//! `specfaith-coord-v1` frame protocol and lease/retry semantics).
//! `ADDR` is `unix:<path>` or `tcp:<host>:<port>`. The coordinator
//! merges through the same [`SweepFragment::merge`] semantics as
//! `--merge`, so the final report and its fingerprint are byte-identical
//! to the monolithic sweep regardless of worker count, scheduling, or
//! mid-run failures; `--expect-fingerprint` gates exactly as in
//! `--merge`, and `--expect-reissued N` additionally asserts that at
//! least `N` leases were observably re-issued (CI's scripted
//! worker-kill check). `--fault` clauses inject deterministic worker
//! failures — `kill-after-cells=K`, `hang-after-cells=K`,
//! `delay-per-cell-ms=MS`, `delay-result=N:MS`, `duplicate-result=N`,
//! `corrupt-result=N` — for drills and tests; a fault-plan ending is a
//! scripted outcome, so the worker still exits `0`.
//!
//! # Exit codes
//!
//! * `0` — success.
//! * `1` — gate failure: measured speedup fell below the committed
//!   floor, the merged fingerprint diverged from the committed one, or
//!   `--expect-reissued` saw fewer re-issued leases than promised.
//! * `2` — usage, I/O, or malformed-input errors (bad flags, unreadable
//!   or mismatched `--check` baselines, unparsable fragments, bind or
//!   connect failures, a worker rejected at `hello`, a coordinator with
//!   no workers). Distinct from `1` so CI can tell "the gate tripped"
//!   from "the gate never ran".
//! * `3` — fragment merge conflict (missing/duplicate shards or cells,
//!   cross-instance mixes, baseline disagreements), a lease exhausting
//!   its retry budget, or a worker told `abort` by a failing
//!   coordinator.
//!
//! `--net shared` runs both arms under the congested fair-sharing
//! network preset ([`NetModel::congested`]) instead of the ideal model —
//! a data point for how much of the sweep's cost is protocol work vs
//! network simulation. Because every shared-net cell simulates byte-level
//! contention (fair-sharing re-schedules scale with concurrent flights,
//! orders of magnitude more event churn than Ideal at `n = 64`), the
//! shared optimized arm samples agents like the `--large` smoke instead
//! of sweeping all `n` deviants; the JSON's `cells` and `sampled_agents`
//! fields record the grid actually run. Under [`NetModel::congested`]'s
//! 1 MB/s links this instance's routing chatter outruns serialization
//! (congestion collapse: the queue grows without bound and tables never
//! converge), so every shared-net cell runs to the `MAX_EVENTS` budget —
//! the arms compare throughput at the same budget rather than to
//! convergence. Shared-net numbers are recorded but **never gated**: the
//! regression gate only applies to `--net ideal` (the default), because
//! the shared model's re-scheduling load makes the ratio sensitive to
//! traffic shape, not just caching.

use specfaith::scenario::{
    cell_seed, run_worker, CacheScope, Catalog, CoordAddr, CoordConfig, CoordError, CoordListener,
    Coordinator, CostModel, FaultPlan, Mechanism, NetModel, ReferenceCheck, Scenario,
    ScenarioBuilder, ShardSpec, StreamStatus, SweepFragment, TopologyEvent, TopologySource,
    TrafficModel, WorkerConfig, WorkerError,
};
use specfaith_bench::instance;
use specfaith_core::id::NodeId;
use specfaith_fpss::deviation::{standard_catalog, FullRecomputeFaithful, MisreportCost};
use specfaith_fpss::pricing::{expected_tables_for, expected_tables_uncached_for};
use specfaith_fpss::runner::{run_plain_uncached, PlainConfig};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const N: usize = 64;
const INSTANCE_SEED: u64 = 2004;
const SWEEP_SEED: u64 = 7;
/// Node count of the `--large` smoke (overridable with `--n`).
const LARGE_N: usize = 1024;
/// Instance seed of the large smoke (a distinct trajectory from the
/// standard n=64 instance).
const LARGE_INSTANCE_SEED: u64 = 2026;
/// Sources measured by the large mode's cached arm.
const LARGE_CACHED_SOURCES: usize = 64;
/// Sources measured by the large mode's uncached reference arm (a full
/// uncached source costs seconds even alone; all `n` would take hours).
const LARGE_REFERENCE_SOURCES: usize = 2;
/// Event budget per cell. Construction-corrupting deviants (spoofed
/// routes, dropped forwards) keep the routing iteration churning and
/// would otherwise run to the 5M-event engine default, dominating the
/// measurement; honest convergence on this instance takes ~160k events,
/// so the cap bounds pathological cells without touching the honest path.
const MAX_EVENTS: u64 = 600_000;
/// Catalog size swept in `--quick` mode (full mode sweeps all 13).
const QUICK_DEVIATIONS: usize = 2;
/// Agents swept under `--net shared` (node 0 and the last node, the
/// same sampling shape as the `--large` smoke): a full `n`-deviant grid
/// under fair-sharing contention would take hours per arm.
const SHARED_AGENTS: [usize; 2] = [0, N - 1];
/// Reference-arm sample cells: quick = 1 (the honest baseline cell),
/// full = 2 (baseline + one deviation cell).
const QUICK_REFERENCE_CELLS: usize = 1;
const FULL_REFERENCE_CELLS: usize = 2;
/// Cost re-declaration events streamed per `--stream` preset.
const STREAM_EVENTS_N64: usize = 64;
const STREAM_EVENTS_N1024: usize = 8;
/// Cold-rebuild samples per `--stream` preset: each is a full
/// from-scratch convergence plus reference verification (the work
/// streaming avoids), so the cold arm samples the event sequence
/// instead of replaying all of it — at `n = 1024` one cold rebuild
/// takes minutes.
const STREAM_COLD_RUNS_N64: usize = 8;
const STREAM_COLD_RUNS_N1024: usize = 1;

/// The one-screen usage summary printed (to stderr) with every argument
/// error, so a bad invocation in CI is self-explaining.
const USAGE: &str = "\
usage: sweep_bench [--quick | --large | --stream] [--net ideal|shared] [--n N]
                   [--out PATH] [--check baseline.json]
       sweep_bench [--quick] --shard i/N [--emit-shard-report fragment.json]
       sweep_bench --merge f0.json f1.json ... [--out merged.json]
                   [--expect-fingerprint committed.json] [--timing-out timing.json]
       sweep_bench [--quick] --coordinate N --listen ADDR [--lease-cells K]
                   [--lease-timeout-ms MS] [--max-attempts K] [--out merged.json]
                   [--expect-fingerprint committed.json] [--expect-reissued N]
       sweep_bench [--quick] --worker ADDR [--worker-name NAME] [--fault CLAUSE]...
ADDR is unix:<path> or tcp:<host>:<port>. Fault clauses: kill-after-cells=K,
hang-after-cells=K, delay-per-cell-ms=MS, delay-result=N:MS, duplicate-result=N,
corrupt-result=N.";

#[derive(Debug)]
struct Args {
    quick: bool,
    large: bool,
    stream: bool,
    net: String,
    n: Option<usize>,
    out: Option<String>,
    check: Option<String>,
    shard: Option<ShardSpec>,
    emit_shard_report: Option<String>,
    merge: Vec<String>,
    expect_fingerprint: Option<String>,
    timing_out: Option<String>,
    coordinate: Option<usize>,
    listen: Option<String>,
    worker: Option<String>,
    worker_name: Option<String>,
    faults: Vec<String>,
    lease_cells: Option<usize>,
    lease_timeout_ms: Option<u64>,
    max_attempts: Option<u32>,
    expect_reissued: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    parse_args_from(std::env::args().skip(1))
}

/// The whole argument grammar, fed an explicit iterator so the
/// validation paths are unit-testable without spawning processes.
fn parse_args_from(raw: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        large: false,
        stream: false,
        net: "ideal".to_string(),
        n: None,
        out: None,
        check: None,
        shard: None,
        emit_shard_report: None,
        merge: Vec::new(),
        expect_fingerprint: None,
        timing_out: None,
        coordinate: None,
        listen: None,
        worker: None,
        worker_name: None,
        faults: Vec::new(),
        lease_cells: None,
        lease_timeout_ms: None,
        max_attempts: None,
        expect_reissued: None,
    };
    let mut it = raw.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--large" => args.large = true,
            "--stream" => args.stream = true,
            "--net" => args.net = it.next().ok_or("--net needs ideal|shared")?,
            "--n" => {
                args.n = Some(
                    it.next()
                        .ok_or("--n needs a count")?
                        .parse()
                        .map_err(|e| format!("--n: {e}"))?,
                )
            }
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--check" => args.check = Some(it.next().ok_or("--check needs a path")?),
            "--shard" => {
                args.shard = Some(ShardSpec::parse(
                    &it.next().ok_or("--shard needs an i/N spec")?,
                )?)
            }
            "--emit-shard-report" => {
                args.emit_shard_report = Some(it.next().ok_or("--emit-shard-report needs a path")?)
            }
            "--merge" => {
                while let Some(path) = it.peek() {
                    if path.starts_with("--") {
                        break;
                    }
                    args.merge.push(it.next().expect("peeked"));
                }
                if args.merge.is_empty() {
                    return Err("--merge needs one or more fragment paths".into());
                }
            }
            "--expect-fingerprint" => {
                args.expect_fingerprint =
                    Some(it.next().ok_or("--expect-fingerprint needs a path")?)
            }
            "--timing-out" => args.timing_out = Some(it.next().ok_or("--timing-out needs a path")?),
            "--coordinate" => {
                let count: usize = it
                    .next()
                    .ok_or("--coordinate needs a worker count")?
                    .parse()
                    .map_err(|e| format!("--coordinate: {e}"))?;
                if count == 0 {
                    return Err("--coordinate needs at least one worker".into());
                }
                args.coordinate = Some(count);
            }
            "--listen" => args.listen = Some(it.next().ok_or("--listen needs an address")?),
            "--worker" => args.worker = Some(it.next().ok_or("--worker needs an address")?),
            "--worker-name" => {
                args.worker_name = Some(it.next().ok_or("--worker-name needs a name")?)
            }
            "--fault" => {
                let clause = it.next().ok_or("--fault needs a key=value clause")?;
                // Validate now so a typo fails before any work starts.
                FaultPlan::none().apply(&clause)?;
                args.faults.push(clause);
            }
            "--lease-cells" => {
                let cells: usize = it
                    .next()
                    .ok_or("--lease-cells needs a count")?
                    .parse()
                    .map_err(|e| format!("--lease-cells: {e}"))?;
                if cells == 0 {
                    return Err("--lease-cells must be at least 1".into());
                }
                args.lease_cells = Some(cells);
            }
            "--lease-timeout-ms" => {
                args.lease_timeout_ms = Some(
                    it.next()
                        .ok_or("--lease-timeout-ms needs milliseconds")?
                        .parse()
                        .map_err(|e| format!("--lease-timeout-ms: {e}"))?,
                )
            }
            "--max-attempts" => {
                let attempts: u32 = it
                    .next()
                    .ok_or("--max-attempts needs a count")?
                    .parse()
                    .map_err(|e| format!("--max-attempts: {e}"))?;
                if attempts == 0 {
                    return Err("--max-attempts must be at least 1".into());
                }
                args.max_attempts = Some(attempts);
            }
            "--expect-reissued" => {
                args.expect_reissued = Some(
                    it.next()
                        .ok_or("--expect-reissued needs a count")?
                        .parse()
                        .map_err(|e| format!("--expect-reissued: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if (args.quick as u8) + (args.large as u8) + (args.stream as u8) > 1 {
        return Err("--quick, --large, and --stream are mutually exclusive".into());
    }
    if !matches!(args.net.as_str(), "ideal" | "shared") {
        return Err(format!("--net must be ideal or shared, got {}", args.net));
    }
    if args.large && args.net != "ideal" {
        return Err("--large only supports --net ideal".into());
    }
    if args.stream {
        if args.net != "ideal" {
            return Err("--stream only supports --net ideal".into());
        }
        if args.n.is_some() {
            return Err("--stream runs fixed n=64 and n=1024 presets; drop --n".into());
        }
        if args.shard.is_some() {
            return Err("--stream excludes --shard".into());
        }
    }
    if !args.merge.is_empty()
        && (args.quick || args.large || args.stream || args.shard.is_some() || args.check.is_some())
    {
        return Err("--merge takes only --out, --expect-fingerprint, and --timing-out".into());
    }
    if args.expect_fingerprint.is_some() && args.merge.is_empty() && args.coordinate.is_none() {
        return Err("--expect-fingerprint only applies to --merge and --coordinate".into());
    }
    if args.timing_out.is_some() && args.merge.is_empty() {
        return Err("--timing-out only applies to --merge".into());
    }
    if args.shard.is_some() {
        if args.large {
            return Err("--shard applies to the n=64 grid; it excludes --large".into());
        }
        if args.net != "ideal" {
            return Err("--shard only supports --net ideal".into());
        }
        if args.check.is_some() {
            return Err("--shard runs are never gated; drop --check".into());
        }
    }
    if args.emit_shard_report.is_some() && args.shard.is_none() {
        return Err("--emit-shard-report only applies to --shard".into());
    }
    if args.coordinate.is_some() && args.worker.is_some() {
        return Err("--coordinate and --worker are mutually exclusive".into());
    }
    if args.coordinate.is_some() || args.worker.is_some() {
        let role = if args.coordinate.is_some() {
            "--coordinate"
        } else {
            "--worker"
        };
        if args.large || args.stream {
            return Err(format!(
                "{role} runs the n=64 grid; it excludes --large/--stream"
            ));
        }
        if args.shard.is_some() || !args.merge.is_empty() {
            return Err(format!("{role} excludes --shard and --merge"));
        }
        if args.net != "ideal" {
            return Err(format!("{role} only supports --net ideal"));
        }
        if args.check.is_some() {
            return Err(format!(
                "{role} runs are gated by --expect-fingerprint; drop --check"
            ));
        }
    }
    if args.coordinate.is_some() && args.listen.is_none() {
        return Err("--coordinate needs --listen ADDR".into());
    }
    if args.listen.is_some() && args.coordinate.is_none() {
        return Err("--listen only applies to --coordinate".into());
    }
    if (args.worker_name.is_some() || !args.faults.is_empty()) && args.worker.is_none() {
        return Err("--worker-name and --fault only apply to --worker".into());
    }
    if (args.lease_cells.is_some()
        || args.lease_timeout_ms.is_some()
        || args.max_attempts.is_some()
        || args.expect_reissued.is_some())
        && args.coordinate.is_none()
    {
        return Err(
            "--lease-cells, --lease-timeout-ms, --max-attempts, and --expect-reissued \
             only apply to --coordinate"
                .into(),
        );
    }
    Ok(args)
}

/// The `--large` smoke: an honest run plus an agent-sampled quick sweep
/// on the `n ≥ 1024` uniform-cost scale-free preset, and the
/// cached-vs-uncached reference-table ratio over sampled sources.
/// Returns `(speedup, json)`.
fn run_large(n: usize) -> (f64, String) {
    let scenario = ScenarioBuilder::large_scale_free(n)
        .costs(CostModel::Uniform(1))
        .instance_seed(LARGE_INSTANCE_SEED)
        .build();

    // Arm 1: the honest run (construction + sampled reference check).
    eprintln!("sweep_bench[large]: honest run at n={n}...");
    let started = Instant::now();
    let run = scenario.run(SWEEP_SEED);
    let honest_secs = started.elapsed().as_secs_f64();
    assert!(!run.truncated, "honest large-n run must converge in budget");
    assert_eq!(
        run.tables_match_centralized(),
        Some(true),
        "honest large-n run must match the centralized reference"
    );

    // Arm 2: the quick sweep — two sampled agents (a seed-clique hub and
    // the latest attachment) under one misreport deviation, in parallel.
    let catalog = Catalog::from_factory(|_| vec![Box::new(MisreportCost { delta: 5 })]);
    let agents = [0usize, n - 1];
    let sweep_cells = 1 + agents.len() * catalog.len();
    eprintln!("sweep_bench[large]: quick sweep — {sweep_cells} cells (incl. baseline)...");
    let started = Instant::now();
    let report = scenario.sweep_sampled(&[SWEEP_SEED], &catalog, &agents);
    let sweep_secs = started.elapsed().as_secs_f64();
    assert_eq!(report.total_deviations(), agents.len() * catalog.len());

    // Arm 3: the gated ratio — reference-table construction per source,
    // cached (sparse avoid-tree index, one scoped cache) vs uncached
    // (per-pair-query full recomputes), on sampled sources.
    let (topo, costs) = (scenario.topology(), scenario.costs());
    let cached_sources = ReferenceCheck::Sampled {
        sources: LARGE_CACHED_SOURCES,
    }
    .sources(n);
    eprintln!(
        "sweep_bench[large]: cached arm — {} reference sources...",
        cached_sources.len()
    );
    let scope = CacheScope::unbounded();
    let started = Instant::now();
    let routes = scope.cache(topo, costs);
    for &src in &cached_sources {
        let _ = expected_tables_for(&routes, src);
    }
    let cached_secs = started.elapsed().as_secs_f64();
    let cached_sps = cached_sources.len() as f64 / cached_secs;
    let avoid_trees = routes.avoid_trees_cached();
    assert!(
        avoid_trees < n * n / 4,
        "sparse avoid index must stay far below the n² worst case \
         ({avoid_trees} slots at n={n})"
    );

    let reference_sources = ReferenceCheck::Sampled {
        sources: LARGE_REFERENCE_SOURCES,
    }
    .sources(n);
    eprintln!(
        "sweep_bench[large]: reference arm — {} uncached sources...",
        reference_sources.len()
    );
    let started = Instant::now();
    for &src in &reference_sources {
        let _ = expected_tables_uncached_for(topo, costs, src);
    }
    let reference_secs = started.elapsed().as_secs_f64();
    let reference_sps = reference_sources.len() as f64 / reference_secs;

    let speedup = cached_sps / reference_sps;
    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"mode\": \"large\",\n  \"n\": {n},\n  \
         \"instance_seed\": {LARGE_INSTANCE_SEED},\n  \"sweep_seed\": {SWEEP_SEED},\n  \
         \"honest_secs\": {honest_secs:.3},\n  \"honest_msgs\": {honest_msgs},\n  \
         \"sweep_cells\": {sweep_cells},\n  \"sweep_secs\": {sweep_secs:.3},\n  \
         \"avoid_trees_cached\": {avoid_trees},\n  \
         \"cached_sources\": {cached_count},\n  \"cached_secs\": {cached_secs:.3},\n  \
         \"cached_sources_per_sec\": {cached_sps:.4},\n  \
         \"reference_sources\": {reference_count},\n  \
         \"reference_secs\": {reference_secs:.3},\n  \
         \"reference_sources_per_sec\": {reference_sps:.4},\n  \"speedup\": {speedup:.2}\n}}\n",
        honest_msgs = run.stats.total_msgs(),
        cached_count = cached_sources.len(),
        reference_count = reference_sources.len(),
    );
    println!(
        "sweep_bench[large]: honest {honest_secs:.1}s, sweep {sweep_secs:.1}s \
         ({sweep_cells} cells), cached {cached_sps:.2} src/s vs reference \
         {reference_sps:.4} src/s, speedup {speedup:.1}x"
    );
    (speedup, json)
}

/// One `--stream` preset's measurement: incremental updates/sec through
/// a live [`StreamSession`](specfaith::scenario::StreamSession) vs cold
/// from-scratch reconvergence, with the byte-identity pin asserted at
/// every cold sample.
struct StreamArm {
    events: usize,
    inc_secs: f64,
    updates_per_sec: f64,
    stream_msgs: u64,
    cold_runs: usize,
    cold_secs: f64,
    cold_updates_per_sec: f64,
    speedup: f64,
}

fn stream_preset(
    label: &str,
    scenario: &Scenario,
    reference: ReferenceCheck,
    events: usize,
    cold_runs: usize,
) -> StreamArm {
    use specfaith_fpss::deviation::Faithful;
    use specfaith_fpss::runner::PlainRunState;
    let n = scenario.num_nodes();
    eprintln!("sweep_bench[stream/{label}]: checkpointing at the converged fixed point...");
    let mut session = scenario.stream_session(SWEEP_SEED);
    // Cold samples spread evenly across the sequence (always including
    // the last event, so the final fixed point is pinned).
    let stride = events.div_ceil(cold_runs);
    let mut inc_secs = 0.0;
    let mut cold_secs = 0.0;
    let mut cold_done = 0usize;
    let mut stream_msgs = 0u64;
    eprintln!(
        "sweep_bench[stream/{label}]: streaming {events} cost re-declarations \
         ({cold_runs} cold-rebuild samples)..."
    );
    for i in 0..events {
        // A deterministic walk over (node, cost): no two consecutive
        // events touch the same node, costs cycle through 1..=20.
        let event = TopologyEvent::NodeCost {
            node: NodeId::from_index((i * 37 + 11) % n),
            cost: 1 + ((i * 13) % 20) as u64,
        };
        let started = Instant::now();
        let outcome = session.apply_event(&event);
        inc_secs += started.elapsed().as_secs_f64();
        assert_eq!(outcome.status, StreamStatus::Applied, "event {i}");
        assert_eq!(
            outcome.verified,
            Some(true),
            "event {i}: streamed fixed point must re-verify against the reference"
        );
        stream_msgs += outcome.messages;
        if (i + 1) % stride == 0 || i + 1 == events {
            // The cold arm: a from-scratch checkpoint on the updated
            // declarations — construction flood plus reference
            // verification with a cold cache, exactly what one event
            // costs without the streaming engine. Byte-identity is
            // pinned at every sample.
            let mut cold_cfg = PlainConfig::new(
                scenario.topology().clone(),
                session.declared().clone(),
                scenario.traffic().clone(),
            );
            cold_cfg.max_events = 1_000_000_000;
            cold_cfg.reference_check = reference.clone();
            cold_cfg.routes = CacheScope::eager();
            let started = Instant::now();
            let cold = PlainRunState::checkpoint(
                &cold_cfg,
                |_| Box::new(Faithful),
                SWEEP_SEED + 1 + i as u64,
            );
            cold_secs += started.elapsed().as_secs_f64();
            cold_done += 1;
            assert!(
                cold.tables_match_centralized(),
                "event {i}: cold rebuild must verify"
            );
            assert_eq!(
                session.table_digests(),
                cold.table_digests(),
                "event {i}: streamed tables must be byte-identical to the cold fixed point"
            );
        }
    }
    let updates_per_sec = events as f64 / inc_secs;
    let cold_updates_per_sec = cold_done as f64 / cold_secs;
    let speedup = updates_per_sec / cold_updates_per_sec;
    println!(
        "sweep_bench[stream/{label}]: {updates_per_sec:.1} updates/s incremental vs \
         {cold_updates_per_sec:.2} updates/s cold, speedup {speedup:.1}x \
         ({events} events, {stream_msgs} msgs, {cold_done} cold samples)"
    );
    StreamArm {
        events,
        inc_secs,
        updates_per_sec,
        stream_msgs,
        cold_runs: cold_done,
        cold_secs,
        cold_updates_per_sec,
        speedup,
    }
}

/// The `--stream` mode: both presets, their JSON record, and the pair of
/// gated speedups.
fn run_stream() -> ((f64, f64), String) {
    let inst = instance(N, INSTANCE_SEED);
    let small = Scenario::builder()
        .topology(TopologySource::Explicit(inst.topo))
        .costs(CostModel::Explicit(inst.costs))
        .traffic(TrafficModel::Flows(inst.traffic.flows().to_vec()))
        .mechanism(Mechanism::Plain)
        .max_events(MAX_EVENTS)
        .build();
    let n64 = stream_preset(
        "n64",
        &small,
        ReferenceCheck::Full,
        STREAM_EVENTS_N64,
        STREAM_COLD_RUNS_N64,
    );

    // The same instance as the --large smoke: uniform-cost scale-free,
    // sampled reference check.
    let large = ScenarioBuilder::large_scale_free(LARGE_N)
        .costs(CostModel::Uniform(1))
        .instance_seed(LARGE_INSTANCE_SEED)
        .build();
    let n1024 = stream_preset(
        "n1024",
        &large,
        ReferenceCheck::Sampled { sources: 64 },
        STREAM_EVENTS_N1024,
        STREAM_COLD_RUNS_N1024,
    );

    let arm_json = |n: usize, arm: &StreamArm| {
        format!(
            "\"n{n}_events\": {},\n  \"n{n}_inc_secs\": {:.3},\n  \
             \"n{n}_updates_per_sec\": {:.2},\n  \"n{n}_stream_msgs\": {},\n  \
             \"n{n}_cold_runs\": {},\n  \"n{n}_cold_secs\": {:.3},\n  \
             \"n{n}_cold_updates_per_sec\": {:.4},\n  \"n{n}_speedup\": {:.2}",
            arm.events,
            arm.inc_secs,
            arm.updates_per_sec,
            arm.stream_msgs,
            arm.cold_runs,
            arm.cold_secs,
            arm.cold_updates_per_sec,
            arm.speedup,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"mode\": \"stream\",\n  \"net\": \"ideal\",\n  \
         \"instance_seed\": {INSTANCE_SEED},\n  \
         \"large_instance_seed\": {LARGE_INSTANCE_SEED},\n  \"sweep_seed\": {SWEEP_SEED},\n  \
         {},\n  {}\n}}\n",
        arm_json(N, &n64),
        arm_json(LARGE_N, &n1024),
    );
    ((n64.speedup, n1024.speedup), json)
}

/// The `--stream` gate: each preset's incremental-vs-cold speedup must
/// stay within 20% of its committed baseline (same floor and exit codes
/// as [`check_gate`], applied per preset).
fn check_stream_gate(baseline_path: &str, speedups: (f64, f64)) -> ExitCode {
    let baseline_json = match std::fs::read_to_string(baseline_path) {
        Ok(json) => json,
        Err(error) => {
            eprintln!(
                "sweep_bench: cannot read gate baseline {baseline_path}: {error}\n\
                 sweep_bench: expected a committed baseline at that path; generate one on a \
                 quiet machine with `sweep_bench --stream --out {baseline_path}` and commit it"
            );
            return ExitCode::from(2);
        }
    };
    let baseline_mode = json_string(&baseline_json, "mode").unwrap_or_default();
    if baseline_mode != "stream" {
        eprintln!(
            "sweep_bench: baseline {baseline_path} is mode {baseline_mode:?}, run is mode \
             \"stream\""
        );
        return ExitCode::from(2);
    }
    let mut failed = false;
    for (key, measured) in [
        (format!("n{N}_speedup"), speedups.0),
        (format!("n{LARGE_N}_speedup"), speedups.1),
    ] {
        let Some(baseline) = json_number(&baseline_json, &key) else {
            eprintln!("sweep_bench: baseline {baseline_path} has no \"{key}\" field");
            return ExitCode::from(2);
        };
        let floor = baseline * 0.8;
        if measured < floor {
            eprintln!(
                "sweep_bench: REGRESSION — {key} {measured:.1}x fell below {floor:.1}x \
                 (80% of the committed baseline {baseline:.1}x)"
            );
            failed = true;
        } else {
            println!(
                "sweep_bench: gate passed — {key} {measured:.1}x >= {floor:.1}x \
                 (80% of baseline {baseline:.1}x)"
            );
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Pulls a numeric field out of a flat JSON object (the only JSON this
/// workspace reads; no serde in the offline dependency set).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{key}\""))?;
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let value: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    value.parse().ok()
}

fn json_string(json: &str, key: &str) -> Option<String> {
    let at = json.find(&format!("\"{key}\""))?;
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let open = rest[colon..].find('"')? + colon;
    let close = rest[open + 1..].find('"')? + open + 1;
    Some(rest[open + 1..close].to_string())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sweep_bench: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if !args.merge.is_empty() {
        return run_merge(&args);
    }
    let mode = if args.large {
        "large"
    } else if args.stream {
        "stream"
    } else if args.quick {
        "quick"
    } else {
        "full"
    };
    if args.stream {
        let (speedups, json) = run_stream();
        let out = args.out.as_deref().unwrap_or("BENCH_sweep_stream.json");
        if let Err(error) = std::fs::write(out, &json) {
            eprintln!("sweep_bench: cannot write {out}: {error}");
            return ExitCode::from(2);
        }
        println!("sweep_bench[stream]: wrote {out}");
        return match args.check {
            Some(baseline_path) => check_stream_gate(&baseline_path, speedups),
            None => ExitCode::SUCCESS,
        };
    }
    if args.large {
        let n = args.n.unwrap_or(LARGE_N);
        let (speedup, json) = run_large(n);
        let out = args.out.as_deref().unwrap_or("BENCH_sweep_large.json");
        if let Err(error) = std::fs::write(out, &json) {
            eprintln!("sweep_bench: cannot write {out}: {error}");
            return ExitCode::from(2);
        }
        println!("sweep_bench[large]: wrote {out}");
        return match args.check {
            Some(baseline_path) => check_gate(&baseline_path, mode, n, speedup),
            None => ExitCode::SUCCESS,
        };
    }
    let net_model = if args.net == "shared" {
        NetModel::congested()
    } else {
        NetModel::Ideal
    };
    let inst = instance(N, INSTANCE_SEED);
    let scenario = Scenario::builder()
        .topology(TopologySource::Explicit(inst.topo.clone()))
        .costs(CostModel::Explicit(inst.costs.clone()))
        .traffic(TrafficModel::Flows(inst.traffic.flows().to_vec()))
        .mechanism(Mechanism::Plain)
        .network(net_model.clone())
        .max_events(MAX_EVENTS)
        .build();
    let deviations = if args.quick {
        QUICK_DEVIATIONS
    } else {
        standard_catalog(NodeId::new(0)).len()
    };
    let catalog = Catalog::from_factory(move |deviant| {
        standard_catalog(deviant)
            .into_iter()
            .take(deviations)
            .collect()
    });

    if let Some(shard) = args.shard {
        return run_shard(&scenario, &catalog, shard, mode, args.emit_shard_report);
    }
    if args.coordinate.is_some() {
        return run_coordinate(&args, &scenario, &catalog, mode);
    }
    if args.worker.is_some() {
        return run_worker_cli(&args, &scenario, &catalog, mode);
    }

    // Optimized arm: the real serial sweep (serial so the gated ratio does
    // not conflate caching with core count). The ungated shared-net
    // variant samples agents instead (see the module docs) — contention
    // simulation makes full-grid cells far too slow.
    let sampled: Option<&[usize]> = (args.net == "shared").then_some(&SHARED_AGENTS[..]);
    let cells = 1 + sampled.map_or(N, <[usize]>::len) * catalog.len();
    eprintln!(
        "sweep_bench[{mode}/{net}]: optimized arm — {cells} cells at n={N}...",
        net = args.net
    );
    let started = Instant::now();
    let report = match sampled {
        Some(agents) => scenario.sweep_sampled(&[SWEEP_SEED], &catalog, agents),
        None => scenario.sweep_serial(&[SWEEP_SEED], &catalog),
    };
    let cached_secs = started.elapsed().as_secs_f64();
    let cached_cps = cells as f64 / cached_secs;
    assert_eq!(report.per_seed.len(), 1, "one seed in, one report out");

    // Reference arm: sampled cells on the retained pre-optimization paths.
    let mut config = PlainConfig::new(inst.topo.clone(), inst.costs.clone(), inst.traffic.clone());
    config.max_events = MAX_EVENTS;
    // Both arms must simulate the same network for the ratio to isolate
    // the caching difference.
    config.network = net_model;
    let reference_cells = if args.quick {
        QUICK_REFERENCE_CELLS
    } else {
        FULL_REFERENCE_CELLS
    };
    eprintln!(
        "sweep_bench[{mode}/{net}]: reference arm — {reference_cells} sampled cell(s)...",
        net = args.net
    );
    let started = Instant::now();
    // Cell 1: the honest baseline, every node on the full-recompute path.
    let baseline = run_plain_uncached(&config, |_| Box::new(FullRecomputeFaithful), SWEEP_SEED);
    // Convergence is only expected under the ideal network; shared-net
    // cells are event-budget-bound by design (see the module docs), so
    // the arms compare throughput at the same budget instead.
    if args.net == "ideal" {
        assert!(
            baseline.tables_match_centralized,
            "reference baseline must converge to the centralized tables"
        );
    }
    if reference_cells > 1 {
        // Cell 2: agent 0 playing deviation 0, everyone else honest on the
        // full-recompute path — a representative deviation cell.
        let deviant = NodeId::new(0);
        let mut strategy = standard_catalog(deviant).into_iter().next();
        let _ = run_plain_uncached(
            &config,
            |node| {
                if node == deviant {
                    strategy.take().expect("used once")
                } else {
                    Box::new(FullRecomputeFaithful)
                }
            },
            cell_seed(SWEEP_SEED, 0, 0),
        );
    }
    let uncached_secs = started.elapsed().as_secs_f64();
    let uncached_cps = reference_cells as f64 / uncached_secs;

    let speedup = cached_cps / uncached_cps;
    let sampling = match sampled {
        Some(agents) => format!("\"sampled_agents\": {},\n  ", agents.len()),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"mode\": \"{mode}\",\n  \"net\": \"{net}\",\n  \
         \"n\": {N},\n  \
         \"instance_seed\": {INSTANCE_SEED},\n  \"sweep_seed\": {SWEEP_SEED},\n  \
         \"deviations\": {deviations},\n  {sampling}\"cells\": {cells},\n  \
         \"cached_secs\": {cached_secs:.3},\n  \"cached_cells_per_sec\": {cached_cps:.4},\n  \
         \"reference_cells\": {reference_cells},\n  \"reference_secs\": {uncached_secs:.3},\n  \
         \"reference_cells_per_sec\": {uncached_cps:.4},\n  \"speedup\": {speedup:.2}\n}}\n",
        net = args.net,
    );
    let out = args.out.as_deref().unwrap_or("BENCH_sweep.json");
    if let Err(error) = std::fs::write(out, &json) {
        eprintln!("sweep_bench: cannot write {out}: {error}");
        return ExitCode::from(2);
    }
    println!(
        "sweep_bench[{mode}/{net}]: optimized {cached_cps:.2} cells/s, reference {uncached_cps:.2} \
         cells/s, speedup {speedup:.1}x -> {out}",
        net = args.net,
    );

    if let Some(baseline_path) = args.check {
        if args.net != "ideal" {
            // Shared-net numbers are informational only (see the module
            // docs): record, never gate.
            println!(
                "sweep_bench: --net {} is ungated; ignoring --check {baseline_path}",
                args.net
            );
            return ExitCode::SUCCESS;
        }
        return check_gate(&baseline_path, mode, N, speedup);
    }
    ExitCode::SUCCESS
}

/// The `--shard` mode: evaluates one shard of the standard `n = 64` grid
/// (the same grid the corresponding bench mode's optimized arm sweeps)
/// and emits its [`SweepFragment`] JSON. Never gated — the fingerprint
/// check happens at merge time.
fn run_shard(
    scenario: &Scenario,
    catalog: &Catalog,
    shard: ShardSpec,
    mode: &str,
    emit: Option<String>,
) -> ExitCode {
    // The label pins the grid identity at the bench level (instance size
    // and seeds, catalog mode, network); the library's instance
    // fingerprint covers the materialized topology/costs/traffic below it.
    let instance = grid_instance(mode);
    let total = scenario.num_nodes() * catalog.len();
    let owned = shard.cell_indices(total).len();
    eprintln!(
        "sweep_bench[{mode}/shard {shard}]: {owned} of {total} grid cells at n={N} \
         (+1 honest baseline)..."
    );
    let fragment = scenario.sweep_shard(&[SWEEP_SEED], catalog, shard, &instance);
    let path = emit.unwrap_or_else(|| {
        format!(
            "BENCH_sweep_shard_{}of{}.json",
            shard.index(),
            shard.count()
        )
    });
    if let Err(error) = std::fs::write(&path, fragment.to_json()) {
        eprintln!("sweep_bench: cannot write {path}: {error}");
        return ExitCode::from(2);
    }
    println!(
        "sweep_bench[{mode}/shard {shard}]: {} cells in {:.1}s ({}), baseline {:.1}s -> {path}",
        fragment.cells.len(),
        fragment.timing.cells_secs,
        match fragment.cells_per_sec() {
            Some(rate) => format!("{rate:.2} cells/s"),
            None => "idle".to_string(),
        },
        fragment.timing.baseline_secs,
    );
    ExitCode::SUCCESS
}

/// The `--merge` mode: recombine shard fragments, report skew, write the
/// merged report + fingerprint, and optionally gate the fingerprint
/// against a committed baseline.
fn run_merge(args: &Args) -> ExitCode {
    let mut fragments = Vec::with_capacity(args.merge.len());
    for path in &args.merge {
        let json = match std::fs::read_to_string(path) {
            Ok(json) => json,
            Err(error) => {
                eprintln!("sweep_bench: cannot read fragment {path}: {error}");
                return ExitCode::from(2);
            }
        };
        match SweepFragment::from_json(&json) {
            Ok(fragment) => fragments.push(fragment),
            Err(error) => {
                eprintln!("sweep_bench: fragment {path} is malformed: {error}");
                return ExitCode::from(2);
            }
        }
    }
    let report = match SweepFragment::merge(&fragments) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("sweep_bench: merge refused: {error}");
            return ExitCode::from(3);
        }
    };
    let fingerprint = report.fingerprint();
    println!(
        "sweep_bench[merge]: {} fragment(s) over instance {:?} -> {} seeds, {} cells, \
         fingerprint {fingerprint}",
        fragments.len(),
        fragments[0].instance,
        report.per_seed.len(),
        report.total_deviations(),
    );
    print!("{}", SweepFragment::skew_summary(&fragments));

    let mut ordered: Vec<&SweepFragment> = fragments.iter().collect();
    ordered.sort_by_key(|fragment| fragment.shard.index());
    let shards_json = ordered
        .iter()
        .map(|fragment| {
            format!(
                "{{\"shard\": \"{}\", \"cells\": {}, \"cells_secs\": {:.3}, \
                 \"baseline_secs\": {:.3}}}",
                fragment.shard,
                fragment.cells.len(),
                fragment.timing.cells_secs,
                fragment.timing.baseline_secs
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let merged_json = format!(
        "{{\n  \"format\": \"specfaith-sweep-merged-v1\",\n  \"instance\": \"{}\",\n  \
         \"fingerprint\": \"{fingerprint}\",\n  \"cells\": {},\n  \"shards\": [\n    \
         {shards_json}\n  ],\n  \"report\": {}\n}}\n",
        fragments[0].instance,
        report.total_deviations(),
        report.to_canonical_json(),
    );
    let out = args.out.as_deref().unwrap_or("SWEEP_merged.json");
    if let Err(error) = std::fs::write(out, &merged_json) {
        eprintln!("sweep_bench: cannot write {out}: {error}");
        return ExitCode::from(2);
    }
    println!("sweep_bench[merge]: wrote {out}");

    if let Some(timing_path) = &args.timing_out {
        // Standalone per-shard timing summary — written before the
        // fingerprint gate so the artifact survives a gate failure (the
        // skew data is most interesting exactly when something broke).
        let timing_json = ordered
            .iter()
            .map(|fragment| {
                format!(
                    "    {{\"shard\": \"{}\", \"cells\": {}, \"cells_secs\": {:.3}, \
                     \"cells_per_sec\": {}, \"baseline_secs\": {:.3}}}",
                    fragment.shard,
                    fragment.cells.len(),
                    fragment.timing.cells_secs,
                    match fragment.cells_per_sec() {
                        Some(rate) => format!("{rate:.4}"),
                        None => "null".to_string(),
                    },
                    fragment.timing.baseline_secs
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let timing_doc = format!(
            "{{\n  \"format\": \"specfaith-sweep-shard-timing-v1\",\n  \
             \"instance\": \"{}\",\n  \"shards\": [\n{timing_json}\n  ]\n}}\n",
            fragments[0].instance,
        );
        if let Err(error) = std::fs::write(timing_path, &timing_doc) {
            eprintln!("sweep_bench: cannot write {timing_path}: {error}");
            return ExitCode::from(2);
        }
        println!("sweep_bench[merge]: wrote per-shard timing to {timing_path}");
    }

    if let Some(expected_path) = &args.expect_fingerprint {
        if let Err(exit) = gate_fingerprint(expected_path, &fragments[0].instance, &fingerprint) {
            return exit;
        }
    }
    ExitCode::SUCCESS
}

/// The committed-fingerprint gate shared by `--merge` and
/// `--coordinate`: the distributed run's merged report must carry the
/// exact fingerprint the baseline file pins (and the baseline's instance
/// label, when present, must name the same grid).
fn gate_fingerprint(
    expected_path: &str,
    instance: &str,
    fingerprint: &str,
) -> Result<(), ExitCode> {
    let expected_json = match std::fs::read_to_string(expected_path) {
        Ok(json) => json,
        Err(error) => {
            eprintln!(
                "sweep_bench: cannot read fingerprint baseline {expected_path}: {error}\n\
                 sweep_bench: expected a committed fingerprint file at that path; run the \
                 full shard set through --merge once and commit its \"fingerprint\" value"
            );
            return Err(ExitCode::from(2));
        }
    };
    if let Some(expected_instance) = json_string(&expected_json, "instance") {
        if expected_instance != instance {
            eprintln!(
                "sweep_bench: fingerprint baseline {expected_path} pins instance \
                 {expected_instance:?}, but this run swept {instance:?}"
            );
            return Err(ExitCode::from(2));
        }
    }
    let Some(expected) = json_string(&expected_json, "fingerprint") else {
        eprintln!("sweep_bench: fingerprint baseline {expected_path} has no \"fingerprint\" field");
        return Err(ExitCode::from(2));
    };
    if expected != fingerprint {
        eprintln!(
            "sweep_bench: FINGERPRINT MISMATCH — merged report is {fingerprint}, committed \
             baseline {expected_path} pins {expected}; the distributed sweep no longer \
             reproduces the single-process report"
        );
        return Err(ExitCode::FAILURE);
    }
    println!("sweep_bench: fingerprint matches the committed baseline ({expected})");
    Ok(())
}

/// The standard grid's instance label — shared by `--shard`,
/// `--coordinate`, and `--worker` so fragments and coordinated runs from
/// the same bench mode always agree.
fn grid_instance(mode: &str) -> String {
    format!("sweep-n{N}-i{INSTANCE_SEED}-s{SWEEP_SEED}-{mode}-ideal")
}

/// The `--coordinate` mode: serve the standard `n = 64` grid to live
/// workers over cell-range leases, merge their fragments, and gate the
/// result like `--merge` does. Exit codes: `2` for setup/transport
/// failures (bad address, bind failure, no workers), `3` for merge
/// conflicts and exhausted lease retries, `1` when the merged
/// fingerprint diverges from the committed baseline or the
/// `--expect-reissued` floor is missed.
fn run_coordinate(args: &Args, scenario: &Scenario, catalog: &Catalog, mode: &str) -> ExitCode {
    let workers = args.coordinate.expect("validated").max(1);
    let instance = grid_instance(mode);
    let addr = match CoordAddr::parse(args.listen.as_deref().expect("validated")) {
        Ok(addr) => addr,
        Err(error) => {
            eprintln!("sweep_bench: --listen: {error}");
            return ExitCode::from(2);
        }
    };
    let total = scenario.num_nodes() * catalog.len();
    // Default lease size: ~4 leases per expected worker, so a straggler
    // or a killed worker forfeits only a small slice of the grid.
    let mut config = CoordConfig {
        lease_cells: args
            .lease_cells
            .unwrap_or_else(|| (total / (workers * 4)).max(1)),
        ..CoordConfig::default()
    };
    if let Some(ms) = args.lease_timeout_ms {
        config.lease_timeout = Duration::from_millis(ms);
    }
    if let Some(attempts) = args.max_attempts {
        config.max_attempts = attempts;
    }
    let coordinator = Coordinator::new(scenario, &[SWEEP_SEED], catalog, &instance, config.clone());
    let listener = match CoordListener::bind(&addr) {
        Ok(listener) => listener,
        Err(error) => {
            eprintln!("sweep_bench: cannot listen on {addr}: {error}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "sweep_bench[{mode}/coordinate]: {total} grid cells in {}-cell leases for {workers} \
         worker(s) on {}...",
        config.lease_cells,
        listener.local_addr(),
    );
    let outcome = match coordinator.serve(listener) {
        Ok(outcome) => outcome,
        Err(error) => {
            eprintln!("sweep_bench: coordination failed: {error}");
            return match error {
                CoordError::Merge(_) | CoordError::RetriesExhausted { .. } => ExitCode::from(3),
                CoordError::Io(_) | CoordError::NoWorkers { .. } => ExitCode::from(2),
            };
        }
    };
    println!(
        "sweep_bench[{mode}/coordinate]: {} cells over {} lease(s) ({} reissued, {} duplicate \
         result(s), {} corrupt line(s)), fingerprint {}",
        outcome.stats.grid_cells,
        outcome.stats.leases_issued,
        outcome.stats.leases_reissued,
        outcome.stats.duplicate_results,
        outcome.stats.corrupt_lines,
        outcome.fingerprint,
    );
    print!("{}", outcome.stats.skew_summary());

    let workers_json = outcome
        .stats
        .workers
        .iter()
        .map(|worker| {
            format!(
                "{{\"worker\": {:?}, \"cells\": {}, \"leases\": {}, \"cells_secs\": {:.3}, \
                 \"baseline_secs\": {:.3}}}",
                worker.name, worker.cells, worker.leases, worker.secs, worker.baseline_secs
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let doc = format!(
        "{{\n  \"format\": \"specfaith-sweep-merged-v1\",\n  \"instance\": \"{instance}\",\n  \
         \"fingerprint\": \"{}\",\n  \"cells\": {},\n  \"leases_issued\": {},\n  \
         \"leases_reissued\": {},\n  \"duplicate_results\": {},\n  \"corrupt_lines\": {},\n  \
         \"workers\": [\n    {workers_json}\n  ],\n  \"report\": {}\n}}\n",
        outcome.fingerprint,
        outcome.stats.grid_cells,
        outcome.stats.leases_issued,
        outcome.stats.leases_reissued,
        outcome.stats.duplicate_results,
        outcome.stats.corrupt_lines,
        outcome.report.to_canonical_json(),
    );
    let out = args.out.as_deref().unwrap_or("SWEEP_coordinated.json");
    if let Err(error) = std::fs::write(out, &doc) {
        eprintln!("sweep_bench: cannot write {out}: {error}");
        return ExitCode::from(2);
    }
    println!("sweep_bench[{mode}/coordinate]: wrote {out}");

    if let Some(floor) = args.expect_reissued {
        if outcome.stats.leases_reissued < floor {
            eprintln!(
                "sweep_bench: REISSUE GATE — expected at least {floor} re-issued lease(s) (the \
                 scripted worker failure should have been recovered), saw {}",
                outcome.stats.leases_reissued
            );
            return ExitCode::FAILURE;
        }
        println!(
            "sweep_bench: reissue gate passed — {} re-issued lease(s) >= {floor}",
            outcome.stats.leases_reissued
        );
    }
    if let Some(expected_path) = &args.expect_fingerprint {
        if let Err(exit) = gate_fingerprint(expected_path, &instance, &outcome.fingerprint) {
            return exit;
        }
    }
    ExitCode::SUCCESS
}

/// The `--worker` mode: evaluate leases for the coordinator at the given
/// address until it says `done`. A fault-plan ending (kill/hang) is a
/// scripted outcome, not an error — the process still exits `0` so CI
/// fault scripts don't need exit-code contortions; real failures exit
/// `2` (transport, rejection) or `3` (the coordinator aborted the run).
fn run_worker_cli(args: &Args, scenario: &Scenario, catalog: &Catalog, mode: &str) -> ExitCode {
    let instance = grid_instance(mode);
    let addr = match CoordAddr::parse(args.worker.as_deref().expect("validated")) {
        Ok(addr) => addr,
        Err(error) => {
            eprintln!("sweep_bench: --worker: {error}");
            return ExitCode::from(2);
        }
    };
    let name = args
        .worker_name
        .clone()
        .unwrap_or_else(|| format!("worker-{}", std::process::id()));
    let mut config = WorkerConfig::named(&name);
    for clause in &args.faults {
        if let Err(error) = config.fault.apply(clause) {
            eprintln!("sweep_bench: --fault: {error}");
            return ExitCode::from(2);
        }
    }
    eprintln!("sweep_bench[{mode}/worker {name}]: connecting to {addr}...");
    match run_worker(scenario, &[SWEEP_SEED], catalog, &instance, &addr, config) {
        Ok(summary) => {
            let ending = if summary.killed {
                " (killed by fault plan)"
            } else if summary.hung {
                " (hung by fault plan)"
            } else {
                ""
            };
            println!(
                "sweep_bench[{mode}/worker {}]: {} cell(s) over {} result(s){ending}",
                summary.name, summary.cells, summary.leases,
            );
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("sweep_bench: worker {name} failed: {error}");
            match error {
                WorkerError::Aborted(_) => ExitCode::from(3),
                WorkerError::Io(_) | WorkerError::Rejected(_) | WorkerError::Disconnected => {
                    ExitCode::from(2)
                }
            }
        }
    }
}

/// Loads a committed gate baseline and returns its speedup, validating
/// that it matches the run's mode and instance size (a ratio measured at
/// one `n` says nothing about another).
///
/// A missing, unreadable, or mismatched baseline is a **setup defect**,
/// not a performance regression: the caller exits `2`, distinct from the
/// gate-failure exit `1`, and the message names the expected path and how
/// to regenerate it.
fn load_baseline_speedup(baseline_path: &str, mode: &str, n: usize) -> Result<f64, String> {
    let baseline_json = std::fs::read_to_string(baseline_path).map_err(|error| {
        let flag = match mode {
            "full" => String::new(),
            other => format!("--{other} "),
        };
        format!(
            "cannot read gate baseline {baseline_path}: {error}\n\
             sweep_bench: expected a committed baseline at that path; generate one on a quiet \
             machine with `sweep_bench {flag}--out {baseline_path}` and commit it"
        )
    })?;
    let baseline_mode = json_string(&baseline_json, "mode").unwrap_or_default();
    if baseline_mode != mode {
        return Err(format!(
            "baseline {baseline_path} is mode {baseline_mode:?}, run is mode {mode:?}"
        ));
    }
    if let Some(baseline_n) = json_number(&baseline_json, "n") {
        if baseline_n as usize != n {
            return Err(format!(
                "baseline {baseline_path} is n={}, run is n={n}",
                baseline_n as usize
            ));
        }
    }
    json_number(&baseline_json, "speedup")
        .ok_or_else(|| format!("baseline {baseline_path} has no \"speedup\" field"))
}

/// The >20% speedup-ratio regression gate shared by every measured mode.
fn check_gate(baseline_path: &str, mode: &str, n: usize, speedup: f64) -> ExitCode {
    let baseline_speedup = match load_baseline_speedup(baseline_path, mode, n) {
        Ok(speedup) => speedup,
        Err(message) => {
            eprintln!("sweep_bench: {message}");
            return ExitCode::from(2);
        }
    };
    let floor = baseline_speedup * 0.8;
    if speedup < floor {
        eprintln!(
            "sweep_bench: REGRESSION — speedup {speedup:.1}x fell below {floor:.1}x \
             (80% of the committed baseline {baseline_speedup:.1}x)"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "sweep_bench: gate passed — speedup {speedup:.1}x >= {floor:.1}x \
         (80% of baseline {baseline_speedup:.1}x)"
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> Result<Args, String> {
        parse_args_from(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn merge_without_fragment_paths_is_a_usage_error() {
        let error = parse(&["--merge"]).unwrap_err();
        assert!(error.contains("fragment paths"), "{error}");
        // main() prints USAGE with every parse error; the merge grammar
        // must be on that screen so the failure is self-explaining.
        assert!(USAGE.contains("--merge f0.json"));
        // A following flag doesn't count as a path either.
        let error = parse(&["--merge", "--out", "x.json"]).unwrap_err();
        assert!(error.contains("fragment paths"), "{error}");
    }

    #[test]
    fn coordinate_and_listen_require_each_other() {
        let error = parse(&["--coordinate", "3"]).unwrap_err();
        assert!(error.contains("--listen"), "{error}");
        let error = parse(&["--listen", "tcp:127.0.0.1:0"]).unwrap_err();
        assert!(error.contains("--coordinate"), "{error}");
        let args = parse(&[
            "--quick",
            "--coordinate",
            "3",
            "--listen",
            "unix:/tmp/s.sock",
        ])
        .expect("valid coordinate invocation");
        assert_eq!(args.coordinate, Some(3));
        assert_eq!(args.listen.as_deref(), Some("unix:/tmp/s.sock"));
    }

    #[test]
    fn coordinate_rejects_zero_workers_and_conflicting_modes() {
        let error = parse(&["--coordinate", "0", "--listen", "tcp:h:1"]).unwrap_err();
        assert!(error.contains("at least one"), "{error}");
        let error = parse(&["--large", "--coordinate", "2", "--listen", "tcp:h:1"]).unwrap_err();
        assert!(error.contains("--large"), "{error}");
        let error = parse(&[
            "--coordinate",
            "2",
            "--listen",
            "tcp:h:1",
            "--worker",
            "tcp:h:1",
        ])
        .unwrap_err();
        assert!(error.contains("mutually exclusive"), "{error}");
        let error = parse(&[
            "--net",
            "shared",
            "--coordinate",
            "2",
            "--listen",
            "tcp:h:1",
        ])
        .unwrap_err();
        assert!(error.contains("ideal"), "{error}");
    }

    #[test]
    fn fault_clauses_validate_at_parse_time_and_need_worker_mode() {
        let args = parse(&[
            "--quick",
            "--worker",
            "tcp:127.0.0.1:9",
            "--worker-name",
            "victim",
            "--fault",
            "kill-after-cells=5",
            "--fault",
            "delay-result=0:250",
        ])
        .expect("valid worker invocation");
        assert_eq!(args.worker.as_deref(), Some("tcp:127.0.0.1:9"));
        assert_eq!(args.faults.len(), 2);

        let error = parse(&["--worker", "tcp:h:1", "--fault", "explode=now"]).unwrap_err();
        assert!(error.contains("explode"), "{error}");
        let error = parse(&["--fault", "kill-after-cells=5"]).unwrap_err();
        assert!(error.contains("--worker"), "{error}");
    }

    #[test]
    fn coordinator_tuning_flags_require_coordinate_mode() {
        for flags in [
            &["--lease-cells", "4"][..],
            &["--lease-timeout-ms", "5000"][..],
            &["--max-attempts", "3"][..],
            &["--expect-reissued", "1"][..],
        ] {
            let error = parse(flags).unwrap_err();
            assert!(error.contains("--coordinate"), "{flags:?}: {error}");
        }
        let args = parse(&[
            "--quick",
            "--coordinate",
            "3",
            "--listen",
            "tcp:127.0.0.1:0",
            "--lease-cells",
            "4",
            "--lease-timeout-ms",
            "5000",
            "--max-attempts",
            "3",
            "--expect-reissued",
            "1",
        ])
        .expect("valid tuned invocation");
        assert_eq!(args.lease_cells, Some(4));
        assert_eq!(args.lease_timeout_ms, Some(5000));
        assert_eq!(args.max_attempts, Some(3));
        assert_eq!(args.expect_reissued, Some(1));
        let error =
            parse(&["--coordinate", "1", "--listen", "t", "--lease-cells", "0"]).unwrap_err();
        assert!(error.contains("--lease-cells"), "{error}");
    }

    #[test]
    fn expect_fingerprint_applies_to_merge_and_coordinate_only() {
        let error = parse(&["--quick", "--expect-fingerprint", "f.json"]).unwrap_err();
        assert!(error.contains("--merge and --coordinate"), "{error}");
        parse(&["--merge", "a.json", "--expect-fingerprint", "f.json"]).expect("merge gate");
        parse(&[
            "--coordinate",
            "2",
            "--listen",
            "tcp:h:1",
            "--expect-fingerprint",
            "f.json",
        ])
        .expect("coordinate gate");
    }

    #[test]
    fn grid_instance_matches_the_committed_baseline_label() {
        assert_eq!(grid_instance("quick"), "sweep-n64-i2004-s7-quick-ideal");
        assert_eq!(grid_instance("full"), "sweep-n64-i2004-s7-full-ideal");
    }

    fn temp_baseline(name: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "sweep_bench_gate_{name}_{}.json",
            std::process::id()
        ));
        std::fs::write(&path, contents).expect("write temp baseline");
        path
    }

    #[test]
    fn missing_baseline_is_a_setup_error_naming_the_path() {
        let error =
            load_baseline_speedup("/nonexistent/dir/BENCH_missing.json", "quick", 64).unwrap_err();
        assert!(error.contains("/nonexistent/dir/BENCH_missing.json"));
        assert!(
            error.contains("--quick --out"),
            "error must say how to regenerate: {error}"
        );
        let full_error = load_baseline_speedup("/nonexistent/x.json", "full", 64).unwrap_err();
        assert!(
            full_error.contains("`sweep_bench --out"),
            "full mode has no flag: {full_error}"
        );
    }

    #[test]
    fn mismatched_mode_or_n_is_rejected() {
        let path = temp_baseline("mode", r#"{"mode": "full", "n": 64, "speedup": 8.0}"#);
        let error = load_baseline_speedup(path.to_str().unwrap(), "quick", 64).unwrap_err();
        assert!(error.contains("mode"), "{error}");
        let error = load_baseline_speedup(path.to_str().unwrap(), "full", 1024).unwrap_err();
        assert!(error.contains("n=64"), "{error}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn valid_baseline_yields_its_speedup() {
        let path = temp_baseline("ok", r#"{"mode": "quick", "n": 64, "speedup": 35.58}"#);
        let speedup = load_baseline_speedup(path.to_str().unwrap(), "quick", 64).expect("loads");
        assert!((speedup - 35.58).abs() < 1e-9);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn baseline_without_speedup_is_rejected() {
        let path = temp_baseline("nospeedup", r#"{"mode": "quick", "n": 64}"#);
        let error = load_baseline_speedup(path.to_str().unwrap(), "quick", 64).unwrap_err();
        assert!(error.contains("speedup"), "{error}");
        let _ = std::fs::remove_file(path);
    }

    const STREAM_BASELINE: &str =
        r#"{"mode": "stream", "n64_speedup": 5.44, "n1024_speedup": 32.86}"#;

    #[test]
    fn stream_gate_passes_at_and_above_the_floor() {
        let path = temp_baseline("stream_ok", STREAM_BASELINE);
        // Exactly at the 80% floor on both presets.
        let exit = check_stream_gate(path.to_str().unwrap(), (5.44 * 0.8, 32.86 * 0.8));
        assert_eq!(exit, ExitCode::SUCCESS);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn stream_gate_fails_when_either_preset_regresses() {
        let path = temp_baseline("stream_regress", STREAM_BASELINE);
        let n64_regressed = check_stream_gate(path.to_str().unwrap(), (4.0, 32.86));
        assert_eq!(n64_regressed, ExitCode::FAILURE);
        let n1024_regressed = check_stream_gate(path.to_str().unwrap(), (5.44, 20.0));
        assert_eq!(n1024_regressed, ExitCode::FAILURE);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn stream_gate_rejects_wrong_mode_missing_key_and_missing_file() {
        let wrong_mode = temp_baseline("stream_mode", r#"{"mode": "quick", "n64_speedup": 5.0}"#);
        assert_eq!(
            check_stream_gate(wrong_mode.to_str().unwrap(), (9.0, 9.0)),
            ExitCode::from(2)
        );
        let _ = std::fs::remove_file(wrong_mode);

        let no_key = temp_baseline("stream_nokey", r#"{"mode": "stream", "n64_speedup": 5.0}"#);
        assert_eq!(
            check_stream_gate(no_key.to_str().unwrap(), (9.0, 9.0)),
            ExitCode::from(2)
        );
        let _ = std::fs::remove_file(no_key);

        assert_eq!(
            check_stream_gate("/nonexistent/BENCH_sweep_stream.json", (9.0, 9.0)),
            ExitCode::from(2)
        );
    }

    #[test]
    fn committed_stream_baseline_parses_and_clears_the_issue_floor() {
        // The committed baseline must be mode "stream", carry both preset
        // keys, and show incremental beating cold by >= 5x on each.
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/baselines/BENCH_sweep_stream.json"
        );
        let json = std::fs::read_to_string(path).expect("committed stream baseline exists");
        assert_eq!(json_string(&json, "mode").as_deref(), Some("stream"));
        let n64 = json_number(&json, "n64_speedup").expect("n64_speedup present");
        let n1024 = json_number(&json, "n1024_speedup").expect("n1024_speedup present");
        assert!(n64 >= 5.0, "n64 incremental-vs-cold speedup {n64} < 5x");
        assert!(
            n1024 >= 5.0,
            "n1024 incremental-vs-cold speedup {n1024} < 5x"
        );
    }
}
