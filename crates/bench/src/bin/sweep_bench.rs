//! The sweep regression benchmark behind `BENCH_sweep.json` and the CI
//! bench gate.
//!
//! Measures Theorem-1 deviation-sweep throughput (cells/second) on the
//! standard `n = 64` random biconnected instance under the plain
//! mechanism, in two arms on the same machine:
//!
//! * **optimized** — the real `Scenario::sweep_serial` path: shared
//!   `RouteCache` reference tables plus the destination-scoped
//!   incremental recompute on honest nodes;
//! * **reference** — sampled cells through the retained pre-optimization
//!   paths (`run_plain_uncached` per-pair-query tables, and a bench-only
//!   honest strategy that reports `is_faithful() == false` so every node
//!   takes the full-table recompute on every message, exactly as deviants
//!   still do).
//!
//! The regression gate compares the **ratio** of the two arms (`speedup`),
//! which is machine-independent: both arms run on the same host in the
//! same process, so host speed and load cancel out.
//!
//! ```sh
//! sweep_bench [--quick] [--out BENCH_sweep.json] [--check baseline.json]
//! ```
//!
//! `--quick` trims the swept catalog (CI-sized run, same instance and
//! mechanics); `--check` exits nonzero when the measured speedup falls
//! more than 20% below the committed baseline's.

use specfaith::scenario::{
    cell_seed, Catalog, CostModel, Mechanism, Scenario, TopologySource, TrafficModel,
};
use specfaith_bench::instance;
use specfaith_core::id::NodeId;
use specfaith_fpss::deviation::{standard_catalog, FullRecomputeFaithful};
use specfaith_fpss::runner::{run_plain_uncached, PlainConfig};
use std::process::ExitCode;
use std::time::Instant;

const N: usize = 64;
const INSTANCE_SEED: u64 = 2004;
const SWEEP_SEED: u64 = 7;
/// Event budget per cell. Construction-corrupting deviants (spoofed
/// routes, dropped forwards) keep the routing iteration churning and
/// would otherwise run to the 5M-event engine default, dominating the
/// measurement; honest convergence on this instance takes ~160k events,
/// so the cap bounds pathological cells without touching the honest path.
const MAX_EVENTS: u64 = 600_000;
/// Catalog size swept in `--quick` mode (full mode sweeps all 13).
const QUICK_DEVIATIONS: usize = 2;
/// Reference-arm sample cells: quick = 1 (the honest baseline cell),
/// full = 2 (baseline + one deviation cell).
const QUICK_REFERENCE_CELLS: usize = 1;
const FULL_REFERENCE_CELLS: usize = 2;

struct Args {
    quick: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: "BENCH_sweep.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            "--check" => args.check = Some(it.next().ok_or("--check needs a path")?),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

/// Pulls a numeric field out of a flat JSON object (the only JSON this
/// workspace reads; no serde in the offline dependency set).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{key}\""))?;
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let value: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    value.parse().ok()
}

fn json_string(json: &str, key: &str) -> Option<String> {
    let at = json.find(&format!("\"{key}\""))?;
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let open = rest[colon..].find('"')? + colon;
    let close = rest[open + 1..].find('"')? + open + 1;
    Some(rest[open + 1..close].to_string())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sweep_bench: {message}");
            return ExitCode::from(2);
        }
    };
    let mode = if args.quick { "quick" } else { "full" };
    let inst = instance(N, INSTANCE_SEED);
    let scenario = Scenario::builder()
        .topology(TopologySource::Explicit(inst.topo.clone()))
        .costs(CostModel::Explicit(inst.costs.clone()))
        .traffic(TrafficModel::Flows(inst.traffic.flows().to_vec()))
        .mechanism(Mechanism::Plain)
        .max_events(MAX_EVENTS)
        .build();
    let deviations = if args.quick {
        QUICK_DEVIATIONS
    } else {
        standard_catalog(NodeId::new(0)).len()
    };
    let catalog = Catalog::from_factory(move |deviant| {
        standard_catalog(deviant)
            .into_iter()
            .take(deviations)
            .collect()
    });

    // Optimized arm: the real serial sweep (serial so the gated ratio does
    // not conflate caching with core count).
    let cells = 1 + N * catalog.len();
    eprintln!("sweep_bench[{mode}]: optimized arm — {cells} cells at n={N}...");
    let started = Instant::now();
    let report = scenario.sweep_serial(&[SWEEP_SEED], &catalog);
    let cached_secs = started.elapsed().as_secs_f64();
    let cached_cps = cells as f64 / cached_secs;
    assert_eq!(report.per_seed.len(), 1, "one seed in, one report out");

    // Reference arm: sampled cells on the retained pre-optimization paths.
    let mut config = PlainConfig::new(inst.topo.clone(), inst.costs.clone(), inst.traffic.clone());
    config.max_events = MAX_EVENTS;
    let reference_cells = if args.quick {
        QUICK_REFERENCE_CELLS
    } else {
        FULL_REFERENCE_CELLS
    };
    eprintln!("sweep_bench[{mode}]: reference arm — {reference_cells} sampled cell(s)...");
    let started = Instant::now();
    // Cell 1: the honest baseline, every node on the full-recompute path.
    let baseline = run_plain_uncached(&config, |_| Box::new(FullRecomputeFaithful), SWEEP_SEED);
    assert!(
        baseline.tables_match_centralized,
        "reference baseline must converge to the centralized tables"
    );
    if reference_cells > 1 {
        // Cell 2: agent 0 playing deviation 0, everyone else honest on the
        // full-recompute path — a representative deviation cell.
        let deviant = NodeId::new(0);
        let mut strategy = standard_catalog(deviant).into_iter().next();
        let _ = run_plain_uncached(
            &config,
            |node| {
                if node == deviant {
                    strategy.take().expect("used once")
                } else {
                    Box::new(FullRecomputeFaithful)
                }
            },
            cell_seed(SWEEP_SEED, 0, 0),
        );
    }
    let uncached_secs = started.elapsed().as_secs_f64();
    let uncached_cps = reference_cells as f64 / uncached_secs;

    let speedup = cached_cps / uncached_cps;
    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"mode\": \"{mode}\",\n  \"n\": {N},\n  \
         \"instance_seed\": {INSTANCE_SEED},\n  \"sweep_seed\": {SWEEP_SEED},\n  \
         \"deviations\": {deviations},\n  \"cells\": {cells},\n  \
         \"cached_secs\": {cached_secs:.3},\n  \"cached_cells_per_sec\": {cached_cps:.4},\n  \
         \"reference_cells\": {reference_cells},\n  \"reference_secs\": {uncached_secs:.3},\n  \
         \"reference_cells_per_sec\": {uncached_cps:.4},\n  \"speedup\": {speedup:.2}\n}}\n"
    );
    if let Err(error) = std::fs::write(&args.out, &json) {
        eprintln!("sweep_bench: cannot write {}: {error}", args.out);
        return ExitCode::from(2);
    }
    println!(
        "sweep_bench[{mode}]: optimized {cached_cps:.2} cells/s, reference {uncached_cps:.2} \
         cells/s, speedup {speedup:.1}x -> {}",
        args.out
    );

    if let Some(baseline_path) = args.check {
        let baseline_json = match std::fs::read_to_string(&baseline_path) {
            Ok(json) => json,
            Err(error) => {
                eprintln!("sweep_bench: cannot read baseline {baseline_path}: {error}");
                return ExitCode::from(2);
            }
        };
        let baseline_mode = json_string(&baseline_json, "mode").unwrap_or_default();
        if baseline_mode != mode {
            eprintln!(
                "sweep_bench: baseline mode {baseline_mode:?} does not match run mode {mode:?}"
            );
            return ExitCode::from(2);
        }
        let Some(baseline_speedup) = json_number(&baseline_json, "speedup") else {
            eprintln!("sweep_bench: baseline {baseline_path} has no \"speedup\" field");
            return ExitCode::from(2);
        };
        let floor = baseline_speedup * 0.8;
        if speedup < floor {
            eprintln!(
                "sweep_bench: REGRESSION — speedup {speedup:.1}x fell below {floor:.1}x \
                 (80% of the committed baseline {baseline_speedup:.1}x)"
            );
            return ExitCode::FAILURE;
        }
        println!(
            "sweep_bench: gate passed — speedup {speedup:.1}x >= {floor:.1}x \
             (80% of baseline {baseline_speedup:.1}x)"
        );
    }
    ExitCode::SUCCESS
}
