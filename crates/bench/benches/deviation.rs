//! Benchmark: the faithfulness harness — one deviant run and a full
//! catalog sweep (the Theorem-1 workload).

use criterion::{criterion_group, criterion_main, Criterion};
use specfaith_core::id::NodeId;
use specfaith_faithful::harness::FaithfulSim;
use specfaith_fpss::deviation::DropTransitPackets;
use specfaith_fpss::traffic::TrafficMatrix;
use specfaith_graph::generators::figure1;

fn bench_single_deviant_run(c: &mut Criterion) {
    let net = figure1();
    let sim = FaithfulSim::new(
        net.topology.clone(),
        net.costs.clone(),
        TrafficMatrix::single(net.x, net.z, 5),
    );
    let deviant: NodeId = net.c;
    c.bench_function("faithful_run_with_deviant", |b| {
        b.iter(|| sim.run_with_deviant(deviant, Box::new(DropTransitPackets), 7));
    });
}

fn bench_catalog_sweep(c: &mut Criterion) {
    let net = figure1();
    let sim = FaithfulSim::new(
        net.topology.clone(),
        net.costs.clone(),
        TrafficMatrix::single(net.x, net.z, 5),
    );
    let mut group = c.benchmark_group("equilibrium_sweep");
    group.sample_size(10);
    group.bench_function("figure1_full_catalog", |b| {
        b.iter(|| sim.equilibrium_report(7));
    });
    group.finish();
}

criterion_group!(benches, bench_single_deviant_run, bench_catalog_sweep);
criterion_main!(benches);
