//! Benchmark: the faithfulness harness — one deviant run and a full
//! catalog sweep (the Theorem-1 workload), through the scenario API.

use criterion::{criterion_group, criterion_main, Criterion};
use specfaith::scenario::{Catalog, Mechanism, Scenario, TopologySource, TrafficModel};
use specfaith_core::id::NodeId;
use specfaith_fpss::deviation::DropTransitPackets;

fn figure1_scenario() -> Scenario {
    Scenario::builder()
        .topology(TopologySource::Figure1)
        .traffic(TrafficModel::single_by_index(5, 4, 5)) // X -> Z
        .mechanism(Mechanism::faithful())
        .build()
}

fn bench_single_deviant_run(c: &mut Criterion) {
    let scenario = figure1_scenario();
    let deviant = NodeId::new(2); // C
    c.bench_function("faithful_run_with_deviant", |b| {
        b.iter(|| scenario.run_with_deviant(deviant, Box::new(DropTransitPackets), 7));
    });
}

fn bench_catalog_sweep(c: &mut Criterion) {
    let scenario = figure1_scenario();
    let catalog = Catalog::standard();
    let mut group = c.benchmark_group("equilibrium_sweep");
    group.sample_size(10);
    group.bench_function("figure1_full_catalog", |b| {
        b.iter(|| scenario.equilibrium_report(7, &catalog));
    });
    group.finish();
}

criterion_group!(benches, bench_single_deviant_run, bench_catalog_sweep);
criterion_main!(benches);
