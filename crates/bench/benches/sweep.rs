//! Benchmark: deviation-sweep throughput (deviation-runs/sec), serial vs
//! parallel, on the paper's Figure 1 and a 12-node random biconnected
//! network.
//!
//! This is the workload the scenario API exists for: the Theorem-1 grid
//! of `(seed × node × deviation)` cells. The serial and parallel variants
//! produce byte-identical reports (asserted in
//! `tests/scenario_sweep_determinism.rs`); here we measure what the
//! fan-out buys in wall-clock. On a single-core machine the two variants
//! tie (parallelism can't help); the speedup shows on multi-core
//! hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use specfaith::scenario::{Catalog, CostModel, Mechanism, Scenario, TopologySource, TrafficModel};

fn scenarios() -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "figure1",
            Scenario::builder()
                .topology(TopologySource::Figure1)
                .traffic(TrafficModel::single_by_index(5, 4, 4)) // X -> Z
                .mechanism(Mechanism::faithful())
                .build(),
        ),
        (
            "random12",
            Scenario::builder()
                .topology(TopologySource::RandomBiconnected {
                    n: 12,
                    extra_edges: 6,
                })
                .costs(CostModel::Random { lo: 1, hi: 12 })
                .traffic(TrafficModel::Random {
                    flows: 4,
                    max_packets: 3,
                })
                .instance_seed(2004)
                .mechanism(Mechanism::faithful())
                // Pathological deviant cells (restart cycles + routing
                // churn) otherwise run to the 10M-event default and
                // dominate the measurement; the cap bounds every cell
                // without touching the honest path.
                .max_events(250_000)
                .build(),
        ),
    ]
}

fn bench_sweep(c: &mut Criterion) {
    let catalog = Catalog::standard();
    let seeds = [7u64];
    for (label, scenario) in scenarios() {
        let cells = (1 + scenario.num_nodes() * catalog.len()) as u64 * seeds.len() as u64;
        let mut group = c.benchmark_group(format!("sweep/{label}"));
        group.sample_size(10);
        // Throughput in deviation-runs (cells) per second.
        group.throughput(Throughput::Elements(cells));
        group.bench_with_input(BenchmarkId::from_parameter("serial"), &scenario, |b, s| {
            b.iter(|| s.sweep_serial(&seeds, &catalog));
        });
        group.bench_with_input(
            BenchmarkId::from_parameter("parallel"),
            &scenario,
            |b, s| {
                b.iter(|| s.sweep(&seeds, &catalog));
            },
        );
        group.finish();
    }
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
