//! Benchmark: the crypto substrate (the per-checkpoint cost of hashing
//! tables and sealing bank envelopes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use specfaith_crypto::auth::ChannelKey;
use specfaith_crypto::mac::hmac_sha256;
use specfaith_crypto::sha256::sha256;
use specfaith_crypto::tablehash::TableHasher;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(data));
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0xcdu8; 256];
    c.bench_function("hmac_sha256_256B", |b| {
        b.iter(|| hmac_sha256(b"key-material", &data));
    });
}

fn bench_table_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_hash_rows");
    for rows in [16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter(|| {
                let mut h = TableHasher::new("bench");
                for i in 0..rows as u64 {
                    h.put_u32(i as u32)
                        .put_u64(i)
                        .put_i64(-(i as i64))
                        .row_boundary();
                }
                h.finish()
            });
        });
    }
    group.finish();
}

fn bench_seal_open(c: &mut Criterion) {
    let key = ChannelKey::derive(b"bank-secret", 3);
    let payload = vec![0u8; 512];
    c.bench_function("channel_seal_open_512B", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let env = key.seal(seq, payload.clone());
            key.open(&env, seq - 1).expect("valid")
        });
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_table_hash,
    bench_seal_open
);
criterion_main!(benches);
