//! Benchmark: the strategyproofness tester over the FPSS routing
//! mechanism (experiment E3's workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use specfaith_bench::instance;
use specfaith_core::mechanism::{check_strategyproof, MisreportGrid};
use specfaith_core::vcg::VcgMechanism;
use specfaith_fpss::pricing::RoutingProblem;
use specfaith_graph::costs::CostVector;

fn bench_strategyproofness(c: &mut Criterion) {
    let mut group = c.benchmark_group("check_strategyproof");
    group.sample_size(10);
    for n in [6usize, 10, 14] {
        let inst = instance(n, 3);
        let flows = inst
            .traffic
            .flows()
            .iter()
            .map(|f| (f.src, f.dst, f.packets))
            .collect();
        let mech = VcgMechanism::new(RoutingProblem::new(inst.topo.clone(), flows));
        let mut rng = StdRng::seed_from_u64(3);
        let profiles: Vec<Vec<_>> = (0..3)
            .map(|_| CostVector::random(n, 0, 20, &mut rng).as_slice().to_vec())
            .collect();
        let grid = MisreportGrid::offsets(&[-5, -1, 1, 5]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| check_strategyproof(&mech, &profiles, &grid));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategyproofness);
criterion_main!(benches);
