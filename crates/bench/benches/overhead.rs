//! Benchmark: faithful vs plain lifecycle wall-time (the computational
//! side of experiment E8's overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specfaith_bench::instance;
use specfaith_faithful::harness::FaithfulSim;
use specfaith_fpss::runner::PlainFpssSim;

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("lifecycle");
    group.sample_size(10);
    for n in [6usize, 10, 14] {
        let inst = instance(n, 7);
        let plain =
            PlainFpssSim::new(inst.topo.clone(), inst.costs.clone(), inst.traffic.clone());
        group.bench_with_input(BenchmarkId::new("plain", n), &plain, |b, sim| {
            b.iter(|| sim.run_faithful(7));
        });
        let faithful =
            FaithfulSim::new(inst.topo.clone(), inst.costs.clone(), inst.traffic.clone());
        group.bench_with_input(BenchmarkId::new("faithful", n), &faithful, |b, sim| {
            b.iter(|| sim.run_faithful(7));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
