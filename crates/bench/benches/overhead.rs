//! Benchmark: faithful vs plain lifecycle wall-time (the computational
//! side of experiment E8's overhead), through the scenario API.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specfaith::scenario::{CostModel, Mechanism, Scenario, TopologySource, TrafficModel};
use specfaith_bench::instance;

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("lifecycle");
    group.sample_size(10);
    for n in [6usize, 10, 14] {
        let inst = instance(n, 7);
        let base = Scenario::builder()
            .topology(TopologySource::Explicit(inst.topo))
            .costs(CostModel::Explicit(inst.costs))
            .traffic(TrafficModel::Flows(inst.traffic.flows().to_vec()));
        let plain = base.clone().mechanism(Mechanism::Plain).build();
        group.bench_with_input(BenchmarkId::new("plain", n), &plain, |b, scenario| {
            b.iter(|| scenario.run(7));
        });
        let faithful = base.clone().mechanism(Mechanism::faithful()).build();
        group.bench_with_input(BenchmarkId::new("faithful", n), &faithful, |b, scenario| {
            b.iter(|| scenario.run(7));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
