//! Benchmark: centralized LCP and VCG payment computation (the primitive
//! behind experiment E1 and the checkers' reference semantics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specfaith_bench::instance;
use specfaith_core::id::NodeId;
use specfaith_graph::lcp::{lcp_tree, lcp_tree_avoiding};

fn bench_lcp_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("lcp_tree");
    for n in [8usize, 16, 32, 64] {
        let inst = instance(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| lcp_tree(&inst.topo, &inst.costs, NodeId::new(0)));
        });
    }
    group.finish();
}

fn bench_lcp_avoiding(c: &mut Criterion) {
    let mut group = c.benchmark_group("lcp_tree_avoiding");
    for n in [8usize, 16, 32, 64] {
        let inst = instance(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| {
                lcp_tree_avoiding(
                    &inst.topo,
                    &inst.costs,
                    NodeId::new(0),
                    Some(NodeId::new(1)),
                )
            });
        });
    }
    group.finish();
}

fn bench_all_pairs_vcg(c: &mut Criterion) {
    let mut group = c.benchmark_group("expected_tables");
    group.sample_size(10);
    for n in [8usize, 16, 24] {
        let inst = instance(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| specfaith_fpss::pricing::expected_tables(&inst.topo, &inst.costs));
        });
    }
    group.finish();
}

/// The cost of one reference-table derivation, cold cache vs the
/// pre-`RouteCache` per-pair-query implementation — the within-cell half
/// of the sweep speedup (the cross-cell half is the shared registry).
fn bench_route_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("expected_tables_cold_cache_vs_per_query");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let inst = instance(n, 42);
        group.bench_with_input(BenchmarkId::new("cold_cache", n), &inst, |b, inst| {
            b.iter(|| {
                let routes =
                    specfaith_graph::cache::RouteCache::new(inst.topo.clone(), inst.costs.clone());
                specfaith_fpss::pricing::expected_tables_in(&routes)
            });
        });
        group.bench_with_input(BenchmarkId::new("per_query", n), &inst, |b, inst| {
            b.iter(|| specfaith_fpss::pricing::expected_tables_uncached(&inst.topo, &inst.costs));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lcp_tree,
    bench_lcp_avoiding,
    bench_all_pairs_vcg,
    bench_route_cache
);
criterion_main!(benches);
