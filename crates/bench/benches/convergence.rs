//! Benchmark: distributed FPSS construction + execution (experiment E4's
//! workload) as network size grows, through the scenario API.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specfaith::scenario::{CostModel, Mechanism, Scenario, TopologySource, TrafficModel};
use specfaith_bench::instance;

fn bench_plain_lifecycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("plain_fpss_lifecycle");
    group.sample_size(10);
    for n in [6usize, 10, 16, 24] {
        let inst = instance(n, 7);
        let scenario = Scenario::builder()
            .topology(TopologySource::Explicit(inst.topo))
            .costs(CostModel::Explicit(inst.costs))
            .traffic(TrafficModel::Flows(inst.traffic.flows().to_vec()))
            .mechanism(Mechanism::Plain)
            .build();
        group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, scenario| {
            b.iter(|| scenario.run(7));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plain_lifecycle);
criterion_main!(benches);
