//! Benchmark: distributed FPSS construction + execution (experiment E4's
//! workload) as network size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specfaith_bench::instance;
use specfaith_fpss::runner::PlainFpssSim;

fn bench_plain_lifecycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("plain_fpss_lifecycle");
    group.sample_size(10);
    for n in [6usize, 10, 16, 24] {
        let inst = instance(n, 7);
        let sim = PlainFpssSim::new(inst.topo.clone(), inst.costs.clone(), inst.traffic.clone());
        group.bench_with_input(BenchmarkId::from_parameter(n), &sim, |b, sim| {
            b.iter(|| sim.run_faithful(7));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plain_lifecycle);
criterion_main!(benches);
