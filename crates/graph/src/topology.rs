//! Undirected simple-graph topologies with biconnectivity queries.

use specfaith_core::id::{node_ids, NodeId};
use std::collections::BTreeSet;
use std::fmt;

/// An immutable, undirected, simple network topology.
///
/// Nodes are the dense ids `0..n`; adjacency lists are sorted so iteration
/// order — and therefore every distributed computation driven by it — is
/// deterministic.
///
/// # Example
///
/// ```
/// use specfaith_graph::topology::Topology;
/// use specfaith_core::id::NodeId;
///
/// let topo = Topology::builder(3)
///     .edge(0, 1)
///     .edge(1, 2)
///     .edge(2, 0)
///     .build();
/// assert!(topo.is_biconnected());
/// assert_eq!(topo.neighbors(NodeId::new(1)), &[NodeId::new(0), NodeId::new(2)]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    adj: Vec<Vec<NodeId>>,
    edges: Vec<(NodeId, NodeId)>,
}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Topology({} nodes, {} edges)", self.n, self.edges.len())
    }
}

/// Incremental builder for [`Topology`].
#[derive(Clone, Debug)]
pub struct TopologyBuilder {
    n: usize,
    edges: BTreeSet<(u32, u32)>,
}

impl TopologyBuilder {
    /// Adds an undirected edge between nodes `a` and `b` (raw indices).
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range indices.
    pub fn edge(mut self, a: u32, b: u32) -> Self {
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(
            (a as usize) < self.n && (b as usize) < self.n,
            "edge ({a},{b}) references a node outside 0..{}",
            self.n
        );
        self.edges.insert((a.min(b), a.max(b)));
        self
    }

    /// Adds an edge given [`NodeId`]s.
    ///
    /// # Panics
    ///
    /// As for [`TopologyBuilder::edge`].
    pub fn edge_ids(self, a: NodeId, b: NodeId) -> Self {
        self.edge(a.raw(), b.raw())
    }

    /// Finalizes the topology.
    pub fn build(self) -> Topology {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); self.n];
        let mut edges = Vec::with_capacity(self.edges.len());
        for &(a, b) in &self.edges {
            let (a, b) = (NodeId::new(a), NodeId::new(b));
            adj[a.index()].push(b);
            adj[b.index()].push(a);
            edges.push((a, b));
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        Topology {
            n: self.n,
            adj,
            edges,
        }
    }
}

impl Topology {
    /// Starts building a topology over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn builder(n: usize) -> TopologyBuilder {
        assert!(n > 0, "a topology needs at least one node");
        TopologyBuilder {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All node ids, in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + Clone {
        node_ids(self.n)
    }

    /// The sorted neighbor list of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adj[node.index()]
    }

    /// The degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// The undirected edges, each reported once with the smaller id first.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Whether nodes `a` and `b` are adjacent.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// Whether the graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.n
    }

    /// The articulation points (cut vertices) of the graph, ascending.
    ///
    /// Uses an iterative Tarjan low-link computation, so deep topologies
    /// cannot overflow the call stack.
    pub fn articulation_points(&self) -> Vec<NodeId> {
        let n = self.n;
        let mut disc = vec![usize::MAX; n]; // discovery times; MAX = unvisited
        let mut low = vec![usize::MAX; n];
        let mut parent = vec![usize::MAX; n];
        let mut is_cut = vec![false; n];
        let mut timer = 0usize;

        for root in 0..n {
            if disc[root] != usize::MAX {
                continue;
            }
            // Iterative DFS: (node, next-neighbor-index) frames.
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            disc[root] = timer;
            low[root] = timer;
            timer += 1;
            let mut root_children = 0usize;

            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                if *next < self.adj[v].len() {
                    let w = self.adj[v][*next].index();
                    *next += 1;
                    if disc[w] == usize::MAX {
                        parent[w] = v;
                        disc[w] = timer;
                        low[w] = timer;
                        timer += 1;
                        if v == root {
                            root_children += 1;
                        }
                        stack.push((w, 0));
                    } else if w != parent[v] {
                        low[v] = low[v].min(disc[w]);
                    }
                } else {
                    stack.pop();
                    if let Some(&(p, _)) = stack.last() {
                        low[p] = low[p].min(low[v]);
                        if p != root && low[v] >= disc[p] {
                            is_cut[p] = true;
                        }
                    }
                }
            }
            if root_children > 1 {
                is_cut[root] = true;
            }
        }
        (0..n)
            .filter(|&v| is_cut[v])
            .map(NodeId::from_index)
            .collect()
    }

    /// Whether the graph is biconnected: connected, at least three nodes,
    /// and free of articulation points. FPSS assumes biconnectivity so that
    /// every VCG excluded-node path `d_{G−k}(i,j)` exists.
    pub fn is_biconnected(&self) -> bool {
        self.n >= 3 && self.is_connected() && self.articulation_points().is_empty()
    }

    /// The topology with `removed` (and its incident edges) deleted, node
    /// ids unchanged. The removed node remains as an isolated vertex so
    /// that indices keep their meaning.
    pub fn without_node(&self, removed: NodeId) -> Topology {
        let mut builder = Topology::builder(self.n);
        for &(a, b) in &self.edges {
            if a != removed && b != removed {
                builder = builder.edge_ids(a, b);
            }
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        Topology::builder(3)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .build()
    }

    /// Two triangles sharing node 2 — node 2 is an articulation point.
    fn bowtie() -> Topology {
        Topology::builder(5)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .edge(2, 3)
            .edge(3, 4)
            .edge(4, 2)
            .build()
    }

    fn path3() -> Topology {
        Topology::builder(3).edge(0, 1).edge(1, 2).build()
    }

    #[test]
    fn neighbors_are_sorted_and_deduplicated() {
        let topo = Topology::builder(4)
            .edge(3, 0)
            .edge(0, 1)
            .edge(1, 0) // duplicate, reversed
            .build();
        assert_eq!(
            topo.neighbors(NodeId::new(0)),
            &[NodeId::new(1), NodeId::new(3)]
        );
        assert_eq!(topo.num_edges(), 2);
    }

    #[test]
    fn has_edge_and_degree() {
        let topo = triangle();
        assert!(topo.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!topo.has_edge(NodeId::new(0), NodeId::new(0)));
        assert_eq!(topo.degree(NodeId::new(1)), 2);
    }

    #[test]
    fn connectivity() {
        assert!(triangle().is_connected());
        let disconnected = Topology::builder(4).edge(0, 1).edge(2, 3).build();
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn triangle_is_biconnected() {
        assert!(triangle().is_biconnected());
        assert!(triangle().articulation_points().is_empty());
    }

    #[test]
    fn path_has_internal_articulation_point() {
        let topo = path3();
        assert_eq!(topo.articulation_points(), vec![NodeId::new(1)]);
        assert!(!topo.is_biconnected());
    }

    #[test]
    fn bowtie_articulation_point() {
        assert_eq!(bowtie().articulation_points(), vec![NodeId::new(2)]);
        assert!(!bowtie().is_biconnected());
    }

    #[test]
    fn two_nodes_are_not_biconnected() {
        let k2 = Topology::builder(2).edge(0, 1).build();
        assert!(k2.is_connected());
        assert!(!k2.is_biconnected());
    }

    #[test]
    fn without_node_removes_incident_edges() {
        let topo = triangle().without_node(NodeId::new(2));
        assert_eq!(topo.num_edges(), 1);
        assert!(topo.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!topo.is_connected()); // node 2 is now isolated
    }

    #[test]
    fn removing_articulation_point_disconnects() {
        let topo = bowtie().without_node(NodeId::new(2));
        // 0-1 and 3-4 remain, plus isolated node 2 — three components.
        assert!(!topo.is_connected());
    }

    #[test]
    fn articulation_points_on_larger_ring_with_tail() {
        // Ring 0-1-2-3-0 plus tail 3-4: node 3 is the only cut vertex.
        let topo = Topology::builder(5)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(3, 0)
            .edge(3, 4)
            .build();
        assert_eq!(topo.articulation_points(), vec![NodeId::new(3)]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn builder_rejects_self_loop() {
        let _ = Topology::builder(2).edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn builder_rejects_out_of_range() {
        let _ = Topology::builder(2).edge(0, 2);
    }

    #[test]
    fn debug_is_informative() {
        assert_eq!(format!("{:?}", triangle()), "Topology(3 nodes, 3 edges)");
    }
}
