//! Paths and the deterministic path-preference order.
//!
//! Distributed FPSS only works if every node resolves lowest-cost-path ties
//! identically: a principal and its checkers must agree bit-for-bit on
//! routing tables, or the bank would restart honest networks. [`PathMetric`]
//! therefore defines a **total** preference order:
//!
//! 1. lower total transit cost, then
//! 2. fewer hops, then
//! 3. lexicographically smaller node sequence.
//!
//! The order is preserved by path extension (appending the same next hop to
//! two comparable paths keeps their order), which is what makes both
//! centralized Dijkstra and the distributed Bellman–Ford updates converge
//! to the same unique table.

use specfaith_core::id::NodeId;
use specfaith_core::money::Cost;
use std::cmp::Ordering;
use std::fmt;

/// A concrete path together with its total transit cost.
///
/// The node sequence includes both endpoints; the cost counts only the
/// intermediate nodes' transit costs (endpoints transit their own traffic
/// for free, per FPSS).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PathMetric {
    cost: Cost,
    nodes: Vec<NodeId>,
}

impl PathMetric {
    /// A zero-cost, zero-hop path from a node to itself.
    pub fn trivial(node: NodeId) -> Self {
        PathMetric {
            cost: Cost::ZERO,
            nodes: vec![node],
        }
    }

    /// Builds a path from its node sequence and precomputed cost.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or repeats a node (paths are simple).
    pub fn new(nodes: Vec<NodeId>, cost: Cost) -> Self {
        assert!(!nodes.is_empty(), "a path has at least one node");
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), nodes.len(), "paths must be simple");
        PathMetric { cost, nodes }
    }

    /// Total transit cost of the path.
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// The full node sequence, source first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Consumes the path, returning its node sequence without cloning.
    pub fn into_nodes(self) -> Vec<NodeId> {
        self.nodes
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The destination node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("paths are nonempty")
    }

    /// Number of edges traversed.
    pub fn hops(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The intermediate (transit) nodes — the nodes that are paid.
    pub fn transit_nodes(&self) -> &[NodeId] {
        if self.nodes.len() <= 2 {
            &[]
        } else {
            &self.nodes[1..self.nodes.len() - 1]
        }
    }

    /// Whether `node` appears anywhere on the path.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Extends the path by one hop to `next`, charging `next_transit_cost`
    /// for the *current* destination becoming an intermediate node.
    ///
    /// `transit_cost_of_current_destination` is the transit cost of the
    /// node that was the destination before extension (it now carries the
    /// packet onward). Returns `None` if the extension would revisit a node.
    pub fn extended(
        &self,
        next: NodeId,
        transit_cost_of_current_destination: Cost,
    ) -> Option<PathMetric> {
        if self.contains(next) {
            return None;
        }
        // The current destination becomes an intermediate node, except when
        // the path is trivial (source == current destination transits free).
        let added = if self.nodes.len() == 1 {
            Cost::ZERO
        } else {
            transit_cost_of_current_destination
        };
        let mut nodes = self.nodes.clone();
        nodes.push(next);
        Some(PathMetric {
            cost: self.cost + added,
            nodes,
        })
    }
}

impl PartialOrd for PathMetric {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PathMetric {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cost
            .cmp(&other.cost)
            .then_with(|| self.nodes.len().cmp(&other.nodes.len()))
            .then_with(|| self.nodes.cmp(&other.nodes))
    }
}

impl fmt::Debug for PathMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PathMetric({self})")
    }
}

impl fmt::Display for PathMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, node) in self.nodes.iter().enumerate() {
            if i > 0 {
                f.write_str("-")?;
            }
            write!(f, "{node}")?;
        }
        write!(f, " (cost {})", self.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn trivial_path() {
        let p = PathMetric::trivial(n(3));
        assert_eq!(p.cost(), Cost::ZERO);
        assert_eq!(p.hops(), 0);
        assert_eq!(p.source(), n(3));
        assert_eq!(p.destination(), n(3));
        assert!(p.transit_nodes().is_empty());
    }

    #[test]
    fn transit_nodes_exclude_endpoints() {
        let p = PathMetric::new(vec![n(0), n(1), n(2), n(3)], Cost::new(5));
        assert_eq!(p.transit_nodes(), &[n(1), n(2)]);
        assert_eq!(p.hops(), 3);
    }

    #[test]
    fn two_node_path_has_no_transit() {
        let p = PathMetric::new(vec![n(0), n(1)], Cost::ZERO);
        assert!(p.transit_nodes().is_empty());
    }

    #[test]
    fn extension_charges_previous_destination() {
        // 0 → 1 costs nothing (no intermediates); 0 → 1 → 2 charges node 1.
        let p = PathMetric::trivial(n(0))
            .extended(n(1), Cost::new(99))
            .expect("fresh node");
        assert_eq!(p.cost(), Cost::ZERO);
        let p2 = p.extended(n(2), Cost::new(7)).expect("fresh node");
        assert_eq!(p2.cost(), Cost::new(7));
        assert_eq!(p2.nodes(), &[n(0), n(1), n(2)]);
    }

    #[test]
    fn extension_refuses_revisits() {
        let p = PathMetric::new(vec![n(0), n(1)], Cost::ZERO);
        assert!(p.extended(n(0), Cost::ZERO).is_none());
    }

    #[test]
    fn order_prefers_cost_then_hops_then_lex() {
        let cheap = PathMetric::new(vec![n(0), n(9), n(1)], Cost::new(1));
        let pricey = PathMetric::new(vec![n(0), n(1)], Cost::new(2));
        assert!(cheap < pricey, "cost dominates hop count");

        let short = PathMetric::new(vec![n(0), n(1)], Cost::new(2));
        let long = PathMetric::new(vec![n(0), n(3), n(1)], Cost::new(2));
        assert!(short < long, "fewer hops breaks cost ties");

        let lex_small = PathMetric::new(vec![n(0), n(2), n(1)], Cost::new(2));
        let lex_big = PathMetric::new(vec![n(0), n(3), n(1)], Cost::new(2));
        assert!(lex_small < lex_big, "lexicographic order breaks the rest");
    }

    #[test]
    fn order_is_preserved_by_extension() {
        // If p < q (same endpoints), then p+w < q+w with the same charge.
        let p = PathMetric::new(vec![n(0), n(2)], Cost::new(0));
        let q = PathMetric::new(vec![n(0), n(1), n(2)], Cost::new(0));
        assert!(p < q);
        let pw = p.extended(n(5), Cost::new(3)).expect("ok");
        let qw = q.extended(n(5), Cost::new(3)).expect("ok");
        assert!(pw < qw);
    }

    #[test]
    #[should_panic(expected = "simple")]
    fn rejects_repeated_nodes() {
        let _ = PathMetric::new(vec![n(0), n(1), n(0)], Cost::ZERO);
    }

    #[test]
    fn display_renders_route() {
        let p = PathMetric::new(vec![n(0), n(4), n(2)], Cost::new(3));
        assert_eq!(p.to_string(), "n0-n4-n2 (cost 3)");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy producing an arbitrary simple path with an arbitrary cost.
    fn arb_path() -> impl Strategy<Value = PathMetric> {
        (proptest::collection::vec(0u32..24, 1..8), 0u64..1000).prop_map(|(mut ids, cost)| {
            ids.sort_unstable();
            ids.dedup();
            let nodes: Vec<NodeId> = ids.into_iter().map(NodeId::new).collect();
            PathMetric::new(nodes, Cost::new(cost))
        })
    }

    proptest! {
        /// The preference order is a total order: antisymmetric and
        /// transitive on arbitrary triples.
        #[test]
        fn order_is_total(a in arb_path(), b in arb_path(), c in arb_path()) {
            // Antisymmetry.
            if a < b {
                prop_assert!(b > a);
            }
            if a == b {
                prop_assert!(a.cmp(&b) == std::cmp::Ordering::Equal);
            }
            // Transitivity.
            if a <= b && b <= c {
                prop_assert!(a <= c);
            }
        }

        /// Extension preserves strict order between same-endpoint paths:
        /// the property that makes distributed tie-breaking converge to
        /// the centralized choice.
        #[test]
        fn extension_preserves_order(
            cost_a in 0u64..100,
            cost_b in 0u64..100,
            charge in 0u64..50,
        ) {
            // Two paths 0→2 (different intermediate sets), extended by the
            // same next hop and the same charge.
            let a = PathMetric::new(vec![NodeId::new(0), NodeId::new(2)], Cost::new(cost_a));
            let b = PathMetric::new(
                vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
                Cost::new(cost_b),
            );
            let (Some(aw), Some(bw)) = (
                a.extended(NodeId::new(5), Cost::new(charge)),
                b.extended(NodeId::new(5), Cost::new(charge)),
            ) else {
                return Ok(());
            };
            prop_assert_eq!(a < b, aw < bw);
            prop_assert_eq!(a > b, aw > bw);
        }

        /// Extension adds exactly the charge (when non-trivial) and keeps
        /// the path simple.
        #[test]
        fn extension_cost_accounting(p in arb_path(), charge in 0u64..50) {
            let next = NodeId::new(99);
            let extended = p.extended(next, Cost::new(charge)).expect("99 unused");
            let expected = if p.nodes().len() == 1 {
                p.cost()
            } else {
                p.cost() + Cost::new(charge)
            };
            prop_assert_eq!(extended.cost(), expected);
            prop_assert_eq!(extended.hops(), p.hops() + 1);
            prop_assert_eq!(extended.destination(), next);
        }
    }
}
