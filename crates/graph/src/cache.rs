//! Memoized all-pairs lowest-cost routes: the [`RouteCache`] and the
//! [`CacheScope`] registries that own collections of them.
//!
//! Every layer of the workspace asks the same two questions of a
//! `(topology, cost-vector)` pair — *"what is the LCP from `src` to
//! `dst`?"* and *"what is it avoiding `k`?"* (the `d_{G−k}` query behind
//! every VCG payment). Answering them with fresh Dijkstra runs per query
//! is what made the Theorem-1 deviation sweep quadratic-times-slower than
//! it needs to be: a single centralized reference check at `n = 64` issues
//! tens of thousands of single-pair queries against at most
//! `n + n·(n−1)` *distinct* trees.
//!
//! A [`RouteCache`] owns one `(topology, cost-vector)` pair and memoizes
//! every tree the pair can produce, computing each at most once (behind
//! [`OnceLock`], so concurrent sweep cells share the work).
//!
//! # Memory model
//!
//! Plain trees live in a dense per-source table (`n` lazily-filled slots —
//! one pointer-sized slot per node, filled on first query). Avoid trees —
//! of which there are `n·(n−1)` *possible* but typically only
//! `O(n · transits-per-tree)` *needed* — live in a **sparse index** keyed
//! by `(src, avoid)`: a slot exists only for pairs actually queried, so a
//! cache's footprint is proportional to the trees it has computed, never
//! to `n²`. At `n = 1024` a fully-dense table would be ~1M slots before a
//! single query; the sparse index allocates nothing until asked.
//!
//! # Scoping guidance
//!
//! Registries of caches are [`CacheScope`]s: create one per run or sweep
//! ([`CacheScope::unbounded`]), let every cell of the workload share it,
//! and drop it on completion — memory is then bounded by the distinct
//! declared-cost vectors *that workload* actually produced, and two
//! concurrent workloads can never evict each other's caches. The
//! process-wide registry behind [`RouteCache::shared`] survives as a
//! compatibility default ([`CacheScope::global`], capacity-bounded with
//! LRU eviction); long-running processes that churn through many distinct
//! cost vectors should prefer run-scoped caches, or call
//! [`RouteCache::clear_shared`] between workloads.
//!
//! # Example
//!
//! ```
//! use specfaith_graph::cache::RouteCache;
//! use specfaith_graph::generators::figure1;
//!
//! let net = figure1();
//! let routes = RouteCache::shared(&net.topology, &net.costs);
//! let path = routes.path(net.x, net.z).expect("biconnected");
//! assert_eq!(path.cost().value(), 2);
//! // The detour avoiding C — the d_{G−C}(X,Z) VCG query — reuses the
//! // same cache; no tree is ever computed twice.
//! let detour = routes.path_avoiding(net.x, net.z, net.c).expect("biconnected");
//! assert_eq!(detour.cost().value(), 5);
//! ```

use crate::costs::CostVector;
use crate::lcp::lcp_tree;
use crate::path::PathMetric;
use crate::repair::{repair_avoiding, repair_cost_change};
use crate::topology::Topology;
use specfaith_core::id::NodeId;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// How many distinct `(topology, cost-vector)` pairs the process-wide
/// [`CacheScope::global`] registry keeps alive at once. Beyond this the
/// least-recently-used pair is evicted; correctness is unaffected (a
/// re-miss just recomputes). Run-scoped registries
/// ([`CacheScope::unbounded`]) have no such limit — they are dropped
/// wholesale when their workload completes.
const SHARED_CAPACITY: usize = 64;

/// Shard count of the sparse avoid-tree index. Shards only bound lock
/// contention on the *index* (tree computation itself happens outside any
/// shard lock); 16 keeps the per-cache overhead at sixteen empty maps.
const AVOID_SHARDS: usize = 16;

/// A lazily computed `d_{G−avoid}` tree, shared by reference: entry
/// `dst.index()` is the lowest-cost `src → dst` path avoiding the node
/// the tree was keyed under, or `None` where unreachable without it.
pub type AvoidTree = Arc<[Option<PathMetric>]>;

/// A 64-bit FNV-1a fingerprint of a `(topology, cost-vector)` pair.
///
/// Used only to make registry lookup cheap; equality of the full pair is
/// re-verified on every hit, so a collision can never alias two different
/// networks onto one cache.
fn fingerprint(topo: &Topology, costs: &CostVector) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(PRIME);
        }
    };
    mix(topo.num_nodes() as u64);
    for &(a, b) in topo.edges() {
        mix(((a.raw() as u64) << 32) | b.raw() as u64);
    }
    for (_, cost) in costs.iter() {
        mix(cost.value());
    }
    h
}

/// The sparse `(src, avoid)` → tree index: per-shard maps of lazily
/// initialized slots. A slot is created on first lookup of its pair and
/// never removed while the cache lives, so memory is proportional to the
/// distinct pairs queried. The tree itself is computed outside the shard
/// lock, behind the slot's [`OnceLock`] (so two threads racing on one
/// pair still compute it once, and threads on different pairs never
/// serialize each other's Dijkstra runs).
type AvoidShard = Mutex<HashMap<u64, Arc<OnceLock<AvoidTree>>>>;

struct SparseAvoidIndex {
    shards: Box<[AvoidShard]>,
    entries: AtomicUsize,
}

impl SparseAvoidIndex {
    fn new() -> Self {
        SparseAvoidIndex {
            shards: (0..AVOID_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            entries: AtomicUsize::new(0),
        }
    }

    /// The slot for `key`, created if absent.
    fn slot(&self, key: u64) -> Arc<OnceLock<AvoidTree>> {
        let shard = &self.shards[key as usize % self.shards.len()];
        let mut map = shard.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(key).or_insert_with(|| {
            self.entries.fetch_add(1, Ordering::Relaxed);
            Arc::new(OnceLock::new())
        }))
    }

    /// Number of `(src, avoid)` pairs with a slot (every queried pair,
    /// whether or not its computation has finished).
    fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }
}

/// Memoized lowest-cost routes for one `(topology, cost-vector)` pair.
///
/// Trees are computed lazily, at most once each. All methods take `&self`
/// and are safe to call from many threads at once; the values they return
/// are pure functions of the pair, so caching cannot change any result —
/// only how often Dijkstra runs.
///
/// Memory is proportional to the trees actually computed: `n` dense slots
/// for the plain per-source trees plus one sparse entry per distinct
/// `(src, avoid)` query — never the `n²` worst case (see the
/// [module docs](self) for the full memory model).
pub struct RouteCache {
    topo: Topology,
    costs: CostVector,
    fingerprint: u64,
    /// `trees[src]`: the LCP tree rooted at `src`.
    trees: Vec<OnceLock<Box<[Option<PathMetric>]>>>,
    /// Sparse `(src, avoid)` index of `d_{G−avoid}` trees.
    avoid_trees: SparseAvoidIndex,
    /// When present, this cache's cost vector differs from `seed.base`'s at
    /// exactly one node, and plain trees are [`repair`](crate::repair)ed
    /// from the base cache's instead of built by fresh Dijkstra. Repair is
    /// exactly equivalent, so seeding is invisible in every answer. Behind
    /// a mutex so [`RouteCache::detach_seed`] can drop the donor reference
    /// once the caller is done repairing (locked only at tree
    /// materialization, never per query).
    seed: Mutex<Option<CacheSeed>>,
    /// Number of tree materializations (fresh or repaired) performed so
    /// far (diagnostics for benches and tests; not part of any result).
    computed: AtomicUsize,
}

/// The donor of a seeded [`RouteCache`]: the base cache whose trees are
/// repaired against the one-node cost delta at `changed`.
struct CacheSeed {
    base: Arc<RouteCache>,
    changed: NodeId,
}

impl std::fmt::Debug for RouteCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteCache")
            .field("topo", &self.topo)
            .field("costs", &self.costs)
            .field("trees_computed", &self.trees_computed())
            .field("avoid_trees_cached", &self.avoid_trees_cached())
            .finish()
    }
}

impl RouteCache {
    /// An empty cache owning `topo` and `costs`. Construction allocates
    /// `n` empty tree slots and nothing else — no `n²` table.
    ///
    /// # Panics
    ///
    /// Panics if the cost vector's arity does not match the topology.
    pub fn new(topo: Topology, costs: CostVector) -> Self {
        assert_eq!(
            topo.num_nodes(),
            costs.len(),
            "cost vector arity must match topology"
        );
        let n = topo.num_nodes();
        let fingerprint = fingerprint(&topo, &costs);
        RouteCache {
            topo,
            costs,
            fingerprint,
            trees: (0..n).map(|_| OnceLock::new()).collect(),
            avoid_trees: SparseAvoidIndex::new(),
            seed: Mutex::new(None),
            computed: AtomicUsize::new(0),
        }
    }

    /// A cache for `costs` **seeded** from `base`: the same topology, a
    /// cost vector differing from the base's at exactly one node, and
    /// every plain tree obtained by [`repair`](crate::repair)ing the base
    /// cache's tree against that one-node delta instead of a fresh
    /// Dijkstra. Sweep engines use this to derive each misreport cell's
    /// cache from the shared honest baseline (see [`CacheScope::pin`]).
    ///
    /// Repair is exactly equivalent to fresh computation, so a seeded
    /// cache's answers are byte-identical to [`RouteCache::new`]'s.
    ///
    /// # Panics
    ///
    /// Panics if `costs` does not differ from the base's vector at exactly
    /// one node (an identical vector should share the base cache itself;
    /// a multi-node delta has no single-node repair).
    pub fn seeded_from(base: &Arc<RouteCache>, costs: CostVector) -> Self {
        let changed = base
            .costs()
            .one_node_delta(&costs)
            .expect("a seeded cache differs from its base at exactly one node");
        let n = base.topo.num_nodes();
        let fingerprint = fingerprint(&base.topo, &costs);
        RouteCache {
            topo: base.topo.clone(),
            costs,
            fingerprint,
            trees: (0..n).map(|_| OnceLock::new()).collect(),
            avoid_trees: SparseAvoidIndex::new(),
            seed: Mutex::new(Some(CacheSeed {
                base: Arc::clone(base),
                changed,
            })),
            computed: AtomicUsize::new(0),
        }
    }

    /// Whether this cache repairs its trees from a seed base
    /// ([`RouteCache::seeded_from`]) rather than running fresh Dijkstra.
    pub fn is_seeded(&self) -> bool {
        self.seed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Drops the reference to the seed base. Trees already materialized
    /// keep their (repair-built, exactly equivalent) contents; trees not
    /// yet materialized fall back to fresh Dijkstra — still exact, just
    /// not repair-accelerated. Streaming engines detach each fixed point's
    /// cache from its donor once its reference check has materialized the
    /// trees it needs, so a long event stream holds one donor generation
    /// alive instead of an unbounded seeded-from chain.
    pub fn detach_seed(&self) {
        self.seed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
    }

    /// The process-shared cache for `(topo, costs)` — shorthand for
    /// [`CacheScope::global`]`.cache(topo, costs)`, retained as the
    /// compatibility default for callers with no scope of their own.
    ///
    /// Run and sweep engines thread an explicit run-scoped [`CacheScope`]
    /// instead, so concurrent workloads cannot evict each other.
    pub fn shared(topo: &Topology, costs: &CostVector) -> Arc<RouteCache> {
        CacheScope::global().cache(topo, costs)
    }

    /// Empties the process-shared registry, releasing every retained
    /// cache not otherwise referenced. Results are unaffected — future
    /// [`RouteCache::shared`] lookups just recompute.
    pub fn clear_shared() {
        CacheScope::global().clear();
    }

    /// The topology this cache answers for.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The cost vector this cache answers for.
    pub fn costs(&self) -> &CostVector {
        &self.costs
    }

    /// The LCP tree rooted at `src`: entry `dst.index()` is the lowest-cost
    /// path `src → dst`, or `None` where unreachable. Computed on first
    /// use, borrowed thereafter.
    pub fn tree(&self, src: NodeId) -> &[Option<PathMetric>] {
        self.trees[src.index()].get_or_init(|| {
            self.computed.fetch_add(1, Ordering::Relaxed);
            // Clone the donor handle out of the lock: `base.tree(src)` may
            // itself materialize (locking the *base's* seed mutex), and the
            // chain is acyclic by construction.
            let seed = self
                .seed
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .as_ref()
                .map(|s| (Arc::clone(&s.base), s.changed));
            match seed {
                // Seeded cache: repair the base cache's tree against the
                // one-node cost delta — exactly equivalent to the fresh
                // run, at the cost of the affected region only.
                Some((base, changed)) => repair_cost_change(
                    &self.topo,
                    &self.costs,
                    base.tree(src),
                    src,
                    changed,
                    base.costs().cost(changed),
                )
                .into_boxed_slice(),
                None => lcp_tree(&self.topo, &self.costs, src).into_boxed_slice(),
            }
        })
    }

    /// The LCP tree rooted at `src` in `G − avoid` — the `d_{G−k}` query
    /// behind VCG payments. One tree per `(src, avoid)` pair serves every
    /// destination; the handle is a cheap [`Arc`] clone of the cached
    /// tree, so hot paths hold it across a destination loop without
    /// re-hashing per query.
    ///
    /// Computed by [`repair`](crate::repair)ing this cache's own base tree
    /// for `src` — re-relaxing only the subtree detached by removing
    /// `avoid` — which is exactly equivalent to (and much cheaper than)
    /// the fresh `d_{G−avoid}` Dijkstra it replaced.
    ///
    /// # Panics
    ///
    /// Panics if `avoid == src`.
    pub fn tree_avoiding(&self, src: NodeId, avoid: NodeId) -> AvoidTree {
        assert!(avoid != src, "cannot avoid the source of the LCP query");
        let key = src.index() as u64 * self.topo.num_nodes() as u64 + avoid.index() as u64;
        let slot = self.avoid_trees.slot(key);
        slot.get_or_init(|| {
            let base = self.tree(src);
            self.computed.fetch_add(1, Ordering::Relaxed);
            repair_avoiding(&self.topo, &self.costs, base, src, avoid).into()
        })
        .clone()
    }

    /// The lowest-cost path `src → dst`, or `None` if unreachable.
    /// Borrowed from the cached tree — the zero-clone replacement for the
    /// deprecated [`crate::lcp::lcp`].
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<&PathMetric> {
        self.tree(src)[dst.index()].as_ref()
    }

    /// The lowest-cost path `src → dst` avoiding `avoid` entirely, or
    /// `None` if no such path exists. Clones the one path at the edge;
    /// loops over many destinations of one `(src, avoid)` pair should
    /// hold [`RouteCache::tree_avoiding`] instead and index it.
    ///
    /// # Panics
    ///
    /// Panics if `avoid` equals `src` or `dst` (the VCG query only ever
    /// avoids intermediate nodes).
    pub fn path_avoiding(&self, src: NodeId, dst: NodeId, avoid: NodeId) -> Option<PathMetric> {
        assert!(
            avoid != dst,
            "cannot avoid the destination of the LCP query"
        );
        self.tree_avoiding(src, avoid)[dst.index()].clone()
    }

    /// How many trees this cache has materialized (fresh Dijkstra runs
    /// and repairs alike). Diagnostic only: lets benches and tests verify
    /// that repeated queries hit the memo.
    pub fn trees_computed(&self) -> usize {
        self.computed.load(Ordering::Relaxed)
    }

    /// How many `(src, avoid)` pairs the sparse index holds slots for —
    /// the avoid-tree memory footprint in units of trees, which tests pin
    /// to the number of *distinct pairs queried* (never `n²`).
    pub fn avoid_trees_cached(&self) -> usize {
        self.avoid_trees.len()
    }
}

/// A registry of [`RouteCache`]s keyed by `(topology, cost-vector)`
/// equality: the ownership boundary for route-cache memory.
///
/// A scope is a cheap-to-clone handle (internally `Arc`-shared): run and
/// sweep engines create one per workload, thread clones of it through
/// every cell, and drop it on completion — releasing exactly the caches
/// that workload created. Lookup pre-filters by fingerprint and verifies
/// full structural equality on a match, so cached answers are *provably*
/// the answers the direct computation would give; cache construction and
/// the `(topology, costs)` clones happen **outside** the registry lock,
/// so concurrent sweep threads never serialize behind another thread's
/// allocation.
#[derive(Clone)]
pub struct CacheScope {
    inner: Arc<ScopeInner>,
}

struct ScopeInner {
    /// Registered caches in LRU order (front = coldest).
    registry: Mutex<VecDeque<Arc<RouteCache>>>,
    /// `None` = unbounded (run-scoped); `Some(cap)` = LRU-evicting.
    capacity: Option<usize>,
    /// Eager scopes drop single-use caches at [`CacheScope::release`]
    /// instead of retaining them to scope end.
    eager: bool,
    /// Caches exempt from eager release (e.g. a sweep's shared honest
    /// baseline); holding the `Arc` here also keeps their refcount above
    /// the release threshold.
    pinned: Mutex<Vec<Arc<RouteCache>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    /// Misses answered with a cache seeded from a pinned base
    /// ([`RouteCache::seeded_from`]) instead of a cold cache.
    seeded: AtomicUsize,
    /// Misses that went cold because no pinned cache shared the topology.
    seed_no_donor: AtomicUsize,
    /// Misses that went cold although a same-topology pinned donor existed,
    /// because no donor's cost vector differed at exactly one node
    /// ([`CostVector::one_node_delta`] returned `None`).
    seed_delta_mismatch: AtomicUsize,
    /// Caches dropped early by [`CacheScope::release`].
    released: AtomicUsize,
    /// High-water mark of simultaneously registered caches.
    peak: AtomicUsize,
}

impl std::fmt::Debug for CacheScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheScope")
            .field("len", &self.len())
            .field("capacity", &self.inner.capacity)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl CacheScope {
    fn build(capacity: Option<usize>, eager: bool) -> Self {
        CacheScope {
            inner: Arc::new(ScopeInner {
                registry: Mutex::new(VecDeque::new()),
                capacity,
                eager,
                pinned: Mutex::new(Vec::new()),
                hits: AtomicUsize::new(0),
                misses: AtomicUsize::new(0),
                evictions: AtomicUsize::new(0),
                seeded: AtomicUsize::new(0),
                seed_no_donor: AtomicUsize::new(0),
                seed_delta_mismatch: AtomicUsize::new(0),
                released: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
            }),
        }
    }

    fn with_capacity(capacity: Option<usize>) -> Self {
        CacheScope::build(capacity, false)
    }

    /// An unbounded scope with **eager release**: when a workload cell
    /// finishes with a cache no other cell shares
    /// ([`CacheScope::release`]), the cache is dropped immediately instead
    /// of lingering to scope end. Sweep engines use this so peak memory
    /// tracks *concurrent* cells, not the total distinct cost vectors of
    /// the sweep; caches several cells share — a [`CacheScope::pin`]ned
    /// honest baseline, or any cache another cell still holds — are
    /// retained exactly as in an ordinary unbounded scope.
    pub fn eager() -> Self {
        CacheScope::build(None, true)
    }

    /// An unbounded scope: nothing is ever evicted, memory is released
    /// when the scope (and every outstanding cache handle) drops. The
    /// right choice for run/sweep-scoped registries, whose distinct
    /// cost-vector population is bounded by the workload itself.
    pub fn unbounded() -> Self {
        CacheScope::with_capacity(None)
    }

    /// A scope retaining at most `capacity` caches, evicting the
    /// least-recently-used beyond that. Correctness is unaffected by
    /// eviction (a re-miss just recomputes).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a scope that can hold nothing would
    /// silently recompute every lookup).
    pub fn bounded(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "a cache scope needs capacity for at least one cache"
        );
        CacheScope::with_capacity(Some(capacity))
    }

    /// The process-wide scope behind [`RouteCache::shared`]: bounded at
    /// 64 caches, shared by every caller that does not thread a scope of
    /// its own. A compatibility default — scoped workloads should create
    /// their own registry instead.
    pub fn global() -> CacheScope {
        static GLOBAL: OnceLock<CacheScope> = OnceLock::new();
        GLOBAL
            .get_or_init(|| CacheScope::bounded(SHARED_CAPACITY))
            .clone()
    }

    /// The cache for `(topo, costs)` in this scope: returns the
    /// registered cache when one exists (fingerprint pre-filter, then
    /// full structural equality), otherwise registers a fresh one,
    /// evicting the least-recently-used entry past the scope's capacity.
    ///
    /// When a [`CacheScope::pin`]ned cache shares the topology and differs
    /// from `costs` at exactly one node — the shape of every misreport
    /// cell relative to a sweep's pinned honest baseline — the fresh cache
    /// is [seeded](RouteCache::seeded_from) from it, so its trees are
    /// repaired from the baseline's instead of rebuilt by fresh Dijkstra.
    /// Seeding never changes an answer (repair is exactly equivalent);
    /// the [`CacheScope::seeded`] counter records how often it applied.
    pub fn cache(&self, topo: &Topology, costs: &CostVector) -> Arc<RouteCache> {
        let print = fingerprint(topo, costs);
        if let Some(hit) = self.lookup(print, topo, costs) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        // Miss: allocate — and deep-clone the topology and cost vector —
        // outside the lock, so rayon sweep threads building caches for
        // *different* cost vectors do not serialize each other.
        let fresh = match self.seed_base(topo, costs) {
            Some(base) => Arc::new(RouteCache::seeded_from(&base, costs.clone())),
            None => Arc::new(RouteCache::new(topo.clone(), costs.clone())),
        };
        let mut registry = self
            .inner
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Re-check under the lock: another thread may have registered the
        // same pair while we were allocating; sharing its cache keeps the
        // work-once guarantee.
        if let Some(at) = registry
            .iter()
            .position(|c| c.fingerprint == print && c.topo == *topo && c.costs == *costs)
        {
            let hit = registry.remove(at).expect("position just found");
            registry.push_back(Arc::clone(&hit));
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        if fresh.is_seeded() {
            self.inner.seeded.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(capacity) = self.inner.capacity {
            while registry.len() >= capacity {
                registry.pop_front();
                self.inner.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        registry.push_back(Arc::clone(&fresh));
        self.inner.peak.fetch_max(registry.len(), Ordering::Relaxed);
        fresh
    }

    /// Whether this scope releases single-use caches eagerly
    /// ([`CacheScope::eager`]).
    pub fn is_eager(&self) -> bool {
        self.inner.eager
    }

    /// The cache for `(topo, costs)`, additionally **pinned**: exempt from
    /// eager [`CacheScope::release`] for the scope's lifetime. Sweep
    /// engines pin the honest-declaration cache every non-misreporting
    /// cell shares; releasing it between cells would thrash it.
    pub fn pin(&self, topo: &Topology, costs: &CostVector) -> Arc<RouteCache> {
        let cache = self.cache(topo, costs);
        let mut pinned = self
            .inner
            .pinned
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if !pinned.iter().any(|p| Arc::ptr_eq(p, &cache)) {
            pinned.push(Arc::clone(&cache));
        }
        cache
    }

    /// Removes `cache` from the pinned set (a no-op if it was never
    /// pinned). Streaming engines roll their donor pin forward on every
    /// event — pin the new fixed point's cache, unpin (and
    /// [`CacheScope::release`]) the previous one — so a long event stream
    /// retains one pinned cache, not one per event.
    pub fn unpin(&self, cache: &Arc<RouteCache>) {
        let mut pinned = self
            .inner
            .pinned
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(at) = pinned.iter().position(|p| Arc::ptr_eq(p, cache)) {
            pinned.remove(at);
        }
    }

    /// Declares the caller finished with `cache`. On an **eager** scope,
    /// if no other workload cell shares the cache (and it is not pinned),
    /// it is dropped from the registry immediately — freeing its trees
    /// midway through the workload instead of at scope end. On ordinary
    /// scopes this is a no-op, so engines can call it unconditionally with
    /// zero behavioral change. Never affects correctness either way: a
    /// released pair that is looked up again simply recomputes.
    pub fn release(&self, cache: &Arc<RouteCache>) {
        if !self.inner.eager {
            return;
        }
        {
            let pinned = self
                .inner
                .pinned
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if pinned.iter().any(|p| Arc::ptr_eq(p, cache)) {
                return;
            }
        }
        let mut registry = self
            .inner
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Single-use check under the registry lock: the caller's handle
        // plus the registry's account for 2 strong refs; any more means
        // another cell is still using this cache — leave it registered.
        if Arc::strong_count(cache) > 2 {
            return;
        }
        if let Some(at) = registry.iter().position(|c| Arc::ptr_eq(c, cache)) {
            registry.remove(at);
            self.inner.released.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A pinned cache suitable as a seed base for `(topo, costs)`: same
    /// topology, cost vectors differing at exactly one node. Pinned
    /// caches are the long-lived, widely shared ones (a sweep's honest
    /// baseline), which is exactly the donor a misreport cell wants.
    fn seed_base(&self, topo: &Topology, costs: &CostVector) -> Option<Arc<RouteCache>> {
        let pinned = self
            .inner
            .pinned
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let found = pinned
            .iter()
            .find(|base| base.topo == *topo && base.costs.one_node_delta(costs).is_some())
            .map(Arc::clone);
        if found.is_none() {
            // Attribute the cold build: no candidate donor at all, or a
            // same-topology donor whose cost delta was not one-node
            // (`one_node_delta` itself reports `None` for both identical
            // and multi-node diffs, so this is where the distinction is
            // observable).
            if pinned.iter().any(|base| base.topo == *topo) {
                self.inner
                    .seed_delta_mismatch
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                self.inner.seed_no_donor.fetch_add(1, Ordering::Relaxed);
            }
        }
        found
    }

    /// Registry lookup: fingerprint pre-filter, full equality verify,
    /// LRU promotion on hit.
    fn lookup(&self, print: u64, topo: &Topology, costs: &CostVector) -> Option<Arc<RouteCache>> {
        let mut registry = self
            .inner
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let at = registry
            .iter()
            .position(|c| c.fingerprint == print && c.topo == *topo && c.costs == *costs)?;
        let hit = registry.remove(at).expect("position just found");
        registry.push_back(Arc::clone(&hit));
        Some(hit)
    }

    /// Empties the scope, releasing every retained cache not otherwise
    /// referenced. Hit/miss/eviction counters are preserved.
    pub fn clear(&self) {
        self.inner
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Number of caches currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the scope retains no caches.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served by an already-registered cache.
    pub fn hits(&self) -> usize {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lookups that registered a fresh cache. In a well-scoped workload
    /// this equals the number of distinct cost vectors the workload
    /// produced — if it exceeds that, caches are being evicted and
    /// silently recomputed (the registry-thrash bug this type exists to
    /// prevent).
    pub fn misses(&self) -> usize {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Caches evicted to stay within the scope's capacity. Always zero
    /// for [`CacheScope::unbounded`] scopes.
    pub fn evictions(&self) -> usize {
        self.inner.evictions.load(Ordering::Relaxed)
    }

    /// Misses answered with a cache [seeded](RouteCache::seeded_from)
    /// from a pinned base rather than built cold — in a sweep, the number
    /// of misreport cells whose caches repaired the honest baseline's
    /// trees instead of recomputing them.
    pub fn seeded(&self) -> usize {
        self.inner.seeded.load(Ordering::Relaxed)
    }

    /// Misses built cold because no pinned cache shared the topology —
    /// "no donor cache" in seed-miss attribution. Scopes that never pin
    /// (no baseline to seed from) count every miss here.
    pub fn seed_no_donor(&self) -> usize {
        self.inner.seed_no_donor.load(Ordering::Relaxed)
    }

    /// Misses built cold although a same-topology pinned donor existed,
    /// because every donor's cost vector differed at more than one node
    /// (or not at all) — "donor found but delta not one-node" in
    /// seed-miss attribution. In a streaming run, a rising value means
    /// events have drifted multiple nodes away from the pinned fixed
    /// point and the donor pin should be rolled forward.
    pub fn seed_delta_mismatch(&self) -> usize {
        self.inner.seed_delta_mismatch.load(Ordering::Relaxed)
    }

    /// Caches dropped early by [`CacheScope::release`] (eager scopes
    /// only; distinct from capacity `evictions`).
    pub fn released(&self) -> usize {
        self.inner.released.load(Ordering::Relaxed)
    }

    /// High-water mark of simultaneously registered caches — the metric
    /// eager release exists to bound: an eager sweep's peak tracks its
    /// *concurrent* cells, not its total distinct cost vectors.
    pub fn peak_len(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::figure1;
    use crate::lcp::lcp_tree_avoiding;
    use specfaith_core::money::Cost;

    #[test]
    fn answers_match_direct_trees() {
        let net = figure1();
        let cache = RouteCache::new(net.topology.clone(), net.costs.clone());
        for src in net.topology.nodes() {
            assert_eq!(
                cache.tree(src),
                &lcp_tree(&net.topology, &net.costs, src)[..],
                "tree({src})"
            );
            for avoid in net.topology.nodes() {
                if avoid == src {
                    continue;
                }
                assert_eq!(
                    &cache.tree_avoiding(src, avoid)[..],
                    &lcp_tree_avoiding(&net.topology, &net.costs, src, Some(avoid))[..],
                    "tree_avoiding({src}, {avoid})"
                );
            }
        }
    }

    #[test]
    fn repeated_queries_compute_each_tree_once() {
        let net = figure1();
        let cache = RouteCache::new(net.topology.clone(), net.costs.clone());
        for _ in 0..3 {
            let _ = cache.path(net.x, net.z);
            let _ = cache.path_avoiding(net.x, net.z, net.c);
        }
        assert_eq!(cache.trees_computed(), 2, "one plain tree + one avoid tree");
    }

    #[test]
    fn avoid_index_grows_with_queries_not_n_squared() {
        // The sparse-index memory contract: slots exist only for queried
        // (src, avoid) pairs. A fresh cache holds none; k distinct
        // queries hold exactly k, repeats included free.
        let net = figure1();
        let cache = RouteCache::new(net.topology.clone(), net.costs.clone());
        assert_eq!(
            cache.avoid_trees_cached(),
            0,
            "construction allocates no avoid slots"
        );
        let _ = cache.tree_avoiding(net.x, net.c);
        let _ = cache.tree_avoiding(net.x, net.c);
        assert_eq!(cache.avoid_trees_cached(), 1);
        let _ = cache.tree_avoiding(net.x, net.d);
        let _ = cache.tree_avoiding(net.z, net.c);
        assert_eq!(cache.avoid_trees_cached(), 3);
        // Each avoid tree is a repair of its source's base tree, so the
        // three distinct (src, avoid) pairs also force the two base trees
        // (sources x and z) they repair from.
        assert_eq!(
            cache.trees_computed(),
            5,
            "three repaired avoid trees + the two base trees they seed from"
        );
    }

    #[test]
    fn seeded_cache_answers_are_identical_to_cold_caches() {
        let net = figure1();
        let scope = CacheScope::unbounded();
        let base = scope.pin(&net.topology, &net.costs);
        assert!(!base.is_seeded(), "the pinned baseline is built cold");
        for (node, declared) in [(net.c, 5u64), (net.c, 0), (net.a, 1), (net.d, 40)] {
            let lied = net.costs.with_cost(node, Cost::new(declared));
            let seeded = scope.cache(&net.topology, &lied);
            assert!(seeded.is_seeded(), "one-node delta from the pinned base");
            let cold = RouteCache::new(net.topology.clone(), lied.clone());
            for src in net.topology.nodes() {
                assert_eq!(seeded.tree(src), cold.tree(src), "tree({src})");
                for avoid in net.topology.nodes() {
                    if avoid == src {
                        continue;
                    }
                    assert_eq!(
                        &seeded.tree_avoiding(src, avoid)[..],
                        &cold.tree_avoiding(src, avoid)[..],
                        "tree_avoiding({src}, {avoid})"
                    );
                }
            }
        }
        assert_eq!(scope.seeded(), 4, "every misreport lookup was seeded");
    }

    #[test]
    fn seeding_requires_a_pinned_one_node_delta_base() {
        let net = figure1();
        let scope = CacheScope::unbounded();
        // No pin yet: a one-node-delta vector still builds cold.
        let lied = net.costs.with_cost(net.c, Cost::new(5));
        let cold = scope.cache(&net.topology, &lied);
        assert!(!cold.is_seeded(), "nothing pinned to seed from");
        let _ = scope.pin(&net.topology, &net.costs);
        // Two-node deltas never seed.
        let double = lied.with_cost(net.a, Cost::new(7));
        let unseeded = scope.cache(&net.topology, &double);
        assert!(!unseeded.is_seeded(), "multi-node deltas have no repair");
        assert_eq!(scope.seeded(), 0);
    }

    #[test]
    #[should_panic(expected = "exactly one node")]
    fn seeding_from_an_identical_vector_is_rejected() {
        let net = figure1();
        let base = Arc::new(RouteCache::new(net.topology.clone(), net.costs.clone()));
        let _ = RouteCache::seeded_from(&base, net.costs.clone());
    }

    #[test]
    fn shared_returns_the_same_cache_for_equal_pairs() {
        let net = figure1();
        let a = RouteCache::shared(&net.topology, &net.costs);
        let b = RouteCache::shared(&net.topology, &net.costs);
        assert!(Arc::ptr_eq(&a, &b), "equal pairs share one cache");
        // A different cost vector gets its own cache.
        let lied = net.costs.with_cost(net.c, Cost::new(5));
        let c = RouteCache::shared(&net.topology, &lied);
        assert!(!Arc::ptr_eq(&a, &c), "distinct costs must not alias");
        assert_eq!(c.path(net.x, net.z).expect("connected").cost().value(), 5);
    }

    #[test]
    fn scoped_caches_are_isolated_from_the_global_registry() {
        let net = figure1();
        let scope = CacheScope::unbounded();
        let scoped = scope.cache(&net.topology, &net.costs);
        let global = RouteCache::shared(&net.topology, &net.costs);
        assert!(
            !Arc::ptr_eq(&scoped, &global),
            "a run-scoped cache lives in its own registry"
        );
        // Identical answers regardless of which registry owns the cache.
        assert_eq!(
            scoped.path(net.x, net.z).map(|p| p.nodes().to_vec()),
            global.path(net.x, net.z).map(|p| p.nodes().to_vec())
        );
        assert_eq!(scope.len(), 1);
        assert_eq!(scope.misses(), 1);
        let again = scope.cache(&net.topology, &net.costs);
        assert!(Arc::ptr_eq(&scoped, &again));
        assert_eq!(scope.hits(), 1);
    }

    #[test]
    fn seed_misses_are_attributed_and_pins_roll_forward() {
        let net = figure1();
        let scope = CacheScope::eager();
        // First build: nothing pinned yet → "no donor".
        let honest = scope.pin(&net.topology, &net.costs);
        assert_eq!((scope.seed_no_donor(), scope.seed_delta_mismatch()), (1, 0));
        // One-node delta from the pinned donor seeds (neither counter).
        let lied = net.costs.with_cost(net.c, Cost::new(9));
        let seeded = scope.cache(&net.topology, &lied);
        assert!(seeded.is_seeded());
        assert_eq!(scope.seeded(), 1);
        assert_eq!((scope.seed_no_donor(), scope.seed_delta_mismatch()), (1, 0));
        // Two-node delta: a same-topology donor exists but cannot seed.
        let double = lied.with_cost(net.a, Cost::new(7));
        let cold = scope.cache(&net.topology, &double);
        assert!(!cold.is_seeded());
        assert_eq!((scope.seed_no_donor(), scope.seed_delta_mismatch()), (1, 1));
        // Rolling the pin forward re-enables seeding from the new base.
        scope.unpin(&honest);
        let rolled = scope.pin(&net.topology, &double);
        assert!(
            Arc::ptr_eq(&cold, &rolled),
            "pin promotes the registered cache"
        );
        let next = double.with_cost(net.c, Cost::new(2));
        drop(scope.cache(&net.topology, &next));
        assert_eq!(
            scope.seeded(),
            2,
            "one-node delta from the rolled pin seeds"
        );
        // Unpinned single-use caches release eagerly again...
        drop(cold);
        let len_before = scope.len();
        scope.release(&seeded);
        drop(seeded);
        assert_eq!(scope.len(), len_before - 1, "single-use cache released");
        // ...but a seed base stays retained while a dependent seeded cache
        // (here `next`, repaired from `rolled`) still holds it alive.
        scope.unpin(&rolled);
        scope.release(&rolled);
        assert_eq!(scope.len(), len_before - 1, "live seed base is retained");
    }

    #[test]
    fn bounded_scope_evicts_least_recently_used() {
        let net = figure1();
        let scope = CacheScope::bounded(2);
        let costs_a = net.costs.clone();
        let costs_b = net.costs.with_cost(net.c, Cost::new(2));
        let costs_c = net.costs.with_cost(net.c, Cost::new(3));
        let a = scope.cache(&net.topology, &costs_a);
        let _b = scope.cache(&net.topology, &costs_b);
        // Touch A so B becomes the LRU entry, then insert C.
        let a_again = scope.cache(&net.topology, &costs_a);
        assert!(Arc::ptr_eq(&a, &a_again));
        let _c = scope.cache(&net.topology, &costs_c);
        assert_eq!(scope.len(), 2);
        assert_eq!(scope.evictions(), 1, "B evicted, not A");
        // A survives (hit); B was evicted (fresh miss).
        let a_survivor = scope.cache(&net.topology, &costs_a);
        assert!(Arc::ptr_eq(&a, &a_survivor), "recently-used entry survives");
        let misses_before = scope.misses();
        let _b_again = scope.cache(&net.topology, &costs_b);
        assert_eq!(scope.misses(), misses_before + 1, "LRU entry was evicted");
    }

    #[test]
    fn capacity_boundary_holds_exactly() {
        let net = figure1();
        let scope = CacheScope::bounded(1);
        let lied = net.costs.with_cost(net.c, Cost::new(9));
        let _ = scope.cache(&net.topology, &net.costs);
        assert_eq!((scope.len(), scope.evictions()), (1, 0));
        let _ = scope.cache(&net.topology, &lied);
        assert_eq!((scope.len(), scope.evictions()), (1, 1));
        // Unbounded scopes never evict.
        let unbounded = CacheScope::unbounded();
        for declared in 0..100u64 {
            let costs = net.costs.with_cost(net.c, Cost::new(declared));
            let _ = unbounded.cache(&net.topology, &costs);
        }
        assert_eq!(unbounded.len(), 100);
        assert_eq!(unbounded.evictions(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity for at least one cache")]
    fn zero_capacity_scope_rejected() {
        let _ = CacheScope::bounded(0);
    }

    #[test]
    fn eager_release_drops_single_use_caches_immediately() {
        let net = figure1();
        let scope = CacheScope::eager();
        assert!(scope.is_eager());
        let cache = scope.cache(&net.topology, &net.costs);
        assert_eq!(scope.len(), 1);
        scope.release(&cache);
        assert_eq!(scope.len(), 0, "single-use cache dropped at release");
        assert_eq!(scope.released(), 1);
        assert_eq!(scope.evictions(), 0, "release is not a capacity eviction");
        // Looking the pair up again is a fresh (correct) miss.
        let again = scope.cache(&net.topology, &net.costs);
        assert!(!Arc::ptr_eq(&cache, &again));
        assert_eq!(scope.misses(), 2);
    }

    #[test]
    fn eager_release_spares_shared_and_pinned_caches() {
        let net = figure1();
        let scope = CacheScope::eager();
        // Pinned: never released.
        let pinned = scope.pin(&net.topology, &net.costs);
        scope.release(&pinned);
        assert_eq!(scope.len(), 1, "pinned cache survives release");
        // Shared: a second outstanding handle blocks release.
        let lied = net.costs.with_cost(net.c, Cost::new(4));
        let a = scope.cache(&net.topology, &lied);
        let b = scope.cache(&net.topology, &lied);
        assert!(Arc::ptr_eq(&a, &b));
        scope.release(&a);
        assert_eq!(scope.len(), 2, "cache another cell holds is retained");
        drop(b);
        scope.release(&a);
        assert_eq!(scope.len(), 1, "last holder's release drops it");
        assert_eq!(scope.released(), 1);
    }

    #[test]
    fn non_eager_scopes_ignore_release() {
        let net = figure1();
        for scope in [CacheScope::unbounded(), CacheScope::bounded(8)] {
            assert!(!scope.is_eager());
            let cache = scope.cache(&net.topology, &net.costs);
            scope.release(&cache);
            assert_eq!(scope.len(), 1, "release is a no-op off eager scopes");
            assert_eq!(scope.released(), 0);
        }
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let net = figure1();
        let scope = CacheScope::eager();
        for declared in 1..=5u64 {
            let costs = net.costs.with_cost(net.c, Cost::new(declared));
            let cache = scope.cache(&net.topology, &costs);
            scope.release(&cache);
        }
        assert_eq!(scope.len(), 0, "every single-use cache released");
        assert_eq!(scope.released(), 5);
        assert_eq!(
            scope.peak_len(),
            1,
            "serial release keeps one cache live at a time"
        );
        // A non-eager scope accumulates instead.
        let lingering = CacheScope::unbounded();
        for declared in 1..=5u64 {
            let costs = net.costs.with_cost(net.c, Cost::new(declared));
            let cache = lingering.cache(&net.topology, &costs);
            lingering.release(&cache);
        }
        assert_eq!(lingering.peak_len(), 5);
    }

    #[test]
    fn concurrent_lookups_share_one_cache_per_pair() {
        // The registry under contention: many threads interleaving
        // lookups over a handful of distinct cost vectors must end up
        // with exactly one registered cache per vector (allocation races
        // are resolved by the under-lock re-check) and consistent
        // answers throughout.
        let net = figure1();
        let scope = CacheScope::unbounded();
        const VECTORS: u64 = 4;
        const THREADS: usize = 8;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let scope = scope.clone();
                let net = &net;
                s.spawn(move || {
                    for round in 0..20u64 {
                        let declared = (round + t as u64) % VECTORS;
                        let costs = net.costs.with_cost(net.c, Cost::new(declared + 1));
                        let cache = scope.cache(&net.topology, &costs);
                        assert_eq!(cache.costs(), &costs, "never handed a mismatched cache");
                        let path = cache.path(net.d, net.z).expect("biconnected");
                        assert!(path.cost().value() <= 1000);
                        let _ = cache.tree_avoiding(net.x, net.c);
                    }
                });
            }
        });
        assert_eq!(
            scope.len(),
            VECTORS as usize,
            "one cache per distinct vector"
        );
        assert_eq!(
            scope.misses(),
            VECTORS as usize,
            "no duplicate registrations"
        );
        assert_eq!(scope.evictions(), 0);
        assert_eq!(
            scope.hits() + scope.misses(),
            THREADS * 20,
            "every lookup accounted"
        );
    }

    #[test]
    fn path_accessors_agree_with_tree_entries() {
        let net = figure1();
        let cache = RouteCache::new(net.topology.clone(), net.costs.clone());
        let p = cache.path(net.x, net.z).expect("biconnected");
        assert_eq!(p.nodes(), &[net.x, net.d, net.c, net.z]);
        let detour = cache
            .path_avoiding(net.x, net.z, net.c)
            .expect("biconnected");
        assert_eq!(detour.nodes(), &[net.x, net.a, net.z]);
    }

    #[test]
    fn fingerprint_tracks_cost_changes() {
        let net = figure1();
        let base = fingerprint(&net.topology, &net.costs);
        let lied = net.costs.with_cost(net.c, Cost::new(5));
        assert_ne!(base, fingerprint(&net.topology, &lied));
        assert_eq!(base, fingerprint(&net.topology, &net.costs), "stable");
    }

    #[test]
    #[should_panic(expected = "cannot avoid the source")]
    fn avoid_source_rejected() {
        let net = figure1();
        let cache = RouteCache::new(net.topology.clone(), net.costs.clone());
        let _ = cache.tree_avoiding(net.x, net.x);
    }

    #[test]
    #[should_panic(expected = "cannot avoid the destination")]
    fn avoid_destination_rejected() {
        let net = figure1();
        let cache = RouteCache::new(net.topology.clone(), net.costs.clone());
        let _ = cache.path_avoiding(net.x, net.z, net.z);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_arity_rejected() {
        let net = figure1();
        let _ = RouteCache::new(net.topology.clone(), CostVector::uniform(2, 1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::generators::random_biconnected;
    use crate::lcp::lcp_tree_avoiding;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The satellite property: across random biconnected topologies,
        /// cost vectors, and avoid-node queries, every answer of the
        /// sparse avoid-tree index is *identical* to the direct
        /// `lcp_tree` / `lcp_tree_avoiding` computation, and the index
        /// holds exactly the pairs queried.
        #[test]
        fn cache_is_identical_to_direct_computation(
            seed in 0u64..400,
            n in 4usize..14,
            cost_hi in 1u64..25,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = random_biconnected(n, n / 2, &mut rng);
            let costs = CostVector::random(n, 0, cost_hi, &mut rng);
            let cache = RouteCache::new(topo.clone(), costs.clone());
            for src in topo.nodes() {
                let direct = lcp_tree(&topo, &costs, src);
                prop_assert_eq!(cache.tree(src), &direct[..]);
                for dst in topo.nodes() {
                    prop_assert_eq!(cache.path(src, dst), direct[dst.index()].as_ref());
                    for avoid in topo.nodes() {
                        if avoid == src || avoid == dst {
                            continue;
                        }
                        let direct_avoid =
                            lcp_tree_avoiding(&topo, &costs, src, Some(avoid));
                        prop_assert_eq!(
                            cache.path_avoiding(src, dst, avoid),
                            direct_avoid[dst.index()].clone()
                        );
                    }
                }
            }
            // Exactly the queried pairs are indexed — never more.
            prop_assert_eq!(cache.avoid_trees_cached(), n * (n - 1));
        }

        /// The shared registry never mixes up distinct pairs: interleaved
        /// lookups under different cost vectors stay consistent.
        #[test]
        fn shared_registry_is_collision_safe(seed in 0u64..200, n in 4usize..10) {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = random_biconnected(n, n / 2, &mut rng);
            let a = CostVector::random(n, 0, 10, &mut rng);
            let b = CostVector::random(n, 11, 20, &mut rng);
            let ca = RouteCache::shared(&topo, &a);
            let cb = RouteCache::shared(&topo, &b);
            prop_assert_eq!(ca.costs(), &a);
            prop_assert_eq!(cb.costs(), &b);
            for src in topo.nodes() {
                let direct_a = lcp_tree(&topo, &a, src);
                let direct_b = lcp_tree(&topo, &b, src);
                for dst in topo.nodes() {
                    prop_assert_eq!(ca.path(src, dst), direct_a[dst.index()].as_ref());
                    prop_assert_eq!(cb.path(src, dst), direct_b[dst.index()].as_ref());
                }
            }
        }
    }
}
