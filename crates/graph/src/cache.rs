//! Memoized all-pairs lowest-cost routes: the [`RouteCache`].
//!
//! Every layer of the workspace asks the same two questions of a
//! `(topology, cost-vector)` pair — *"what is the LCP from `src` to
//! `dst`?"* and *"what is it avoiding `k`?"* (the `d_{G−k}` query behind
//! every VCG payment). Answering them with fresh Dijkstra runs per query
//! is what made the Theorem-1 deviation sweep quadratic-times-slower than
//! it needs to be: a single centralized reference check at `n = 64` issues
//! tens of thousands of single-pair queries against at most
//! `n + n·(n−1)` *distinct* trees.
//!
//! A [`RouteCache`] owns one `(topology, cost-vector)` pair and memoizes
//! every tree the pair can produce, computing each at most once (behind
//! [`OnceLock`], so concurrent sweep cells share the work) and handing out
//! **borrows** — no per-query tree clone, no per-path allocation.
//!
//! [`RouteCache::shared`] adds a process-wide registry keyed by a
//! fingerprint of the pair, so independent callers (every cell of a
//! deviation sweep, say) transparently share one cache per distinct
//! declared-cost vector. Lookup verifies full structural equality after
//! the fingerprint match — cached answers are *provably* the answers the
//! direct computation would give, never approximately so.
//!
//! # Example
//!
//! ```
//! use specfaith_graph::cache::RouteCache;
//! use specfaith_graph::generators::figure1;
//!
//! let net = figure1();
//! let routes = RouteCache::shared(&net.topology, &net.costs);
//! let path = routes.path(net.x, net.z).expect("biconnected");
//! assert_eq!(path.cost().value(), 2);
//! // The detour avoiding C — the d_{G−C}(X,Z) VCG query — reuses the
//! // same cache; no tree is ever computed twice.
//! let detour = routes.path_avoiding(net.x, net.z, net.c).expect("biconnected");
//! assert_eq!(detour.cost().value(), 5);
//! ```

use crate::costs::CostVector;
use crate::lcp::{lcp_tree, lcp_tree_avoiding};
use crate::path::PathMetric;
use crate::topology::Topology;
use specfaith_core::id::NodeId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// How many distinct `(topology, cost-vector)` pairs [`RouteCache::shared`]
/// keeps alive at once. Beyond this the least-recently-used pair is
/// evicted; correctness is unaffected (a re-miss just recomputes).
const SHARED_CAPACITY: usize = 64;

/// The process-wide registry behind [`RouteCache::shared`], in LRU order
/// (front = coldest).
static SHARED: Mutex<VecDeque<Arc<RouteCache>>> = Mutex::new(VecDeque::new());

/// A 64-bit FNV-1a fingerprint of a `(topology, cost-vector)` pair.
///
/// Used only to make registry lookup cheap; equality of the full pair is
/// re-verified on every hit, so a collision can never alias two different
/// networks onto one cache.
fn fingerprint(topo: &Topology, costs: &CostVector) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(PRIME);
        }
    };
    mix(topo.num_nodes() as u64);
    for &(a, b) in topo.edges() {
        mix(((a.raw() as u64) << 32) | b.raw() as u64);
    }
    for (_, cost) in costs.iter() {
        mix(cost.value());
    }
    h
}

/// Memoized lowest-cost routes for one `(topology, cost-vector)` pair.
///
/// Trees are computed lazily, at most once each, and borrowed out for the
/// cache's lifetime. All methods take `&self` and are safe to call from
/// many threads at once; the values they return are pure functions of the
/// pair, so caching cannot change any result — only how often Dijkstra
/// runs.
///
/// Memory: the avoid-tree table is `n²` lazily-filled slots, so a fully
/// exercised cache at `n` nodes holds `n + n·(n−1)` trees of `n` entries
/// each — some tens of megabytes at the sweep's standard `n = 64`, and the
/// shared registry retains up to 64 such caches (LRU). Long-running
/// processes that churn through many distinct cost vectors should call
/// [`RouteCache::clear_shared`] between workloads, or scope
/// [`RouteCache::new`] caches to a run instead of using the registry.
pub struct RouteCache {
    topo: Topology,
    costs: CostVector,
    fingerprint: u64,
    /// `trees[src]`: the LCP tree rooted at `src`.
    trees: Vec<OnceLock<Box<[Option<PathMetric>]>>>,
    /// `avoid_trees[src * n + avoid]`: the tree rooted at `src` in `G − avoid`.
    avoid_trees: Vec<OnceLock<Box<[Option<PathMetric>]>>>,
    /// Number of Dijkstra runs performed so far (diagnostics for benches
    /// and tests; not part of any result).
    computed: AtomicUsize,
}

impl std::fmt::Debug for RouteCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteCache")
            .field("topo", &self.topo)
            .field("costs", &self.costs)
            .field("trees_computed", &self.trees_computed())
            .finish()
    }
}

impl RouteCache {
    /// An empty cache owning `topo` and `costs`.
    ///
    /// # Panics
    ///
    /// Panics if the cost vector's arity does not match the topology.
    pub fn new(topo: Topology, costs: CostVector) -> Self {
        assert_eq!(
            topo.num_nodes(),
            costs.len(),
            "cost vector arity must match topology"
        );
        let n = topo.num_nodes();
        let fingerprint = fingerprint(&topo, &costs);
        RouteCache {
            topo,
            costs,
            fingerprint,
            trees: (0..n).map(|_| OnceLock::new()).collect(),
            avoid_trees: (0..n * n).map(|_| OnceLock::new()).collect(),
            computed: AtomicUsize::new(0),
        }
    }

    /// The process-shared cache for `(topo, costs)`: returns the existing
    /// cache when one is registered (verified by full structural equality,
    /// not just fingerprint), otherwise registers a fresh one, evicting
    /// the least-recently-used entry past the registry capacity (64
    /// distinct pairs).
    ///
    /// This is what lets every cell of a deviation sweep — across rayon
    /// threads — share one set of Dijkstra runs per distinct declared-cost
    /// vector.
    pub fn shared(topo: &Topology, costs: &CostVector) -> Arc<RouteCache> {
        let print = fingerprint(topo, costs);
        let mut registry = SHARED.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(at) = registry
            .iter()
            .position(|c| c.fingerprint == print && c.topo == *topo && c.costs == *costs)
        {
            let hit = registry.remove(at).expect("position just found");
            registry.push_back(Arc::clone(&hit));
            return hit;
        }
        let fresh = Arc::new(RouteCache::new(topo.clone(), costs.clone()));
        if registry.len() >= SHARED_CAPACITY {
            registry.pop_front();
        }
        registry.push_back(Arc::clone(&fresh));
        fresh
    }

    /// Empties the process-shared registry, releasing every retained
    /// cache not otherwise referenced. Results are unaffected — future
    /// [`RouteCache::shared`] lookups just recompute.
    pub fn clear_shared() {
        SHARED
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// The topology this cache answers for.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The cost vector this cache answers for.
    pub fn costs(&self) -> &CostVector {
        &self.costs
    }

    /// The LCP tree rooted at `src`: entry `dst.index()` is the lowest-cost
    /// path `src → dst`, or `None` where unreachable. Computed on first
    /// use, borrowed thereafter.
    pub fn tree(&self, src: NodeId) -> &[Option<PathMetric>] {
        self.trees[src.index()].get_or_init(|| {
            self.computed.fetch_add(1, Ordering::Relaxed);
            lcp_tree(&self.topo, &self.costs, src).into_boxed_slice()
        })
    }

    /// The LCP tree rooted at `src` in `G − avoid` — the `d_{G−k}` query
    /// behind VCG payments. One tree per `(src, avoid)` pair serves every
    /// destination.
    ///
    /// # Panics
    ///
    /// Panics if `avoid == src`.
    pub fn tree_avoiding(&self, src: NodeId, avoid: NodeId) -> &[Option<PathMetric>] {
        assert!(avoid != src, "cannot avoid the source of the LCP query");
        let n = self.topo.num_nodes();
        self.avoid_trees[src.index() * n + avoid.index()].get_or_init(|| {
            self.computed.fetch_add(1, Ordering::Relaxed);
            lcp_tree_avoiding(&self.topo, &self.costs, src, Some(avoid)).into_boxed_slice()
        })
    }

    /// The lowest-cost path `src → dst`, or `None` if unreachable.
    /// Borrowed from the cached tree — the zero-clone replacement for the
    /// deprecated [`crate::lcp::lcp`].
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<&PathMetric> {
        self.tree(src)[dst.index()].as_ref()
    }

    /// The lowest-cost path `src → dst` avoiding `avoid` entirely, or
    /// `None` if no such path exists. The zero-clone replacement for the
    /// deprecated [`crate::lcp::lcp_avoiding`].
    ///
    /// # Panics
    ///
    /// Panics if `avoid` equals `src` or `dst` (the VCG query only ever
    /// avoids intermediate nodes).
    pub fn path_avoiding(&self, src: NodeId, dst: NodeId, avoid: NodeId) -> Option<&PathMetric> {
        assert!(
            avoid != dst,
            "cannot avoid the destination of the LCP query"
        );
        self.tree_avoiding(src, avoid)[dst.index()].as_ref()
    }

    /// How many Dijkstra runs this cache has performed. Diagnostic only:
    /// lets benches and tests verify that repeated queries hit the memo.
    pub fn trees_computed(&self) -> usize {
        self.computed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::figure1;
    use specfaith_core::money::Cost;

    #[test]
    fn answers_match_direct_trees() {
        let net = figure1();
        let cache = RouteCache::new(net.topology.clone(), net.costs.clone());
        for src in net.topology.nodes() {
            assert_eq!(
                cache.tree(src),
                &lcp_tree(&net.topology, &net.costs, src)[..],
                "tree({src})"
            );
            for avoid in net.topology.nodes() {
                if avoid == src {
                    continue;
                }
                assert_eq!(
                    cache.tree_avoiding(src, avoid),
                    &lcp_tree_avoiding(&net.topology, &net.costs, src, Some(avoid))[..],
                    "tree_avoiding({src}, {avoid})"
                );
            }
        }
    }

    #[test]
    fn repeated_queries_compute_each_tree_once() {
        let net = figure1();
        let cache = RouteCache::new(net.topology.clone(), net.costs.clone());
        for _ in 0..3 {
            let _ = cache.path(net.x, net.z);
            let _ = cache.path_avoiding(net.x, net.z, net.c);
        }
        assert_eq!(cache.trees_computed(), 2, "one plain tree + one avoid tree");
    }

    #[test]
    fn shared_returns_the_same_cache_for_equal_pairs() {
        let net = figure1();
        let a = RouteCache::shared(&net.topology, &net.costs);
        let b = RouteCache::shared(&net.topology, &net.costs);
        assert!(Arc::ptr_eq(&a, &b), "equal pairs share one cache");
        // A different cost vector gets its own cache.
        let lied = net.costs.with_cost(net.c, Cost::new(5));
        let c = RouteCache::shared(&net.topology, &lied);
        assert!(!Arc::ptr_eq(&a, &c), "distinct costs must not alias");
        assert_eq!(c.path(net.x, net.z).expect("connected").cost().value(), 5);
    }

    #[test]
    fn path_accessors_agree_with_tree_entries() {
        let net = figure1();
        let cache = RouteCache::new(net.topology.clone(), net.costs.clone());
        let p = cache.path(net.x, net.z).expect("biconnected");
        assert_eq!(p.nodes(), &[net.x, net.d, net.c, net.z]);
        let detour = cache
            .path_avoiding(net.x, net.z, net.c)
            .expect("biconnected");
        assert_eq!(detour.nodes(), &[net.x, net.a, net.z]);
    }

    #[test]
    fn fingerprint_tracks_cost_changes() {
        let net = figure1();
        let base = fingerprint(&net.topology, &net.costs);
        let lied = net.costs.with_cost(net.c, Cost::new(5));
        assert_ne!(base, fingerprint(&net.topology, &lied));
        assert_eq!(base, fingerprint(&net.topology, &net.costs), "stable");
    }

    #[test]
    #[should_panic(expected = "cannot avoid the source")]
    fn avoid_source_rejected() {
        let net = figure1();
        let cache = RouteCache::new(net.topology.clone(), net.costs.clone());
        let _ = cache.tree_avoiding(net.x, net.x);
    }

    #[test]
    #[should_panic(expected = "cannot avoid the destination")]
    fn avoid_destination_rejected() {
        let net = figure1();
        let cache = RouteCache::new(net.topology.clone(), net.costs.clone());
        let _ = cache.path_avoiding(net.x, net.z, net.z);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_arity_rejected() {
        let net = figure1();
        let _ = RouteCache::new(net.topology.clone(), CostVector::uniform(2, 1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::generators::random_biconnected;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The satellite property: across random topologies, cost vectors,
        /// and avoid-node queries, every cache answer is *identical* to
        /// the direct `lcp_tree` / `lcp_tree_avoiding` computation.
        #[test]
        fn cache_is_identical_to_direct_computation(
            seed in 0u64..400,
            n in 4usize..14,
            cost_hi in 1u64..25,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = random_biconnected(n, n / 2, &mut rng);
            let costs = CostVector::random(n, 0, cost_hi, &mut rng);
            let cache = RouteCache::new(topo.clone(), costs.clone());
            for src in topo.nodes() {
                let direct = lcp_tree(&topo, &costs, src);
                prop_assert_eq!(cache.tree(src), &direct[..]);
                for dst in topo.nodes() {
                    prop_assert_eq!(cache.path(src, dst), direct[dst.index()].as_ref());
                    for avoid in topo.nodes() {
                        if avoid == src || avoid == dst {
                            continue;
                        }
                        let direct_avoid =
                            lcp_tree_avoiding(&topo, &costs, src, Some(avoid));
                        prop_assert_eq!(
                            cache.path_avoiding(src, dst, avoid),
                            direct_avoid[dst.index()].as_ref()
                        );
                    }
                }
            }
        }

        /// The shared registry never mixes up distinct pairs: interleaved
        /// lookups under different cost vectors stay consistent.
        #[test]
        fn shared_registry_is_collision_safe(seed in 0u64..200, n in 4usize..10) {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = random_biconnected(n, n / 2, &mut rng);
            let a = CostVector::random(n, 0, 10, &mut rng);
            let b = CostVector::random(n, 11, 20, &mut rng);
            let ca = RouteCache::shared(&topo, &a);
            let cb = RouteCache::shared(&topo, &b);
            prop_assert_eq!(ca.costs(), &a);
            prop_assert_eq!(cb.costs(), &b);
            for src in topo.nodes() {
                let direct_a = lcp_tree(&topo, &a, src);
                let direct_b = lcp_tree(&topo, &b, src);
                for dst in topo.nodes() {
                    prop_assert_eq!(ca.path(src, dst), direct_a[dst.index()].as_ref());
                    prop_assert_eq!(cb.path(src, dst), direct_b[dst.index()].as_ref());
                }
            }
        }
    }
}
