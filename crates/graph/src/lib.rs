//! # specfaith-graph
//!
//! Node-weighted network topologies for the FPSS interdomain-routing case
//! study: autonomous systems are nodes with per-packet **transit costs**;
//! the cost of a path is the sum of the transit costs of its *intermediate*
//! nodes (endpoints transit for free).
//!
//! Provides:
//!
//! * [`Topology`] — undirected simple graphs with connectivity and
//!   biconnectivity queries (FPSS assumes a biconnected graph so that VCG
//!   payments are well-defined).
//! * [`CostVector`] — per-node transit costs.
//! * [`lcp`] — lowest-cost-path computation with a **deterministic total
//!   tie-breaking order** ([`PathMetric`]), so that every node (and every
//!   checker mirroring a principal) resolves ties identically.
//! * [`cache`] — the [`RouteCache`]: memoized all-pairs routes per
//!   `(topology, cost-vector)` pair, computed once and borrowed everywhere
//!   (the hot path of the Theorem-1 deviation sweep).
//! * [`repair`] — incremental tree repair: `d_{G−k}` avoid trees and
//!   one-node cost changes recomputed from a base tree by re-relaxing only
//!   the detached subtree, exactly equivalent to a fresh Dijkstra.
//! * [`generators`] — the paper's Figure 1 network plus synthetic families
//!   (rings, grids, wheels, random biconnected graphs).
//!
//! # Example
//!
//! ```
//! use specfaith_graph::cache::RouteCache;
//! use specfaith_graph::generators::figure1;
//!
//! let net = figure1();
//! let routes = RouteCache::shared(&net.topology, &net.costs);
//! // The paper: "the total LCP cost of sending a packet from X to Z is 2".
//! let path = routes.path(net.x, net.z).expect("connected");
//! assert_eq!(path.cost().value(), 2);
//! ```

pub mod cache;
pub mod costs;
pub mod generators;
pub mod lcp;
pub mod path;
pub mod repair;
pub mod topology;

pub use cache::RouteCache;
pub use costs::CostVector;
pub use path::PathMetric;
pub use topology::{Topology, TopologyBuilder};

pub use specfaith_core::id::NodeId;
pub use specfaith_core::money::Cost;
