//! Incremental LCP-tree repair: recompute `d_{G−k}` and one-node cost
//! changes from an existing base tree instead of running a fresh Dijkstra
//! over the whole graph.
//!
//! Both entry points are **exact**: the repaired tree is element-for-element
//! equal — costs, hop counts, and lexicographic tie-breaks included — to the
//! tree a fresh [`lcp_tree_avoiding`](crate::lcp::lcp_tree_avoiding) /
//! [`lcp_tree`](crate::lcp::lcp_tree) run would produce. The equivalence is
//! what lets [`RouteCache`](crate::cache::RouteCache) substitute repair for
//! fresh computation without perturbing a single byte of any downstream
//! result (VCG payments, sweep reports, fingerprints).
//!
//! # The invariant: only the detached subtree re-relaxes
//!
//! Removing a node `k` from the graph can only *remove* paths, and the
//! [`PathMetric`] order makes every per-destination minimum unique. So for
//! any destination `v` whose base path does not traverse `k`, that path is
//! still present in `G − k` and still beats every competitor: the entry is
//! **exactly unchanged**. The only entries that can change are the ones in
//! the subtree hanging below `k` in the base shortest-path tree — the
//! *detached region*. Repair therefore:
//!
//! 1. copies every unaffected entry verbatim,
//! 2. seeds a heap with the frontier extensions `base[u] + (u → x)` for
//!    every unaffected `u` adjacent to a detached `x`, and
//! 3. runs Dijkstra restricted to the detached region only.
//!
//! Correctness of the frontier seeding rests on the *prefix property* of
//! the unique-minimum tree: walking the true `G − k` optimum of a detached
//! destination backwards, every node up to and including the last
//! unaffected node `u` on it is itself unaffected and its prefix equals
//! `base[u]` (prefixes of unique optima are unique optima, and `base[u]`
//! remains optimal in the subgraph); every node after `u` is detached. The
//! restricted Dijkstra explores exactly these suffixes, so it finds every
//! detached optimum — and the shared total order reproduces the fresh
//! computation's tie-breaks bit-for-bit.
//!
//! The same idea repairs a **one-node cost change** (the deviation-sweep
//! workload, where a deviant's declared vector differs from the honest one
//! at a single node `d`):
//!
//! * an **increase** invalidates exactly the entries routing *through* `d`
//!   (cost counts intermediate nodes only, so entries ending at `d`, and
//!   entries not using `d`, keep both their path and their cost) — the
//!   detached region is `{v : d ∈ interior(base[v])}` and repair proceeds
//!   as above with the new charges;
//! * a **decrease** by `δ` keeps every through-`d` path optimal (any
//!   competitor's cost falls by at most `δ`, and ties still break the same
//!   way), so those entries are *adjusted in place* (cost − `δ`), and the
//!   improvement is then propagated outward: a Dijkstra pass seeded from
//!   the adjusted region, with every other base entry standing as an upper
//!   bound that only a strictly better through-`d` path may displace.
//!
//! Per-tree cost drops from `O(m log n)` on the whole graph to work
//! proportional to the affected region — tiny for most `k` on scale-free
//! topologies, where the vast majority of nodes hang off hubs and detach
//! nothing.

use crate::costs::CostVector;
use crate::path::PathMetric;
use crate::topology::Topology;
use specfaith_core::id::NodeId;
use specfaith_core::money::Cost;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Repairs `base` — the LCP tree rooted at `src` under `(topo, costs)` —
/// into the `d_{G−avoid}` tree, re-relaxing only the subtree detached by
/// removing `avoid` (see the [module docs](self)).
///
/// Exactly equivalent to
/// [`lcp_tree_avoiding(topo, costs, src, Some(avoid))`](crate::lcp::lcp_tree_avoiding).
///
/// # Panics
///
/// Panics if `avoid == src`, if the cost vector's arity does not match the
/// topology, or if `base` is not sized to the topology.
pub fn repair_avoiding(
    topo: &Topology,
    costs: &CostVector,
    base: &[Option<PathMetric>],
    src: NodeId,
    avoid: NodeId,
) -> Vec<Option<PathMetric>> {
    assert_eq!(
        topo.num_nodes(),
        costs.len(),
        "cost vector arity must match topology"
    );
    assert_eq!(
        base.len(),
        topo.num_nodes(),
        "base tree arity must match topology"
    );
    assert!(avoid != src, "cannot avoid the source of the LCP query");
    let n = topo.num_nodes();
    // Detached region: every destination whose base path traverses `avoid`
    // (including `avoid` itself — its entry ends there). Unreachable
    // destinations (`None`) stay unreachable in the smaller graph.
    let mut detached = vec![false; n];
    let mut repaired: Vec<Option<PathMetric>> = Vec::with_capacity(n);
    let mut any = false;
    for (i, entry) in base.iter().enumerate() {
        let hit = entry.as_ref().is_some_and(|p| p.contains(avoid));
        detached[i] = hit;
        any |= hit;
        repaired.push(if hit { None } else { entry.clone() });
    }
    if !any {
        // `avoid` is off every base path (e.g. unreachable): nothing to do.
        return repaired;
    }
    rebuild_region(topo, costs, &mut repaired, &detached, Some(avoid));
    repaired
}

/// Repairs `base` — the LCP tree rooted at `src` under `old_costs` — into
/// the tree under `new_costs`, where the two vectors differ at exactly the
/// node `changed` (see the [module docs](self) for the increase/decrease
/// split).
///
/// Exactly equivalent to
/// [`lcp_tree(topo, new_costs, src)`](crate::lcp::lcp_tree).
///
/// # Panics
///
/// Panics if the arities disagree, or if the vectors differ anywhere other
/// than `changed`.
pub fn repair_cost_change(
    topo: &Topology,
    new_costs: &CostVector,
    base: &[Option<PathMetric>],
    src: NodeId,
    changed: NodeId,
    old_cost: Cost,
) -> Vec<Option<PathMetric>> {
    assert_eq!(
        topo.num_nodes(),
        new_costs.len(),
        "cost vector arity must match topology"
    );
    assert_eq!(
        base.len(),
        topo.num_nodes(),
        "base tree arity must match topology"
    );
    let new_cost = new_costs.cost(changed);
    // A source is never charged for its own traffic, and a cost touches a
    // path only through interior membership — so a tree rooted at the
    // changed node, or an unchanged cost, repairs to an identical copy.
    if src == changed || new_cost == old_cost {
        return base.to_vec();
    }
    if new_cost > old_cost {
        repair_cost_increase(topo, new_costs, base, changed)
    } else {
        repair_cost_decrease(topo, new_costs, base, changed, old_cost)
    }
}

/// The increase direction: entries routing *through* `changed` detach and
/// rebuild; every other entry (including the one ending at `changed`) is
/// verbatim — its path's cost does not mention `changed`, and competitors
/// only got weakly worse.
fn repair_cost_increase(
    topo: &Topology,
    new_costs: &CostVector,
    base: &[Option<PathMetric>],
    changed: NodeId,
) -> Vec<Option<PathMetric>> {
    let n = topo.num_nodes();
    let mut detached = vec![false; n];
    let mut repaired: Vec<Option<PathMetric>> = Vec::with_capacity(n);
    let mut any = false;
    for (i, entry) in base.iter().enumerate() {
        let hit = entry
            .as_ref()
            .is_some_and(|p| p.transit_nodes().contains(&changed));
        detached[i] = hit;
        any |= hit;
        repaired.push(if hit { None } else { entry.clone() });
    }
    if !any {
        return repaired;
    }
    rebuild_region(topo, new_costs, &mut repaired, &detached, None);
    repaired
}

/// The decrease direction: through-`changed` entries stay optimal (their
/// cost just falls by `δ`, and no competitor can fall further), so they are
/// adjusted in place; the cheapened region is then a possible shortcut for
/// everyone else, so a propagation pass relaxes outward from it against the
/// standing base entries as upper bounds.
fn repair_cost_decrease(
    topo: &Topology,
    new_costs: &CostVector,
    base: &[Option<PathMetric>],
    changed: NodeId,
    old_cost: Cost,
) -> Vec<Option<PathMetric>> {
    let n = topo.num_nodes();
    let delta = old_cost.value() - new_costs.cost(changed).value();
    // The exactly-known region: `changed` itself (paths to a destination
    // never charge it) plus every through-`changed` entry, adjusted −δ.
    // Ties still break identically — hop counts and node sequences are
    // untouched, and every equal-cost competitor either also contains
    // `changed` (same −δ) or lost by at least δ before the change.
    let mut adjusted = vec![false; n];
    adjusted[changed.index()] = true;
    let mut repaired: Vec<Option<PathMetric>> = base.to_vec();
    for (i, entry) in base.iter().enumerate() {
        let Some(p) = entry else { continue };
        if p.transit_nodes().contains(&changed) {
            adjusted[i] = true;
            repaired[i] = Some(PathMetric::new(
                p.nodes().to_vec(),
                Cost::new(p.cost().value() - delta),
            ));
        }
    }
    // Improvement propagation: seed from the adjusted region's frontier;
    // outside it, base entries stand as upper bounds that only a strictly
    // better (necessarily through-`changed`) path may displace. On the
    // walk back along any improved optimum, every node past the last
    // adjusted one is itself strictly improved, so committed-node
    // relaxation reaches every improvement.
    let mut heap: BinaryHeap<Reverse<PathMetric>> = BinaryHeap::new();
    for w_idx in 0..n {
        if !adjusted[w_idx] {
            continue;
        }
        let Some(w_path) = repaired[w_idx].clone() else {
            continue;
        };
        let w = NodeId::from_index(w_idx);
        let charge = new_costs.cost(w);
        for &x in topo.neighbors(w) {
            if adjusted[x.index()] {
                continue;
            }
            if let Some(candidate) = w_path.extended(x, charge) {
                let slot = &mut repaired[x.index()];
                if slot.as_ref().is_none_or(|cur| candidate < *cur) {
                    *slot = Some(candidate.clone());
                    heap.push(Reverse(candidate));
                }
            }
        }
    }
    let mut settled = vec![false; n];
    while let Some(Reverse(path)) = heap.pop() {
        let at = path.destination();
        if settled[at.index()] {
            continue;
        }
        // Unlike a from-scratch Dijkstra, slots here start at base values
        // that were never pushed — a popped candidate is committed only if
        // it *is* the slot's current best (lazy deletion of outrun pushes).
        if repaired[at.index()].as_ref() != Some(&path) {
            continue;
        }
        settled[at.index()] = true;
        let charge = new_costs.cost(at);
        for &next in topo.neighbors(at) {
            if settled[next.index()] || adjusted[next.index()] {
                continue;
            }
            if let Some(candidate) = path.extended(next, charge) {
                let slot = &mut repaired[next.index()];
                if slot.as_ref().is_none_or(|cur| candidate < *cur) {
                    *slot = Some(candidate.clone());
                    heap.push(Reverse(candidate));
                }
            }
        }
    }
    repaired
}

/// The shared rebuild pass: Dijkstra restricted to the region marked in
/// `region`, seeded with every frontier extension from an intact entry
/// into the region, never entering `skip`. Entries outside the region are
/// read as seeds and never written; entries inside start empty (`None`)
/// and receive their unique optima in pop order, exactly as the fresh
/// computation would assign them.
fn rebuild_region(
    topo: &Topology,
    costs: &CostVector,
    repaired: &mut [Option<PathMetric>],
    region: &[bool],
    skip: Option<NodeId>,
) {
    let n = topo.num_nodes();
    let mut heap: BinaryHeap<Reverse<PathMetric>> = BinaryHeap::new();
    for u_idx in 0..n {
        if region[u_idx] {
            continue;
        }
        let Some(u_path) = repaired[u_idx].clone() else {
            continue;
        };
        let u = NodeId::from_index(u_idx);
        let charge = costs.cost(u);
        for &x in topo.neighbors(u) {
            if !region[x.index()] || Some(x) == skip {
                continue;
            }
            if let Some(candidate) = u_path.extended(x, charge) {
                let slot = &mut repaired[x.index()];
                if slot.as_ref().is_none_or(|cur| candidate < *cur) {
                    *slot = Some(candidate.clone());
                    heap.push(Reverse(candidate));
                }
            }
        }
    }
    let mut settled = vec![false; n];
    while let Some(Reverse(path)) = heap.pop() {
        let at = path.destination();
        if settled[at.index()] {
            continue;
        }
        settled[at.index()] = true;
        let charge = costs.cost(at);
        for &next in topo.neighbors(at) {
            if settled[next.index()] || !region[next.index()] || Some(next) == skip {
                continue;
            }
            if let Some(candidate) = path.extended(next, charge) {
                let slot = &mut repaired[next.index()];
                if slot.as_ref().is_none_or(|cur| candidate < *cur) {
                    *slot = Some(candidate.clone());
                    heap.push(Reverse(candidate));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::figure1;
    use crate::lcp::{lcp_tree, lcp_tree_avoiding};

    #[test]
    fn removal_repair_matches_fresh_on_figure1() {
        let net = figure1();
        for src in net.topology.nodes() {
            let base = lcp_tree(&net.topology, &net.costs, src);
            for avoid in net.topology.nodes() {
                if avoid == src {
                    continue;
                }
                assert_eq!(
                    repair_avoiding(&net.topology, &net.costs, &base, src, avoid),
                    lcp_tree_avoiding(&net.topology, &net.costs, src, Some(avoid)),
                    "repair({src}, avoid {avoid})"
                );
            }
        }
    }

    #[test]
    fn cost_change_repair_matches_fresh_on_figure1_both_directions() {
        let net = figure1();
        for changed in net.topology.nodes() {
            let old = net.costs.cost(changed);
            for new in [0, 1, 3, 7, 50] {
                let lied = net.costs.with_cost(changed, Cost::new(new));
                for src in net.topology.nodes() {
                    let base = lcp_tree(&net.topology, &net.costs, src);
                    assert_eq!(
                        repair_cost_change(&net.topology, &lied, &base, src, changed, old),
                        lcp_tree(&net.topology, &lied, src),
                        "repair({src}, {changed}: {old} -> {new})"
                    );
                }
            }
        }
    }

    #[test]
    fn unchanged_cost_returns_the_base_verbatim() {
        let net = figure1();
        let base = lcp_tree(&net.topology, &net.costs, net.x);
        let same = repair_cost_change(
            &net.topology,
            &net.costs,
            &base,
            net.x,
            net.c,
            net.costs.cost(net.c),
        );
        assert_eq!(same, base);
    }

    #[test]
    fn source_cost_change_returns_the_base_verbatim() {
        // The source transits its own traffic for free, so its declared
        // cost never appears in its own tree.
        let net = figure1();
        let base = lcp_tree(&net.topology, &net.costs, net.x);
        let lied = net.costs.with_cost(net.x, Cost::new(99));
        let repaired = repair_cost_change(
            &net.topology,
            &lied,
            &base,
            net.x,
            net.x,
            net.costs.cost(net.x),
        );
        assert_eq!(repaired, base);
        assert_eq!(repaired, lcp_tree(&net.topology, &lied, net.x));
    }

    #[test]
    fn removal_repair_handles_disconnection() {
        // Star: removing the hub strands every other leaf.
        let topo = crate::generators::star(6);
        let costs = CostVector::uniform(6, 2);
        let hub = NodeId::new(5);
        let leaf = NodeId::new(1);
        let base = lcp_tree(&topo, &costs, leaf);
        let repaired = repair_avoiding(&topo, &costs, &base, leaf, hub);
        assert_eq!(repaired, lcp_tree_avoiding(&topo, &costs, leaf, Some(hub)));
        let reachable = repaired.iter().flatten().count();
        assert_eq!(reachable, 1, "only the source survives losing the hub");
    }

    #[test]
    #[should_panic(expected = "cannot avoid the source")]
    fn avoid_source_rejected() {
        let net = figure1();
        let base = lcp_tree(&net.topology, &net.costs, net.x);
        let _ = repair_avoiding(&net.topology, &net.costs, &base, net.x, net.x);
    }
}
