//! Lowest-cost-path (LCP) computation.
//!
//! FPSS routes between every source–destination pair along the path
//! minimizing the sum of *intermediate-node* transit costs. This module is
//! the centralized reference implementation (node-weighted Dijkstra under
//! the [`PathMetric`] total order); the distributed Bellman–Ford in
//! `specfaith-fpss` must converge to exactly these tables, and checker
//! nodes re-verify principals against them.

use crate::costs::CostVector;
use crate::path::PathMetric;
use crate::topology::Topology;
use specfaith_core::id::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Lowest-cost paths from `src` to every node, or `None` where unreachable.
///
/// Index the result by destination id. `result[src]` is the trivial path.
///
/// # Example
///
/// ```
/// use specfaith_graph::generators::figure1;
/// use specfaith_graph::lcp::lcp_tree;
///
/// let net = figure1();
/// let tree = lcp_tree(&net.topology, &net.costs, net.z);
/// // Figure 1: every node is reachable from Z.
/// assert!(tree.iter().all(Option::is_some));
/// ```
pub fn lcp_tree(topo: &Topology, costs: &CostVector, src: NodeId) -> Vec<Option<PathMetric>> {
    lcp_tree_avoiding(topo, costs, src, None)
}

/// Like [`lcp_tree`], but with `avoid` removed from the graph — the
/// `d_{G−k}` query that defines VCG payments.
pub fn lcp_tree_avoiding(
    topo: &Topology,
    costs: &CostVector,
    src: NodeId,
    avoid: Option<NodeId>,
) -> Vec<Option<PathMetric>> {
    assert_eq!(
        topo.num_nodes(),
        costs.len(),
        "cost vector arity must match topology"
    );
    assert!(
        avoid != Some(src),
        "cannot avoid the source of the LCP query"
    );
    let n = topo.num_nodes();
    let mut best: Vec<Option<PathMetric>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<Reverse<PathMetric>> = BinaryHeap::new();
    heap.push(Reverse(PathMetric::trivial(src)));
    while let Some(Reverse(path)) = heap.pop() {
        let at = path.destination();
        if settled[at.index()] {
            continue;
        }
        settled[at.index()] = true;
        let transit_charge = costs.cost(at);
        for &next in topo.neighbors(at) {
            if settled[next.index()] || Some(next) == avoid {
                continue;
            }
            if let Some(candidate) = path.extended(next, transit_charge) {
                let slot = &mut best[next.index()];
                let improves = slot.as_ref().is_none_or(|cur| candidate < *cur);
                if improves {
                    *slot = Some(candidate.clone());
                    heap.push(Reverse(candidate));
                }
            }
        }
        if at == src {
            best[src.index()] = Some(path);
        }
    }
    best
}

/// The lowest-cost path from `src` to `dst`, or `None` if unreachable.
///
/// Deprecated: a single-pair query has no business cloning a whole tree's
/// worth of work. The borrow-based [`RouteCache::path`] is the only
/// implementation now — this wrapper consults the shared cache and clones
/// the one path at the edge, purely for signature compatibility.
///
/// [`RouteCache::path`]: crate::cache::RouteCache::path
#[deprecated(
    since = "0.3.0",
    note = "use `RouteCache::shared(topo, costs).path(src, dst)` and borrow the path"
)]
pub fn lcp(topo: &Topology, costs: &CostVector, src: NodeId, dst: NodeId) -> Option<PathMetric> {
    crate::cache::RouteCache::shared(topo, costs)
        .path(src, dst)
        .cloned()
}

/// The lowest-cost path from `src` to `dst` avoiding `avoid` entirely.
///
/// Deprecated: see [`lcp`]; the borrow-based replacement is
/// [`RouteCache::path_avoiding`](crate::cache::RouteCache::path_avoiding).
///
/// # Panics
///
/// Panics if `avoid` equals `src` or `dst` (the VCG query only ever avoids
/// intermediate nodes).
#[deprecated(
    since = "0.3.0",
    note = "use `RouteCache::shared(topo, costs).path_avoiding(src, dst, avoid)` and borrow the path"
)]
pub fn lcp_avoiding(
    topo: &Topology,
    costs: &CostVector,
    src: NodeId,
    dst: NodeId,
    avoid: NodeId,
) -> Option<PathMetric> {
    crate::cache::RouteCache::shared(topo, costs).path_avoiding(src, dst, avoid)
}

/// All-pairs lowest-cost paths: `result[src][dst]`.
pub fn all_pairs(topo: &Topology, costs: &CostVector) -> Vec<Vec<Option<PathMetric>>> {
    topo.nodes().map(|src| lcp_tree(topo, costs, src)).collect()
}

#[cfg(test)]
mod tests {
    // The deprecated single-pair wrappers stay covered until their removal.
    #![allow(deprecated)]

    use super::*;
    use crate::generators::{figure1, ring};
    use specfaith_core::money::Cost;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn figure1_x_to_z_costs_two() {
        let net = figure1();
        let p = lcp(&net.topology, &net.costs, net.x, net.z).expect("biconnected");
        assert_eq!(p.cost(), Cost::new(2));
        assert_eq!(p.nodes(), &[net.x, net.d, net.c, net.z]);
    }

    #[test]
    fn figure1_z_to_d_costs_one_via_c() {
        let net = figure1();
        let p = lcp(&net.topology, &net.costs, net.z, net.d).expect("biconnected");
        assert_eq!(p.cost(), Cost::new(1));
        assert_eq!(p.nodes(), &[net.z, net.c, net.d]);
    }

    #[test]
    fn figure1_b_to_d_is_free_direct() {
        let net = figure1();
        let p = lcp(&net.topology, &net.costs, net.b, net.d).expect("biconnected");
        assert_eq!(p.cost(), Cost::ZERO);
        assert_eq!(p.hops(), 1);
    }

    #[test]
    fn figure1_example1_lie_moves_lcp() {
        // Example 1: if C declares 5, X-A-Z becomes the X to Z LCP.
        let net = figure1();
        let lied = net.costs.with_cost(net.c, Cost::new(5));
        let p = lcp(&net.topology, &lied, net.x, net.z).expect("biconnected");
        assert_eq!(p.nodes(), &[net.x, net.a, net.z]);
        assert_eq!(p.cost(), Cost::new(5));
    }

    #[test]
    fn avoiding_reroutes() {
        let net = figure1();
        // X to Z avoiding C must use A (cost 5) rather than D-C (cost 2).
        let p = lcp_avoiding(&net.topology, &net.costs, net.x, net.z, net.c).expect("biconnected");
        assert_eq!(p.nodes(), &[net.x, net.a, net.z]);
        assert_eq!(p.cost(), Cost::new(5));
    }

    #[test]
    fn lcp_is_symmetric_in_cost() {
        // Undirected graph, node costs: d(i,j) == d(j,i).
        let net = figure1();
        for i in net.topology.nodes() {
            for j in net.topology.nodes() {
                let forward = lcp(&net.topology, &net.costs, i, j).expect("connected");
                let backward = lcp(&net.topology, &net.costs, j, i).expect("connected");
                assert_eq!(forward.cost(), backward.cost(), "{i}->{j}");
            }
        }
    }

    #[test]
    fn source_entry_is_trivial() {
        let net = figure1();
        let tree = lcp_tree(&net.topology, &net.costs, net.z);
        let own = tree[net.z.index()].as_ref().expect("present");
        assert_eq!(own.hops(), 0);
        assert_eq!(own.cost(), Cost::ZERO);
    }

    #[test]
    fn unreachable_is_none() {
        let topo = Topology::builder(3).edge(0, 1).build();
        let costs = CostVector::uniform(3, 1);
        assert!(lcp(&topo, &costs, n(0), n(2)).is_none());
    }

    #[test]
    fn tie_break_prefers_fewer_hops_then_lex() {
        // Square 0-1-2-3-0 with zero costs: 0→2 has two 2-hop options
        // (via 1 or via 3); lex picks via 1.
        let topo = ring(4);
        let costs = CostVector::uniform(4, 0);
        let p = lcp(&topo, &costs, n(0), n(2)).expect("connected");
        assert_eq!(p.nodes(), &[n(0), n(1), n(2)]);
    }

    #[test]
    fn direct_edge_beats_equal_cost_detour() {
        // Triangle with zero costs: direct 1-hop wins over 2-hop.
        let topo = ring(3);
        let costs = CostVector::uniform(3, 0);
        let p = lcp(&topo, &costs, n(0), n(1)).expect("connected");
        assert_eq!(p.hops(), 1);
    }

    #[test]
    fn all_pairs_agrees_with_single_queries() {
        let net = figure1();
        let table = all_pairs(&net.topology, &net.costs);
        for i in net.topology.nodes() {
            for j in net.topology.nodes() {
                assert_eq!(
                    table[i.index()][j.index()],
                    lcp(&net.topology, &net.costs, i, j),
                    "{i}->{j}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot avoid the source")]
    fn avoid_source_rejected() {
        let net = figure1();
        let _ = lcp_avoiding(&net.topology, &net.costs, net.x, net.z, net.x);
    }

    #[test]
    #[should_panic(expected = "cannot avoid the destination")]
    fn avoid_destination_rejected() {
        let net = figure1();
        let _ = lcp_avoiding(&net.topology, &net.costs, net.x, net.z, net.z);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_cost_vector_rejected() {
        let net = figure1();
        let short = CostVector::uniform(2, 1);
        let _ = lcp_tree(&net.topology, &short, net.z);
    }
}

#[cfg(test)]
mod proptests {
    #![allow(deprecated)]

    use super::*;
    use crate::generators::random_biconnected;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cost_of_path(costs: &CostVector, nodes: &[NodeId]) -> u64 {
        if nodes.len() <= 2 {
            return 0;
        }
        nodes[1..nodes.len() - 1]
            .iter()
            .map(|&v| costs.cost(v).value())
            .sum()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The reported cost always equals the recomputed sum of transit
        /// costs, and paths are simple and edge-valid.
        #[test]
        fn paths_are_valid_and_costs_exact(seed in 0u64..500, n in 4usize..16) {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = random_biconnected(n, n / 2, &mut rng);
            let costs = CostVector::random(n, 0, 20, &mut rng);
            for src in topo.nodes() {
                for (dst, entry) in lcp_tree(&topo, &costs, src).iter().enumerate() {
                    let p = entry.as_ref().expect("biconnected implies reachable");
                    prop_assert_eq!(p.source(), src);
                    prop_assert_eq!(p.destination().index(), dst);
                    prop_assert_eq!(p.cost().value(), cost_of_path(&costs, p.nodes()));
                    for pair in p.nodes().windows(2) {
                        prop_assert!(topo.has_edge(pair[0], pair[1]));
                    }
                }
            }
        }

        /// Dijkstra under PathMetric is genuinely optimal: no single edge
        /// relaxation can improve any computed distance (Bellman condition).
        #[test]
        fn bellman_optimality(seed in 0u64..500, n in 4usize..14) {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = random_biconnected(n, n / 2, &mut rng);
            let costs = CostVector::random(n, 0, 20, &mut rng);
            for src in topo.nodes() {
                let tree = lcp_tree(&topo, &costs, src);
                for v in topo.nodes() {
                    let dv = tree[v.index()].as_ref().expect("reachable");
                    for &w in topo.neighbors(v) {
                        let dw = tree[w.index()].as_ref().expect("reachable");
                        if let Some(candidate) = dv.extended(w, costs.cost(v)) {
                            prop_assert!(*dw <= candidate, "relaxation {v}->{w} improves");
                        }
                    }
                }
            }
        }

        /// Removing a non-articulation node can only (weakly) increase cost.
        #[test]
        fn avoiding_weakly_increases_cost(seed in 0u64..300, n in 5usize..12) {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = random_biconnected(n, n / 2, &mut rng);
            let costs = CostVector::random(n, 0, 20, &mut rng);
            let nodes: Vec<NodeId> = topo.nodes().collect();
            let (src, dst, avoid) = (nodes[0], nodes[1], nodes[2]);
            let with = lcp(&topo, &costs, src, dst).expect("reachable");
            let without = lcp_avoiding(&topo, &costs, src, dst, avoid)
                .expect("biconnected implies an avoiding path exists");
            prop_assert!(without.cost() >= with.cost());
            prop_assert!(!without.contains(avoid));
        }
    }
}
