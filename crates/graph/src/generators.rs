//! Topology generators: the paper's Figure 1 and synthetic families.

use crate::costs::CostVector;
use crate::topology::Topology;
use rand::seq::SliceRandom;
use rand::Rng;
use specfaith_core::id::NodeId;

/// The paper's Figure 1 network, with named nodes and the stated transit
/// costs.
///
/// The figure shows a 6-node biconnected AS graph with per-node costs
/// `A=5, B=1000, C=1, D=1, Z=6, X=100`, reconstructed from the facts stated
/// in §4.1 and Example 1:
///
/// * the X→Z LCP is `X-D-C-Z` with total cost 2 (so `c_D + c_C = 2`);
/// * the Z→D LCP costs 1 (via C, so `c_C = 1`, hence `c_D = 1`);
/// * B→D costs 0 (a direct edge);
/// * if C declared 5, `X-A-Z` would become the X→Z LCP (so `c_A = 5` and
///   A links X and Z).
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// The 6-node topology.
    pub topology: Topology,
    /// True transit costs.
    pub costs: CostVector,
    /// Node A (cost 5): the X–Z alternative transit.
    pub a: NodeId,
    /// Node B (cost 1000): expensive transit adjacent to Z and D.
    pub b: NodeId,
    /// Node C (cost 1): the manipulating node of Example 1.
    pub c: NodeId,
    /// Node D (cost 1).
    pub d: NodeId,
    /// Node Z (cost 6): the source of the figure's LCP tree.
    pub z: NodeId,
    /// Node X (cost 100).
    pub x: NodeId,
}

/// Builds the paper's Figure 1 network.
pub fn figure1() -> Figure1 {
    let (a, b, c, d, z, x) = (
        NodeId::new(0),
        NodeId::new(1),
        NodeId::new(2),
        NodeId::new(3),
        NodeId::new(4),
        NodeId::new(5),
    );
    let topology = Topology::builder(6)
        .edge_ids(a, z)
        .edge_ids(a, x)
        .edge_ids(z, c)
        .edge_ids(c, d)
        .edge_ids(d, x)
        .edge_ids(d, b)
        .edge_ids(z, b)
        .build();
    let costs = CostVector::from_values(&[5, 1000, 1, 1, 6, 100]);
    Figure1 {
        topology,
        costs,
        a,
        b,
        c,
        d,
        z,
        x,
    }
}

/// A cycle on `n ≥ 3` nodes (the smallest biconnected family).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut builder = Topology::builder(n);
    for i in 0..n {
        builder = builder.edge(i as u32, ((i + 1) % n) as u32);
    }
    builder.build()
}

/// The complete graph on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn complete(n: usize) -> Topology {
    assert!(n >= 3, "a complete graph needs at least 3 nodes");
    let mut builder = Topology::builder(n);
    for i in 0..n {
        for j in (i + 1)..n {
            builder = builder.edge(i as u32, j as u32);
        }
    }
    builder.build()
}

/// A wheel: a ring of `n − 1` nodes plus a hub adjacent to all of them.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn wheel(n: usize) -> Topology {
    assert!(n >= 4, "a wheel needs at least 4 nodes");
    let rim = n - 1;
    let hub = (n - 1) as u32;
    let mut builder = Topology::builder(n);
    for i in 0..rim {
        builder = builder
            .edge(i as u32, ((i + 1) % rim) as u32)
            .edge(i as u32, hub);
    }
    builder.build()
}

/// A `w × h` grid (biconnected for `w, h ≥ 2`).
///
/// # Panics
///
/// Panics if `w < 2` or `h < 2`.
pub fn grid(w: usize, h: usize) -> Topology {
    assert!(w >= 2 && h >= 2, "a grid needs both dimensions ≥ 2");
    let idx = |x: usize, y: usize| (y * w + x) as u32;
    let mut builder = Topology::builder(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                builder = builder.edge(idx(x, y), idx(x + 1, y));
            }
            if y + 1 < h {
                builder = builder.edge(idx(x, y), idx(x, y + 1));
            }
        }
    }
    builder.build()
}

/// A star: one hub (node `n − 1`) adjacent to `n − 1` leaves, and nothing
/// else.
///
/// **The star is deliberately *not* biconnected** (for `n ≥ 3` the hub is
/// a cut vertex, and `n = 2` is a single edge): FPSS requires
/// biconnectivity, so scenario construction **rejects** star topologies.
/// The generator exists to exercise exactly that rejection path, and for
/// protocols (like the leader election of §3) that tolerate cut
/// vertices. For a hub-and-spoke network FPSS accepts, use [`wheel`],
/// which is a star plus the rim cycle.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Topology {
    assert!(n >= 2, "a star needs a hub and at least one leaf");
    let hub = (n - 1) as u32;
    let mut builder = Topology::builder(n);
    for leaf in 0..n - 1 {
        builder = builder.edge(leaf as u32, hub);
    }
    builder.build()
}

/// A scale-free topology via Barabási–Albert preferential attachment:
/// start from the complete graph on `m + 1` seed nodes, then attach each
/// new node to `m` *distinct* existing nodes, chosen with probability
/// proportional to current degree.
///
/// **Biconnected by construction** for `m ≥ 2` (which this generator
/// requires): the seed clique is biconnected, and every new node forms an
/// open ear between two distinct existing nodes, which preserves
/// biconnectivity. With `m = 1` preferential attachment grows a tree —
/// never biconnected — so that parameterization is rejected with a panic
/// rather than producing a topology every FPSS scenario would refuse.
///
/// # Panics
///
/// Panics if `m < 2` or `n ≤ m`.
pub fn scale_free<R: Rng>(n: usize, m: usize, rng: &mut R) -> Topology {
    assert!(
        m >= 2,
        "scale-free attachment needs m >= 2: m = 1 grows a tree, which is never biconnected"
    );
    assert!(n > m, "need more nodes than the attachment count");
    let mut builder = Topology::builder(n);
    // Degree-weighted urn: node id appears once per incident edge.
    let mut urn: Vec<u32> = Vec::with_capacity(2 * n * m);
    for i in 0..=m {
        for j in (i + 1)..=m {
            builder = builder.edge(i as u32, j as u32);
            urn.push(i as u32);
            urn.push(j as u32);
        }
    }
    for newcomer in (m + 1)..n {
        let mut targets: Vec<u32> = Vec::with_capacity(m);
        while targets.len() < m {
            let candidate = urn[rng.gen_range(0..urn.len())];
            if !targets.contains(&candidate) {
                targets.push(candidate);
            }
        }
        for &target in &targets {
            builder = builder.edge(newcomer as u32, target);
            urn.push(newcomer as u32);
            urn.push(target);
        }
    }
    builder.build()
}

/// A random biconnected topology: a random Hamiltonian cycle (biconnected
/// by construction) plus `extra_edges` random chords.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn random_biconnected<R: Rng>(n: usize, extra_edges: usize, rng: &mut R) -> Topology {
    assert!(n >= 3, "biconnectivity needs at least 3 nodes");
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut builder = Topology::builder(n);
    for i in 0..n {
        builder = builder.edge(order[i], order[(i + 1) % n]);
    }
    let mut added = 0usize;
    let mut attempts = 0usize;
    // Chords may collide with existing edges; bound the retry loop.
    while added < extra_edges && attempts < extra_edges * 20 + 64 {
        attempts += 1;
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b {
            builder = builder.edge(a, b);
            added += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn figure1_is_biconnected_with_stated_costs() {
        let net = figure1();
        assert!(net.topology.is_biconnected());
        assert_eq!(net.costs.cost(net.a).value(), 5);
        assert_eq!(net.costs.cost(net.b).value(), 1000);
        assert_eq!(net.costs.cost(net.c).value(), 1);
        assert_eq!(net.costs.cost(net.d).value(), 1);
        assert_eq!(net.costs.cost(net.z).value(), 6);
        assert_eq!(net.costs.cost(net.x).value(), 100);
    }

    #[test]
    fn figure1_edge_set_matches_reconstruction() {
        let net = figure1();
        assert_eq!(net.topology.num_edges(), 7);
        assert!(net.topology.has_edge(net.b, net.d), "B-D is direct");
        assert!(net.topology.has_edge(net.a, net.x) && net.topology.has_edge(net.a, net.z));
        assert!(!net.topology.has_edge(net.x, net.z), "X-Z must transit");
    }

    #[test]
    fn rings_are_biconnected() {
        for n in [3, 4, 7, 12] {
            assert!(ring(n).is_biconnected(), "ring({n})");
        }
    }

    #[test]
    fn complete_graphs_are_biconnected() {
        for n in [3, 5, 8] {
            let topo = complete(n);
            assert!(topo.is_biconnected());
            assert_eq!(topo.num_edges(), n * (n - 1) / 2);
        }
    }

    #[test]
    fn wheels_are_biconnected() {
        for n in [4, 6, 9] {
            let topo = wheel(n);
            assert!(topo.is_biconnected(), "wheel({n})");
            assert_eq!(topo.degree(NodeId::new((n - 1) as u32)), n - 1);
        }
    }

    #[test]
    fn grids_are_biconnected() {
        for (w, h) in [(2, 2), (3, 4), (5, 2)] {
            assert!(grid(w, h).is_biconnected(), "grid({w},{h})");
        }
    }

    #[test]
    fn random_biconnected_really_is() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [3, 6, 10, 20, 33] {
            for extra in [0, 2, n / 2] {
                let topo = random_biconnected(n, extra, &mut rng);
                assert!(topo.is_biconnected(), "n={n}, extra={extra}");
            }
        }
    }

    #[test]
    fn random_biconnected_is_seed_deterministic() {
        let a = random_biconnected(12, 4, &mut StdRng::seed_from_u64(7));
        let b = random_biconnected(12, 4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn ring_rejects_tiny() {
        let _ = ring(2);
    }

    #[test]
    fn stars_are_never_biconnected() {
        // The documented contract: star() builds the topology, and FPSS
        // scenario construction rejects it because the hub is a cut
        // vertex (or, at n = 2, the graph is a single edge).
        for n in [2usize, 3, 5, 9, 17] {
            let topo = star(n);
            assert_eq!(topo.num_edges(), n - 1, "star({n}) edge count");
            assert_eq!(topo.degree(NodeId::new((n - 1) as u32)), n - 1);
            assert!(!topo.is_biconnected(), "star({n}) must not be biconnected");
        }
    }

    #[test]
    fn scale_free_is_biconnected_by_construction() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in [4usize, 8, 16, 40] {
            for m in [2usize, 3] {
                if n <= m {
                    continue;
                }
                let topo = scale_free(n, m, &mut rng);
                assert_eq!(topo.num_nodes(), n);
                assert!(topo.is_biconnected(), "scale_free({n}, {m})");
            }
        }
    }

    #[test]
    fn scale_free_prefers_high_degree_nodes() {
        // The scale-free signature: hubs exist. On a reasonably large
        // instance the maximum degree must clearly exceed the attachment
        // count m (which is every late node's degree at birth).
        let mut rng = StdRng::seed_from_u64(10);
        let topo = scale_free(60, 2, &mut rng);
        let max_degree = topo.nodes().map(|v| topo.degree(v)).max().unwrap();
        assert!(
            max_degree >= 6,
            "expected a hub, max degree was {max_degree}"
        );
    }

    #[test]
    fn scale_free_is_seed_deterministic() {
        let a = scale_free(20, 2, &mut StdRng::seed_from_u64(5));
        let b = scale_free(20, 2, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "m = 1 grows a tree")]
    fn scale_free_rejects_tree_parameterization() {
        let _ = scale_free(10, 1, &mut StdRng::seed_from_u64(0));
    }
}
