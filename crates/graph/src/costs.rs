//! Per-node transit cost vectors.

use rand::Rng;
use specfaith_core::id::NodeId;
use specfaith_core::money::Cost;
use std::fmt;

/// Per-node transit costs — the (private) type `θᵢ` of each node in the
/// FPSS mechanism.
///
/// # Example
///
/// ```
/// use specfaith_graph::costs::CostVector;
/// use specfaith_core::id::NodeId;
/// use specfaith_core::money::Cost;
///
/// let costs = CostVector::from_values(&[5, 1000, 1]);
/// assert_eq!(costs.cost(NodeId::new(2)), Cost::new(1));
/// let lied = costs.with_cost(NodeId::new(2), Cost::new(5));
/// assert_eq!(lied.cost(NodeId::new(2)), Cost::new(5));
/// assert_eq!(costs.cost(NodeId::new(2)), Cost::new(1)); // original intact
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CostVector {
    costs: Vec<Cost>,
}

impl CostVector {
    /// Builds a cost vector from raw values.
    pub fn from_values(values: &[u64]) -> Self {
        CostVector {
            costs: values.iter().map(|&v| Cost::new(v)).collect(),
        }
    }

    /// Builds a cost vector from [`Cost`]s.
    pub fn from_costs(costs: Vec<Cost>) -> Self {
        assert!(
            costs.iter().all(|c| !c.is_infinite()),
            "transit costs must be finite"
        );
        CostVector { costs }
    }

    /// A uniform cost vector.
    pub fn uniform(n: usize, cost: u64) -> Self {
        CostVector {
            costs: vec![Cost::new(cost); n],
        }
    }

    /// Uniformly random integer costs in `lo..=hi` for `n` nodes.
    pub fn random<R: Rng>(n: usize, lo: u64, hi: u64, rng: &mut R) -> Self {
        assert!(lo <= hi, "empty cost range");
        CostVector {
            costs: (0..n).map(|_| Cost::new(rng.gen_range(lo..=hi))).collect(),
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// The transit cost of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn cost(&self, node: NodeId) -> Cost {
        self.costs[node.index()]
    }

    /// A copy with `node`'s cost replaced — the standard way to build a
    /// misreport profile `(θ̂ᵢ, θ₋ᵢ)`.
    #[must_use]
    pub fn with_cost(&self, node: NodeId, cost: Cost) -> CostVector {
        let mut copy = self.clone();
        copy.costs[node.index()] = cost;
        copy
    }

    /// The single node where `self` and `other` disagree, if they differ
    /// at **exactly one** position (and match in arity) — the shape of a
    /// misreport profile relative to the honest vector, and the condition
    /// under which [`repair`](crate::repair)-based cache seeding
    /// applies. Returns `None` for identical vectors, multi-node
    /// differences, or arity mismatches.
    pub fn one_node_delta(&self, other: &CostVector) -> Option<NodeId> {
        if self.len() != other.len() {
            return None;
        }
        let mut changed = None;
        for (i, (a, b)) in self.costs.iter().zip(&other.costs).enumerate() {
            if a != b {
                if changed.is_some() {
                    return None;
                }
                changed = Some(NodeId::from_index(i));
            }
        }
        changed
    }

    /// Iterates `(node, cost)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Cost)> + '_ {
        self.costs
            .iter()
            .enumerate()
            .map(|(i, &c)| (NodeId::from_index(i), c))
    }

    /// The raw cost slice, indexed by node.
    pub fn as_slice(&self) -> &[Cost] {
        &self.costs
    }
}

impl fmt::Debug for CostVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CostVector(")?;
        for (i, c) in self.costs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Cost> for CostVector {
    fn from_iter<T: IntoIterator<Item = Cost>>(iter: T) -> Self {
        CostVector::from_costs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_values_and_access() {
        let costs = CostVector::from_values(&[3, 0, 7]);
        assert_eq!(costs.len(), 3);
        assert_eq!(costs.cost(NodeId::new(0)), Cost::new(3));
        assert_eq!(costs.cost(NodeId::new(1)), Cost::ZERO);
    }

    #[test]
    fn with_cost_is_persistent() {
        let costs = CostVector::from_values(&[1, 2]);
        let changed = costs.with_cost(NodeId::new(0), Cost::new(9));
        assert_eq!(changed.cost(NodeId::new(0)), Cost::new(9));
        assert_eq!(costs.cost(NodeId::new(0)), Cost::new(1));
    }

    #[test]
    fn uniform_fills() {
        let costs = CostVector::uniform(4, 6);
        assert!(costs.iter().all(|(_, c)| c == Cost::new(6)));
    }

    #[test]
    fn random_respects_bounds_and_seed() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = CostVector::random(20, 2, 9, &mut rng);
        assert!(a.iter().all(|(_, c)| (2..=9).contains(&c.value())));
        let mut rng2 = StdRng::seed_from_u64(11);
        let b = CostVector::random(20, 2, 9, &mut rng2);
        assert_eq!(a, b, "same seed must reproduce the same costs");
    }

    #[test]
    fn iter_yields_node_order() {
        let costs = CostVector::from_values(&[4, 5]);
        let pairs: Vec<_> = costs.iter().collect();
        assert_eq!(
            pairs,
            vec![
                (NodeId::new(0), Cost::new(4)),
                (NodeId::new(1), Cost::new(5))
            ]
        );
    }

    #[test]
    fn one_node_delta_finds_exactly_single_differences() {
        let honest = CostVector::from_values(&[3, 5, 7]);
        let lied = honest.with_cost(NodeId::new(1), Cost::new(9));
        assert_eq!(honest.one_node_delta(&lied), Some(NodeId::new(1)));
        assert_eq!(lied.one_node_delta(&honest), Some(NodeId::new(1)));
        assert_eq!(honest.one_node_delta(&honest), None, "identical");
        let two = lied.with_cost(NodeId::new(2), Cost::new(1));
        assert_eq!(honest.one_node_delta(&two), None, "two differences");
        let short = CostVector::from_values(&[3, 5]);
        assert_eq!(honest.one_node_delta(&short), None, "arity mismatch");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_infinite_costs() {
        let _ = CostVector::from_costs(vec![Cost::INFINITE]);
    }

    #[test]
    fn collects_from_iterator() {
        let costs: CostVector = [Cost::new(1), Cost::new(2)].into_iter().collect();
        assert_eq!(costs.len(), 2);
    }
}
