//! The cost of faithfulness (experiment E8).
//!
//! §3.9 warns that "one must be sensitive to the added computational and
//! communication complexity in using checkpoints". This module quantifies
//! it: the same topology, costs, and traffic run through plain FPSS and
//! through the faithful extension, comparing message and byte counts.

use crate::harness::{run_faithful_honest, FaithfulConfig};
use specfaith_fpss::runner::{run_plain_faithful, PlainConfig};
use specfaith_fpss::traffic::TrafficMatrix;
use specfaith_graph::costs::CostVector;
use specfaith_graph::topology::Topology;
use std::fmt;

/// Plain-vs-faithful traffic comparison for one instance.
#[derive(Clone, Debug)]
pub struct OverheadReport {
    /// Nodes in the topology.
    pub nodes: usize,
    /// Edges in the topology.
    pub edges: usize,
    /// Messages sent in the plain run.
    pub plain_msgs: u64,
    /// Bytes sent in the plain run.
    pub plain_bytes: u64,
    /// Messages sent in the faithful run (checker forwards + bank traffic
    /// included).
    pub faithful_msgs: u64,
    /// Bytes sent in the faithful run.
    pub faithful_bytes: u64,
}

impl OverheadReport {
    /// Message overhead factor (faithful / plain).
    pub fn msg_factor(&self) -> f64 {
        self.faithful_msgs as f64 / self.plain_msgs.max(1) as f64
    }

    /// Byte overhead factor (faithful / plain).
    pub fn byte_factor(&self) -> f64 {
        self.faithful_bytes as f64 / self.plain_bytes.max(1) as f64
    }
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={:<3} m={:<3} plain {:>7} msgs / {:>9} B   faithful {:>7} msgs / {:>9} B   x{:.2} msgs x{:.2} B",
            self.nodes,
            self.edges,
            self.plain_msgs,
            self.plain_bytes,
            self.faithful_msgs,
            self.faithful_bytes,
            self.msg_factor(),
            self.byte_factor()
        )
    }
}

/// Runs both variants faithfully and reports the overhead.
///
/// # Panics
///
/// Panics if either run fails to complete (truncation) — overhead numbers
/// from incomplete runs would be meaningless.
pub fn measure_overhead(
    topo: &Topology,
    costs: &CostVector,
    traffic: &TrafficMatrix,
    seed: u64,
) -> OverheadReport {
    let plain = run_plain_faithful(
        &PlainConfig::new(topo.clone(), costs.clone(), traffic.clone()),
        seed,
    );
    assert!(!plain.truncated, "plain run truncated");
    let faithful = run_faithful_honest(
        &FaithfulConfig::new(topo.clone(), costs.clone(), traffic.clone()),
        seed,
    );
    assert!(!faithful.truncated, "faithful run truncated");
    assert!(faithful.green_lighted, "faithful run must certify");
    OverheadReport {
        nodes: topo.num_nodes(),
        edges: topo.num_edges(),
        plain_msgs: plain.stats.total_msgs(),
        plain_bytes: plain.stats.total_bytes(),
        faithful_msgs: faithful.stats.total_msgs(),
        faithful_bytes: faithful.stats.total_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaith_graph::generators::figure1;

    #[test]
    fn faithful_costs_more_than_plain() {
        let net = figure1();
        let traffic = TrafficMatrix::single(net.x, net.z, 5);
        let report = measure_overhead(&net.topology, &net.costs, &traffic, 3);
        assert!(
            report.msg_factor() > 1.0,
            "checker forwards and bank traffic must cost something: {report}"
        );
        assert!(report.byte_factor() > 1.0);
        // But the overhead is a constant factor, not an explosion.
        assert!(
            report.msg_factor() < 20.0,
            "overhead should stay a modest multiple: {report}"
        );
    }

    #[test]
    fn display_renders_factors() {
        let net = figure1();
        let traffic = TrafficMatrix::single(net.x, net.z, 2);
        let report = measure_overhead(&net.topology, &net.costs, &traffic, 3);
        let shown = report.to_string();
        assert!(shown.contains("plain"));
        assert!(shown.contains("faithful"));
    }
}
