//! The bank: trusted checkpointing and settlement.
//!
//! The bank "is a trusted and obedient entity that can also perform simple
//! comparisons, and enforce penalties when it detects a problem" (§4.2).
//! It never performs the mechanism computation itself — it only compares
//! what principals and checkers report:
//!
//! * **\[BANK1\]** at network quiescence, collect routing-table hashes from
//!   every principal and every checker mirror; any difference ⇒ restart
//!   the construction phase.
//! * **\[BANK2\]** same for pricing tables (identity tags included); pass ⇒
//!   green-light execution.
//! * **Execution settlement**: recompute expected payments from checker
//!   observations × mirror prices, transfer the *corrected* amounts, and
//!   charge ε-above-the-deviation penalties for payment misreports and
//!   flow-conservation violations (dropped packets).
//!
//! Restarts are bounded; a persistently mismatching construction halts the
//! mechanism, which (per §4.3's assumption that non-progress carries a
//! strong negative value) is the construction-phase punishment.

use crate::codec::{BankPayload, MirrorHashes, PrincipalObservation};
use crate::node::FMsg;
use specfaith_core::id::NodeId;
use specfaith_core::money::Money;
use specfaith_crypto::auth::ChannelKey;
use specfaith_crypto::sha256::Digest;
use specfaith_graph::topology::Topology;
use specfaith_netsim::{Actor, Ctx};
use std::collections::BTreeMap;

/// Where the bank is in its checkpointing lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BankState {
    /// Waiting for the construction phase to go quiet.
    AwaitConstruction,
    /// Hash requests sent; waiting for reports.
    AwaitHashes,
    /// Hashes agreed under an execution hold: construction is certified
    /// but the green light is withheld until the streaming engine calls
    /// [`BankNode::request_execution`] (or re-enters certification via
    /// [`BankNode::begin_recertification`]).
    Certified,
    /// Execution green-lighted; waiting for traffic to finish.
    Executing,
    /// Report requests sent; waiting for payment/observation reports.
    AwaitReports,
    /// Settlement done (or mechanism halted).
    Done,
}

/// Final settlement computed by the bank.
#[derive(Clone, Debug)]
pub struct Settlement {
    /// Net money transferred to each node (payments received − paid).
    pub transfers: Vec<Money>,
    /// Penalty charged to each node.
    pub penalties: Vec<Money>,
    /// Packets delivered, credited per originating node.
    pub delivered_by_src: Vec<u64>,
}

struct HashReportData {
    own_routing: Digest,
    own_pricing: Digest,
    mirrors: Vec<MirrorHashes>,
}

/// A node's payment report as stored by the bank: `(owed, originated)`.
type PaymentReportData = (Vec<(u32, i64)>, Vec<(u32, u64)>);

/// The bank actor. Lives at node id `n` (one past the topology), with an
/// overlay link to every node.
pub struct BankNode {
    topology: Topology,
    keys: Vec<ChannelKey>,
    node_last_seq: Vec<u64>,
    send_seq: u64,
    state: BankState,
    max_restarts: u32,
    epsilon: Money,
    hash_reports: BTreeMap<NodeId, HashReportData>,
    payment_reports: BTreeMap<NodeId, PaymentReportData>,
    observations: BTreeMap<NodeId, Vec<PrincipalObservation>>,
    restarts: u32,
    halted: bool,
    green_lighted: bool,
    auth_failures: u64,
    mismatched: Vec<NodeId>,
    outcome: Option<Settlement>,
    /// Streaming mode: park in `BankState::Certified` after a successful
    /// hash comparison instead of broadcasting the green light.
    hold_execution: bool,
    /// Set by [`BankNode::request_execution`]; the next quiescence in
    /// `BankState::Certified` broadcasts the green light.
    resume_requested: bool,
}

impl std::fmt::Debug for BankNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BankNode(state={:?}, restarts={}, halted={})",
            self.state, self.restarts, self.halted
        )
    }
}

impl BankNode {
    /// Creates the bank for `topology`, holding one channel key per node.
    pub fn new(topology: Topology, bank_secret: &[u8], max_restarts: u32, epsilon: Money) -> Self {
        let n = topology.num_nodes();
        let keys = (0..n as u32)
            .map(|id| ChannelKey::derive(bank_secret, id))
            .collect();
        BankNode {
            topology,
            keys,
            node_last_seq: vec![0; n],
            send_seq: 0,
            state: BankState::AwaitConstruction,
            max_restarts,
            epsilon,
            hash_reports: BTreeMap::new(),
            payment_reports: BTreeMap::new(),
            observations: BTreeMap::new(),
            restarts: 0,
            halted: false,
            green_lighted: false,
            auth_failures: 0,
            mismatched: Vec::new(),
            outcome: None,
            hold_execution: false,
            resume_requested: false,
        }
    }

    /// Puts the bank in streaming mode: a successful hash comparison parks
    /// it in `BankState::Certified` (green-lighted, but no green-light
    /// broadcast) so the engine can stream topology events against the
    /// certified fixed point before releasing execution.
    #[must_use]
    pub fn with_execution_hold(mut self) -> Self {
        self.hold_execution = true;
        self
    }

    /// Re-enters certification after a streamed event: clears collected
    /// hash reports and the green light, and re-arms the checkpoint state
    /// machine. The next quiescence re-requests hashes from every node;
    /// agreement re-certifies (parking in `BankState::Certified` again),
    /// disagreement follows the ordinary restart-then-halt path.
    ///
    /// Only meaningful from `BankState::Certified`; a no-op otherwise
    /// (in particular after a halt).
    pub fn begin_recertification(&mut self) {
        if self.state != BankState::Certified {
            return;
        }
        self.hash_reports.clear();
        self.green_lighted = false;
        self.state = BankState::AwaitConstruction;
    }

    /// Asks a certified, held bank to broadcast the green light at the next
    /// quiescence, releasing the execution phase.
    pub fn request_execution(&mut self) {
        self.resume_requested = true;
    }

    /// Times the construction phase was restarted.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Whether the mechanism was halted (restart budget exhausted).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether execution was green-lighted.
    pub fn green_lighted(&self) -> bool {
        self.green_lighted
    }

    /// MAC/codec verification failures on inbound envelopes.
    pub fn auth_failures(&self) -> u64 {
        self.auth_failures
    }

    /// Principals whose hash comparison failed in the last check.
    pub fn mismatched_principals(&self) -> &[NodeId] {
        &self.mismatched
    }

    /// The settlement, once computed.
    pub fn outcome(&self) -> Option<&Settlement> {
        self.outcome.as_ref()
    }

    fn broadcast(&mut self, ctx: &mut Ctx<'_, FMsg>, payload: &BankPayload) {
        let bytes = payload.encode();
        self.send_seq += 1;
        for node in self.topology.nodes() {
            let env = self.keys[node.index()].seal(self.send_seq, bytes.clone());
            ctx.send(node, FMsg::Bank(env));
        }
    }

    fn send_one(&mut self, ctx: &mut Ctx<'_, FMsg>, node: NodeId, payload: &BankPayload) {
        self.send_seq += 1;
        let env = self.keys[node.index()].seal(self.send_seq, payload.encode());
        ctx.send(node, FMsg::Bank(env));
    }

    /// \[BANK1\] + \[BANK2\]: for every principal, its own hashes, every
    /// checker's announced-table hashes, and every checker's recomputed
    /// mirror hashes must all agree. Returns the mismatching principals.
    fn evaluate_hashes(&self) -> Vec<NodeId> {
        let mut bad = Vec::new();
        for principal in self.topology.nodes() {
            let Some(own) = self.hash_reports.get(&principal) else {
                bad.push(principal);
                continue;
            };
            let mut ok = true;
            for checker in self.topology.neighbors(principal) {
                let Some(report) = self.hash_reports.get(checker) else {
                    ok = false;
                    break;
                };
                let Some(mirror) = report.mirrors.iter().find(|m| m.principal == principal) else {
                    ok = false;
                    break;
                };
                if mirror.announced_routing != own.own_routing
                    || mirror.recomputed_routing != own.own_routing
                    || mirror.announced_pricing != own.own_pricing
                    || mirror.recomputed_pricing != own.own_pricing
                {
                    ok = false;
                    break;
                }
            }
            if !ok {
                bad.push(principal);
            }
        }
        bad
    }

    /// Execution settlement from checker observations and payment reports.
    fn settle(&self) -> Settlement {
        let n = self.topology.num_nodes();
        let mut transfers = vec![Money::ZERO; n];
        let mut penalties = vec![Money::ZERO; n];
        let mut delivered_by_src = vec![0u64; n];

        // Aggregate checker observations per principal.
        // observed_originated[(P, dst)] = packets P injected (first hop).
        let mut observed_originated: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        // flow_in[(P, src, dst)] / flow_out[(P, src, dst)] for transit P.
        let mut flow_in: BTreeMap<(u32, u32, u32), u64> = BTreeMap::new();
        let mut flow_out: BTreeMap<(u32, u32, u32), u64> = BTreeMap::new();
        // Mirror prices per principal, from its lowest-id checker (all
        // checkers' mirrors are hash-certified equal).
        let mut mirror_prices: BTreeMap<u32, BTreeMap<(u32, u32), i64>> = BTreeMap::new();
        let mut declared_costs: BTreeMap<u32, u64> = BTreeMap::new();

        for (&checker, observations) in &self.observations {
            for obs in observations {
                let p = obs.principal;
                declared_costs.entry(p).or_insert(obs.declared_cost);
                mirror_prices.entry(p).or_insert_with(|| {
                    obs.mirror_prices
                        .iter()
                        .map(|&(d, k, v)| ((d, k), v))
                        .collect()
                });
                for &(src, dst, count) in &obs.recv_from {
                    if src == p {
                        *observed_originated.entry((p, dst)).or_insert(0) += count;
                    } else {
                        *flow_out.entry((p, src, dst)).or_insert(0) += count;
                    }
                }
                for &(src, dst, count) in &obs.sent_to {
                    if dst == p {
                        // Final-hop arrival at p: credit the source.
                        delivered_by_src[src as usize] += count;
                    } else if src != p {
                        *flow_in.entry((p, src, dst)).or_insert(0) += count;
                    }
                }
                let _ = checker;
            }
        }

        // Expected payments: observed originated × certified mirror prices.
        let mut expected_owed: BTreeMap<(u32, u32), i64> = BTreeMap::new();
        for (&(p, dst), &count) in &observed_originated {
            if let Some(prices) = mirror_prices.get(&p) {
                for (&(d, k), &price) in prices {
                    if d == dst {
                        *expected_owed.entry((p, k)).or_insert(0) += price * count as i64;
                    }
                }
            }
        }

        // Transfers: the bank enforces the *expected* amounts.
        for (&(payer, payee), &amount) in &expected_owed {
            transfers[payer as usize] -= Money::new(amount);
            transfers[payee as usize] += Money::new(amount);
        }

        // Penalty 1: payment misreports (|reported − expected| + ε).
        for node in self.topology.nodes() {
            let reported: BTreeMap<u32, i64> = self
                .payment_reports
                .get(&node)
                .map(|(owed, _)| owed.iter().copied().collect())
                .unwrap_or_default();
            let mut discrepancy = 0i64;
            let mut payees: std::collections::BTreeSet<u32> = reported.keys().copied().collect();
            for &(payer, payee) in expected_owed.keys() {
                if payer == node.raw() {
                    payees.insert(payee);
                }
            }
            for payee in payees {
                let expected = expected_owed
                    .get(&(node.raw(), payee))
                    .copied()
                    .unwrap_or(0);
                let claimed = reported.get(&payee).copied().unwrap_or(0);
                discrepancy += (expected - claimed).abs();
            }
            if discrepancy > 0 {
                penalties[node.index()] += Money::new(discrepancy) + self.epsilon;
            }
        }

        // Penalty 2: flow-conservation violations (dropped transit
        // packets): dropped × declared cost + ε.
        for node in self.topology.nodes() {
            let p = node.raw();
            let mut dropped = 0u64;
            for (&(q, src, dst), &inflow) in &flow_in {
                if q != p {
                    continue;
                }
                let outflow = flow_out.get(&(p, src, dst)).copied().unwrap_or(0);
                dropped += inflow.saturating_sub(outflow);
            }
            if dropped > 0 {
                let declared = declared_costs.get(&p).copied().unwrap_or(0);
                penalties[node.index()] += Money::new((dropped * declared) as i64) + self.epsilon;
            }
        }

        Settlement {
            transfers,
            penalties,
            delivered_by_src,
        }
    }

    fn handle_envelope(&mut self, env: &specfaith_crypto::auth::Authenticated) {
        let sender = env.sender as usize;
        if sender >= self.keys.len() {
            self.auth_failures += 1;
            return;
        }
        let bytes = match self.keys[sender].open(env, self.node_last_seq[sender]) {
            Ok(bytes) => {
                self.node_last_seq[sender] = env.sequence;
                bytes
            }
            Err(_) => {
                self.auth_failures += 1;
                return;
            }
        };
        let Ok(payload) = BankPayload::decode(&bytes) else {
            self.auth_failures += 1;
            return;
        };
        let node = NodeId::new(env.sender);
        match payload {
            BankPayload::HashReport {
                own_routing,
                own_pricing,
                mirrors,
            } => {
                self.hash_reports.insert(
                    node,
                    HashReportData {
                        own_routing,
                        own_pricing,
                        mirrors,
                    },
                );
            }
            BankPayload::PaymentReport { owed, originated } => {
                self.payment_reports.insert(node, (owed, originated));
            }
            BankPayload::ObservationReport { principals } => {
                self.observations.insert(node, principals);
            }
            // Bank-originated payloads arriving at the bank are protocol
            // violations.
            _ => self.auth_failures += 1,
        }
    }
}

impl Actor for BankNode {
    type Msg = FMsg;

    fn on_message(&mut self, _ctx: &mut Ctx<'_, FMsg>, _from: NodeId, msg: FMsg) {
        match msg {
            FMsg::Bank(env) => self.handle_envelope(&env),
            // Only bank-channel traffic is addressed to the bank.
            _ => self.auth_failures += 1,
        }
    }

    fn observes_quiescence(&self) -> bool {
        true
    }

    fn on_quiescence(&mut self, ctx: &mut Ctx<'_, FMsg>) {
        match self.state {
            BankState::AwaitConstruction => {
                self.broadcast(ctx, &BankPayload::RequestHashes);
                self.state = BankState::AwaitHashes;
            }
            BankState::AwaitHashes => {
                self.mismatched = self.evaluate_hashes();
                if self.mismatched.is_empty() {
                    self.green_lighted = true;
                    if self.hold_execution {
                        // Streaming: certified, but execution stays parked
                        // until the engine asks for it.
                        self.state = BankState::Certified;
                    } else {
                        self.broadcast(ctx, &BankPayload::GreenLight);
                        self.state = BankState::Executing;
                    }
                } else if self.restarts < self.max_restarts {
                    self.restarts += 1;
                    self.hash_reports.clear();
                    self.broadcast(ctx, &BankPayload::Restart);
                    self.state = BankState::AwaitConstruction;
                } else {
                    self.halted = true;
                    self.state = BankState::Done;
                }
            }
            BankState::Certified => {
                if self.resume_requested {
                    self.resume_requested = false;
                    self.broadcast(ctx, &BankPayload::GreenLight);
                    self.state = BankState::Executing;
                }
            }
            BankState::Executing => {
                self.broadcast(ctx, &BankPayload::RequestReports);
                self.state = BankState::AwaitReports;
            }
            BankState::AwaitReports => {
                let settlement = self.settle();
                for node in self.topology.nodes().collect::<Vec<_>>() {
                    let payload = BankPayload::Settle {
                        net_transfer: settlement.transfers[node.index()].value(),
                        penalty: settlement.penalties[node.index()].value(),
                    };
                    self.send_one(ctx, node, &payload);
                }
                self.outcome = Some(settlement);
                self.state = BankState::Done;
            }
            BankState::Done => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaith_graph::generators::ring;

    fn bank() -> BankNode {
        BankNode::new(ring(3), b"secret", 2, Money::new(1))
    }

    #[test]
    fn rejects_bad_macs() {
        let mut b = bank();
        let key = ChannelKey::derive(b"wrong-secret", 0);
        let env = key.seal(1, BankPayload::RequestHashes.encode());
        b.handle_envelope(&env);
        assert_eq!(b.auth_failures(), 1);
    }

    #[test]
    fn rejects_replays() {
        let mut b = bank();
        let key = ChannelKey::derive(b"secret", 0);
        let env = key.seal(
            1,
            BankPayload::PaymentReport {
                owed: vec![],
                originated: vec![],
            }
            .encode(),
        );
        b.handle_envelope(&env);
        assert_eq!(b.auth_failures(), 0);
        b.handle_envelope(&env);
        assert_eq!(b.auth_failures(), 1, "replay rejected");
    }

    #[test]
    fn rejects_tampered_payloads() {
        let mut b = bank();
        let key = ChannelKey::derive(b"secret", 0);
        let mut env = key.seal(
            1,
            BankPayload::PaymentReport {
                owed: vec![(1, 100)],
                originated: vec![],
            }
            .encode(),
        );
        // A transit node flips a byte of the report.
        let last = env.payload.len() - 1;
        env.payload[last] ^= 0xff;
        b.handle_envelope(&env);
        assert_eq!(b.auth_failures(), 1);
        assert!(b.payment_reports.is_empty());
    }

    #[test]
    fn rejects_out_of_range_senders() {
        let mut b = bank();
        let key = ChannelKey::derive(b"secret", 99);
        let env = key.seal(1, BankPayload::RequestHashes.encode());
        b.handle_envelope(&env);
        assert_eq!(b.auth_failures(), 1);
    }

    #[test]
    fn missing_hash_reports_count_as_mismatch() {
        let b = bank();
        let bad = b.evaluate_hashes();
        assert_eq!(bad.len(), 3, "no reports at all: everyone mismatches");
    }
}
