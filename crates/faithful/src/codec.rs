//! Canonical byte encoding of bank payloads.
//!
//! The bank channel is MAC-authenticated ([`specfaith_crypto::auth`]), and
//! a MAC signs *bytes*, so every bank payload needs a canonical encoding.
//! The format is deliberately simple: a one-byte message tag, fixed-width
//! big-endian integers, and `u32` length prefixes for sequences. Decoding
//! is strict — trailing bytes, truncation, or unknown tags are errors —
//! because a deviant transit node tampering with an envelope must never
//! produce a different *valid* payload.

use specfaith_core::id::NodeId;
use specfaith_crypto::sha256::Digest;
use std::fmt;

/// Hashes reported by one node for one principal it checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MirrorHashes {
    /// The principal being checked.
    pub principal: NodeId,
    /// Hash of the principal's routing table as *announced* to this
    /// checker.
    pub announced_routing: Digest,
    /// Hash of the principal's pricing table as announced.
    pub announced_pricing: Digest,
    /// Hash of the routing table this checker *recomputed* from the
    /// principal's forwarded inputs.
    pub recomputed_routing: Digest,
    /// Hash of the recomputed pricing table (including identity tags).
    pub recomputed_pricing: Digest,
}

/// A checker's execution-phase observations about one principal.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PrincipalObservation {
    /// The observed principal (raw id; set by the codec round-trip).
    pub principal: u32,
    /// The principal's declared transit cost (from DATA1).
    pub declared_cost: u64,
    /// Packets this checker handed to the principal: `(src, dst, count)`.
    pub sent_to: Vec<(u32, u32, u64)>,
    /// Packets this checker received from the principal.
    pub recv_from: Vec<(u32, u32, u64)>,
    /// The principal's mirror pricing rows `(dst, transit, price)`.
    pub mirror_prices: Vec<(u32, u32, i64)>,
}

/// Payloads exchanged on the authenticated node↔bank channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BankPayload {
    /// Bank → nodes: report your table hashes (\[BANK1\]/\[BANK2\]).
    RequestHashes,
    /// Node → bank: own table hashes plus one [`MirrorHashes`] per
    /// checked principal.
    HashReport {
        /// Hash of the node's own routing table.
        own_routing: Digest,
        /// Hash of the node's own pricing table.
        own_pricing: Digest,
        /// Mirror hashes for each neighbor this node checks.
        mirrors: Vec<MirrorHashes>,
    },
    /// Bank → nodes: construction failed verification; restart the phase.
    Restart,
    /// Bank → nodes: construction certified; begin the execution phase.
    GreenLight,
    /// Bank → nodes: execution finished; report payments & observations.
    RequestReports,
    /// Node → bank: \[DATA4\] payment report plus originated traffic.
    PaymentReport {
        /// `(payee, amount)` as reported (possibly manipulated).
        owed: Vec<(u32, i64)>,
        /// `(dst, packets)` this node claims to have originated.
        originated: Vec<(u32, u64)>,
    },
    /// Node → bank: checker observations for every checked principal.
    ObservationReport {
        /// One observation record per checked principal.
        principals: Vec<PrincipalObservation>,
    },
    /// Bank → node: settlement result (net transfer and penalty).
    Settle {
        /// Net money transferred to the node (negative = node pays).
        net_transfer: i64,
        /// Penalty charged for detected deviations.
        penalty: i64,
    },
}

/// Decoding failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the payload was complete.
    Truncated,
    /// Unknown message tag.
    UnknownTag(u8),
    /// Bytes remained after a complete payload.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("payload truncated"),
            CodecError::UnknownTag(t) => write!(f, "unknown payload tag {t:#04x}"),
            CodecError::TrailingBytes => f.write_str("trailing bytes after payload"),
        }
    }
}

impl std::error::Error for CodecError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(tag: u8) -> Self {
        Writer { buf: vec![tag] }
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn digest(&mut self, d: &Digest) {
        self.buf.extend_from_slice(d.as_bytes());
    }
    fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("sequence too long"));
    }
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn digest(&mut self) -> Result<Digest, CodecError> {
        Ok(Digest(self.take(32)?.try_into().expect("32")))
    }
    fn len(&mut self) -> Result<usize, CodecError> {
        Ok(self.u32()? as usize)
    }
}

const TAG_REQUEST_HASHES: u8 = 1;
const TAG_HASH_REPORT: u8 = 2;
const TAG_RESTART: u8 = 3;
const TAG_GREEN_LIGHT: u8 = 4;
const TAG_REQUEST_REPORTS: u8 = 5;
const TAG_PAYMENT_REPORT: u8 = 6;
const TAG_OBSERVATION_REPORT: u8 = 7;
const TAG_SETTLE: u8 = 8;

impl BankPayload {
    /// Encodes the payload to canonical bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            BankPayload::RequestHashes => Writer::new(TAG_REQUEST_HASHES).buf,
            BankPayload::Restart => Writer::new(TAG_RESTART).buf,
            BankPayload::GreenLight => Writer::new(TAG_GREEN_LIGHT).buf,
            BankPayload::RequestReports => Writer::new(TAG_REQUEST_REPORTS).buf,
            BankPayload::HashReport {
                own_routing,
                own_pricing,
                mirrors,
            } => {
                let mut w = Writer::new(TAG_HASH_REPORT);
                w.digest(own_routing);
                w.digest(own_pricing);
                w.len(mirrors.len());
                for m in mirrors {
                    w.u32(m.principal.raw());
                    w.digest(&m.announced_routing);
                    w.digest(&m.announced_pricing);
                    w.digest(&m.recomputed_routing);
                    w.digest(&m.recomputed_pricing);
                }
                w.buf
            }
            BankPayload::PaymentReport { owed, originated } => {
                let mut w = Writer::new(TAG_PAYMENT_REPORT);
                w.len(owed.len());
                for &(to, amount) in owed {
                    w.u32(to);
                    w.i64(amount);
                }
                w.len(originated.len());
                for &(dst, packets) in originated {
                    w.u32(dst);
                    w.u64(packets);
                }
                w.buf
            }
            BankPayload::ObservationReport { principals } => {
                let mut w = Writer::new(TAG_OBSERVATION_REPORT);
                w.len(principals.len());
                for p in principals {
                    w.u32(p.principal);
                    w.u64(p.declared_cost);
                    w.len(p.sent_to.len());
                    for &(s, d, c) in &p.sent_to {
                        w.u32(s);
                        w.u32(d);
                        w.u64(c);
                    }
                    w.len(p.recv_from.len());
                    for &(s, d, c) in &p.recv_from {
                        w.u32(s);
                        w.u32(d);
                        w.u64(c);
                    }
                    w.len(p.mirror_prices.len());
                    for &(dst, k, price) in &p.mirror_prices {
                        w.u32(dst);
                        w.u32(k);
                        w.i64(price);
                    }
                }
                w.buf
            }
            BankPayload::Settle {
                net_transfer,
                penalty,
            } => {
                let mut w = Writer::new(TAG_SETTLE);
                w.i64(*net_transfer);
                w.i64(*penalty);
                w.buf
            }
        }
    }

    /// Decodes canonical bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncation, unknown tags, or trailing
    /// bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader { buf: bytes };
        let payload = match r.u8()? {
            TAG_REQUEST_HASHES => BankPayload::RequestHashes,
            TAG_RESTART => BankPayload::Restart,
            TAG_GREEN_LIGHT => BankPayload::GreenLight,
            TAG_REQUEST_REPORTS => BankPayload::RequestReports,
            TAG_HASH_REPORT => {
                let own_routing = r.digest()?;
                let own_pricing = r.digest()?;
                let count = r.len()?;
                let mut mirrors = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    mirrors.push(MirrorHashes {
                        principal: NodeId::new(r.u32()?),
                        announced_routing: r.digest()?,
                        announced_pricing: r.digest()?,
                        recomputed_routing: r.digest()?,
                        recomputed_pricing: r.digest()?,
                    });
                }
                BankPayload::HashReport {
                    own_routing,
                    own_pricing,
                    mirrors,
                }
            }
            TAG_PAYMENT_REPORT => {
                let count = r.len()?;
                let mut owed = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    owed.push((r.u32()?, r.i64()?));
                }
                let count = r.len()?;
                let mut originated = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    originated.push((r.u32()?, r.u64()?));
                }
                BankPayload::PaymentReport { owed, originated }
            }
            TAG_OBSERVATION_REPORT => {
                let count = r.len()?;
                let mut principals = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let principal = r.u32()?;
                    let declared_cost = r.u64()?;
                    let mut sent_to = Vec::new();
                    for _ in 0..r.len()? {
                        sent_to.push((r.u32()?, r.u32()?, r.u64()?));
                    }
                    let mut recv_from = Vec::new();
                    for _ in 0..r.len()? {
                        recv_from.push((r.u32()?, r.u32()?, r.u64()?));
                    }
                    let mut mirror_prices = Vec::new();
                    for _ in 0..r.len()? {
                        mirror_prices.push((r.u32()?, r.u32()?, r.i64()?));
                    }
                    principals.push(PrincipalObservation {
                        principal,
                        declared_cost,
                        sent_to,
                        recv_from,
                        mirror_prices,
                    });
                }
                BankPayload::ObservationReport { principals }
            }
            TAG_SETTLE => BankPayload::Settle {
                net_transfer: r.i64()?,
                penalty: r.i64()?,
            },
            other => return Err(CodecError::UnknownTag(other)),
        };
        if !r.buf.is_empty() {
            return Err(CodecError::TrailingBytes);
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaith_crypto::sha256::sha256;

    fn digest(s: &str) -> Digest {
        sha256(s.as_bytes())
    }

    fn roundtrip(payload: BankPayload) {
        let bytes = payload.encode();
        assert_eq!(BankPayload::decode(&bytes), Ok(payload));
    }

    #[test]
    fn simple_payloads_roundtrip() {
        roundtrip(BankPayload::RequestHashes);
        roundtrip(BankPayload::Restart);
        roundtrip(BankPayload::GreenLight);
        roundtrip(BankPayload::RequestReports);
        roundtrip(BankPayload::Settle {
            net_transfer: -42,
            penalty: 7,
        });
    }

    #[test]
    fn hash_report_roundtrips() {
        roundtrip(BankPayload::HashReport {
            own_routing: digest("r"),
            own_pricing: digest("p"),
            mirrors: vec![MirrorHashes {
                principal: NodeId::new(3),
                announced_routing: digest("ar"),
                announced_pricing: digest("ap"),
                recomputed_routing: digest("rr"),
                recomputed_pricing: digest("rp"),
            }],
        });
    }

    #[test]
    fn payment_report_roundtrips() {
        roundtrip(BankPayload::PaymentReport {
            owed: vec![(1, 100), (2, -5)],
            originated: vec![(4, 9)],
        });
    }

    #[test]
    fn observation_report_roundtrips() {
        roundtrip(BankPayload::ObservationReport {
            principals: vec![PrincipalObservation {
                principal: 2,
                declared_cost: 7,
                sent_to: vec![(0, 4, 3)],
                recv_from: vec![(0, 4, 3), (1, 4, 1)],
                mirror_prices: vec![(4, 2, 105)],
            }],
        });
    }

    #[test]
    fn truncation_is_an_error() {
        let bytes = BankPayload::Settle {
            net_transfer: 1,
            penalty: 2,
        }
        .encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                BankPayload::decode(&bytes[..cut]),
                Err(CodecError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = BankPayload::GreenLight.encode();
        bytes.push(0);
        assert_eq!(BankPayload::decode(&bytes), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn unknown_tag_is_an_error() {
        assert_eq!(
            BankPayload::decode(&[0xff]),
            Err(CodecError::UnknownTag(0xff))
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn payment_reports_roundtrip(
            owed in proptest::collection::vec((any::<u32>(), any::<i64>()), 0..20),
            originated in proptest::collection::vec((any::<u32>(), any::<u64>()), 0..20),
        ) {
            let payload = BankPayload::PaymentReport { owed, originated };
            prop_assert_eq!(BankPayload::decode(&payload.encode()), Ok(payload));
        }

        #[test]
        fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = BankPayload::decode(&bytes);
        }
    }
}
