//! Checker mirrors: the redundancy that makes catch-and-punish possible.
//!
//! A checker of principal `P` maintains:
//!
//! * a **recomputed mirror** — an [`FpssCore`] with `me = P`, fed by the
//!   checker's own messages to `P` and by forwarded copies of what `P`
//!   received from its other neighbors (\[PRINC1\]/\[PRINC2\]); running the
//!   same pure recompute functions as `P` itself should;
//! * the **announced tables** — what `P` actually announced to this
//!   checker, accumulated row by row;
//! * execution-phase **flow counters** — packets handed to and received
//!   from `P`, keyed by `(src, dst)`.
//!
//! At checkpoint time the bank compares, for each principal: `P`'s own
//! hash, every checker's announced-table hash, and every checker's
//! recomputed-mirror hash. Any lie — miscomputation, selective
//! announcements, dropped or tampered forwards, spoofed inputs — breaks at
//! least one of those equalities (tested exhaustively in the harness).

use specfaith_core::id::NodeId;
use specfaith_core::money::Cost;
use specfaith_fpss::msg::{FpssMsg, PriceRow, RouteRow};
use specfaith_fpss::node::FpssCore;
use specfaith_fpss::state::{PriceEntry, PricingTable, RoutingTable};
use std::collections::BTreeMap;

/// A checker's complete view of one principal.
#[derive(Clone, Debug)]
pub struct Mirror {
    /// Who is being checked.
    principal: NodeId,
    /// This checker's own id.
    checker: NodeId,
    /// The recomputed mirror core (me = principal).
    core: FpssCore,
    /// The principal's routing table as announced to this checker.
    announced_routing: RoutingTable,
    /// The principal's pricing table as announced (with tags).
    announced_pricing: PricingTable,
    /// Packets this checker handed to the principal, per `(src, dst)`.
    sent_to: BTreeMap<(NodeId, NodeId), u64>,
    /// Packets this checker received from the principal, per `(src, dst)`.
    recv_from: BTreeMap<(NodeId, NodeId), u64>,
}

impl Mirror {
    /// Creates a mirror of `principal` (with its neighbor list, which is
    /// semi-private information shared among its checkers) held by
    /// `checker`.
    pub fn new(checker: NodeId, principal: NodeId, principal_neighbors: Vec<NodeId>) -> Self {
        Mirror {
            principal,
            checker,
            core: FpssCore::new(principal, principal_neighbors),
            announced_routing: RoutingTable::new(),
            announced_pricing: PricingTable::new(),
            sent_to: BTreeMap::new(),
            recv_from: BTreeMap::new(),
        }
    }

    /// The checked principal.
    pub fn principal(&self) -> NodeId {
        self.principal
    }

    /// Feeds a transit-cost declaration (mirrors share the global DATA1).
    pub fn learn_cost(&mut self, origin: NodeId, declared: Cost) {
        self.core.learn_cost(origin, declared);
    }

    /// Overwrites a transit-cost entry from a streamed
    /// [`FpssMsg::CostUpdate`] flood. Construction's first-write-wins
    /// [`Mirror::learn_cost`] would silently drop the new value; the
    /// checker must track the re-declaration or every post-event hash
    /// comparison against its principal would fail.
    pub fn update_cost(&mut self, origin: NodeId, declared: Cost) {
        self.core.update_cost(origin, declared);
    }

    /// Feeds a message this checker itself sent to the principal.
    pub fn record_own_send(&mut self, msg: &FpssMsg) {
        match msg {
            FpssMsg::RoutingUpdate { rows } => {
                for row in rows {
                    self.core.learn_route(self.checker, row);
                }
            }
            FpssMsg::PricingUpdate { rows, retractions } => {
                for row in rows {
                    self.core.learn_price(self.checker, row);
                }
                for &(dst, transit) in retractions {
                    self.core.learn_price_retraction(self.checker, dst, transit);
                }
            }
            FpssMsg::Data(pkt) => {
                *self.sent_to.entry((pkt.src, pkt.dst)).or_insert(0) += 1;
            }
            // Cost floods reach this mirror through the holder's own
            // learn_cost/update_cost calls, not through sends to the
            // principal.
            FpssMsg::CostAnnounce { .. } | FpssMsg::CostUpdate { .. } => {}
        }
    }

    /// Feeds a forwarded copy: the principal claims to have received
    /// `inner` from `original_from`. Returns `false` when the copy is
    /// rejected:
    ///
    /// * `original_from` is not a neighbor of the principal (it could not
    ///   have sent anything) — the \[CHECK2\] provenance rule;
    /// * `original_from` is this checker itself — the checker trusts its
    ///   own record of what it sent, which is exactly what makes spoofing
    ///   "from" a checker detectable (the victim checker's mirror will
    ///   disagree with the others').
    pub fn feed_forwarded(&mut self, original_from: NodeId, inner: &FpssMsg) -> bool {
        if original_from == self.checker || !self.core.neighbors().contains(&original_from) {
            return false;
        }
        match inner {
            FpssMsg::RoutingUpdate { rows } => {
                for row in rows {
                    self.core.learn_route(original_from, row);
                }
            }
            FpssMsg::PricingUpdate { rows, retractions } => {
                for row in rows {
                    self.core.learn_price(original_from, row);
                }
                for &(dst, transit) in retractions {
                    self.core
                        .learn_price_retraction(original_from, dst, transit);
                }
            }
            _ => return false,
        }
        true
    }

    /// Records routing rows the principal announced to this checker.
    pub fn record_announced_routing(&mut self, rows: &[RouteRow]) {
        for row in rows {
            if row.path.first() == Some(&self.principal) {
                self.announced_routing.install(row.dst, row.path.clone());
            }
        }
    }

    /// Records pricing rows and retractions the principal announced to
    /// this checker.
    pub fn record_announced_pricing(
        &mut self,
        rows: &[PriceRow],
        retractions: &[(NodeId, NodeId)],
    ) {
        for row in rows {
            self.announced_pricing.insert(
                row.dst,
                row.transit,
                PriceEntry {
                    price: row.price,
                    tags: row.tags.clone(),
                },
            );
        }
        for &(dst, transit) in retractions {
            self.announced_pricing.remove(dst, transit);
        }
    }

    /// Records a packet received from the principal.
    pub fn record_packet_from_principal(&mut self, src: NodeId, dst: NodeId) {
        *self.recv_from.entry((src, dst)).or_insert(0) += 1;
    }

    /// Runs the mirror recomputation, bringing the recomputed tables up to
    /// date with all fed inputs. Called before hashing or reporting.
    pub fn recompute(&mut self) {
        let _ = self.core.recompute();
    }

    /// The recomputed routing table.
    pub fn recomputed_routing(&self) -> &RoutingTable {
        self.core.routes()
    }

    /// The recomputed pricing table.
    pub fn recomputed_pricing(&self) -> &PricingTable {
        self.core.prices()
    }

    /// The announced routing table.
    pub fn announced_routing(&self) -> &RoutingTable {
        &self.announced_routing
    }

    /// The announced pricing table.
    pub fn announced_pricing(&self) -> &PricingTable {
        &self.announced_pricing
    }

    /// The declared cost of the principal, once known from the flood.
    pub fn principal_declared_cost(&self) -> Option<Cost> {
        self.core.data1().declared(self.principal)
    }

    /// Execution-phase flows handed to the principal.
    pub fn flows_sent_to(&self) -> &BTreeMap<(NodeId, NodeId), u64> {
        &self.sent_to
    }

    /// Execution-phase flows received from the principal.
    pub fn flows_recv_from(&self) -> &BTreeMap<(NodeId, NodeId), u64> {
        &self.recv_from
    }

    /// Resets construction state for a phase restart (execution counters
    /// are kept — restarts only happen before execution).
    pub fn reset_construction(&mut self) {
        let neighbors = self.core.neighbors().to_vec();
        self.core = FpssCore::new(self.principal, neighbors);
        self.announced_routing = RoutingTable::new();
        self.announced_pricing = PricingTable::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaith_core::money::Money;
    use specfaith_fpss::msg::Packet;
    use std::collections::BTreeSet;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// checker 0 mirrors principal 1 whose neighbors are {0, 2}.
    fn mirror() -> Mirror {
        Mirror::new(n(0), n(1), vec![n(0), n(2)])
    }

    #[test]
    fn rejects_forwards_claiming_to_be_from_self() {
        let mut m = mirror();
        let msg = FpssMsg::RoutingUpdate {
            rows: vec![RouteRow {
                dst: n(3),
                path: vec![n(0), n(3)],
            }],
        };
        assert!(!m.feed_forwarded(n(0), &msg), "own-origin copies rejected");
    }

    #[test]
    fn rejects_forwards_from_non_neighbors_of_principal() {
        let mut m = mirror();
        let msg = FpssMsg::RoutingUpdate {
            rows: vec![RouteRow {
                dst: n(3),
                path: vec![n(9), n(3)],
            }],
        };
        assert!(!m.feed_forwarded(n(9), &msg), "9 is not P's neighbor");
    }

    #[test]
    fn accepts_forwards_from_other_checkers() {
        let mut m = mirror();
        let msg = FpssMsg::RoutingUpdate {
            rows: vec![RouteRow {
                dst: n(3),
                path: vec![n(2), n(3)],
            }],
        };
        assert!(m.feed_forwarded(n(2), &msg));
    }

    #[test]
    fn mirror_recomputes_principals_routes() {
        let mut m = mirror();
        for (id, c) in [(0u32, 4), (1, 0), (2, 1), (3, 0)] {
            m.learn_cost(n(id), Cost::new(c));
        }
        // Checker 0 tells P it can reach 3 via [0,3]; neighbor 2 (via a
        // forward) claims [2,3].
        m.record_own_send(&FpssMsg::RoutingUpdate {
            rows: vec![RouteRow {
                dst: n(3),
                path: vec![n(0), n(3)],
            }],
        });
        m.feed_forwarded(
            n(2),
            &FpssMsg::RoutingUpdate {
                rows: vec![RouteRow {
                    dst: n(3),
                    path: vec![n(2), n(3)],
                }],
            },
        );
        m.recompute();
        // P should prefer via 2 (cost 1) over via 0 (cost 4).
        assert_eq!(
            m.recomputed_routing().path(n(3)),
            Some(&[n(1), n(2), n(3)][..])
        );
    }

    #[test]
    fn announced_tables_accumulate() {
        let mut m = mirror();
        m.record_announced_routing(&[RouteRow {
            dst: n(3),
            path: vec![n(1), n(2), n(3)],
        }]);
        // Rows not starting at the principal are ignored (malformed).
        m.record_announced_routing(&[RouteRow {
            dst: n(4),
            path: vec![n(9), n(4)],
        }]);
        assert_eq!(
            m.announced_routing().path(n(3)),
            Some(&[n(1), n(2), n(3)][..])
        );
        assert_eq!(m.announced_routing().path(n(4)), None);

        m.record_announced_pricing(
            &[PriceRow {
                dst: n(3),
                transit: n(2),
                price: Money::new(5),
                tags: BTreeSet::new(),
            }],
            &[],
        );
        assert_eq!(m.announced_pricing().price(n(3), n(2)), Some(Money::new(5)));
        // A retraction removes the announced entry.
        m.record_announced_pricing(&[], &[(n(3), n(2))]);
        assert_eq!(m.announced_pricing().price(n(3), n(2)), None);
    }

    #[test]
    fn flow_counters_track_packets() {
        let mut m = mirror();
        m.record_own_send(&FpssMsg::Data(Packet {
            src: n(0),
            dst: n(3),
            hops: 0,
        }));
        m.record_own_send(&FpssMsg::Data(Packet {
            src: n(0),
            dst: n(3),
            hops: 0,
        }));
        m.record_packet_from_principal(n(2), n(0));
        assert_eq!(m.flows_sent_to().get(&(n(0), n(3))), Some(&2));
        assert_eq!(m.flows_recv_from().get(&(n(2), n(0))), Some(&1));
    }

    #[test]
    fn reset_clears_construction_but_keeps_flows() {
        let mut m = mirror();
        m.learn_cost(n(2), Cost::new(1));
        m.record_announced_routing(&[RouteRow {
            dst: n(3),
            path: vec![n(1), n(3)],
        }]);
        m.record_packet_from_principal(n(2), n(0));
        m.reset_construction();
        assert!(m.announced_routing().is_empty());
        assert_eq!(m.principal_declared_cost(), None);
        assert_eq!(m.flows_recv_from().len(), 1);
    }
}
