//! The faithful FPSS node: principal + checker roles behind one actor.
//!
//! Each topology node simultaneously:
//!
//! * runs the FPSS construction/execution protocol as a **principal**
//!   (reusing [`FpssCore`] and the same pure recompute functions as plain
//!   FPSS);
//! * forwards every construction message it receives to its checkers
//!   (\[PRINC1\]/\[PRINC2\] — through its strategy, which is where
//!   message-passing deviations live);
//! * maintains a [`Mirror`] of every neighbor, acting as their **checker**
//!   (\[CHECK1\]/\[CHECK2\]);
//! * answers the bank's signed requests: hash reports at checkpoints,
//!   payment/observation reports after execution.

use crate::checker::Mirror;
use crate::codec::{BankPayload, MirrorHashes, PrincipalObservation};
use specfaith_core::id::NodeId;
use specfaith_core::money::{Cost, Money};
use specfaith_crypto::auth::{Authenticated, ChannelKey};
use specfaith_fpss::deviation::RationalStrategy;
use specfaith_fpss::msg::{FpssMsg, Packet, PriceRow, RouteRow};
use specfaith_fpss::node::{FpssCore, StreamCommand, TAG_STREAM};
use specfaith_fpss::state::PaymentLedger;
use specfaith_netsim::{Actor, Ctx, Payload};
use std::collections::{BTreeMap, BTreeSet};

/// Messages of the faithful protocol.
#[derive(Clone, Debug)]
pub enum FMsg {
    /// A plain FPSS protocol message between neighbors.
    Fpss(FpssMsg),
    /// A copy of an inbound construction message, forwarded by a
    /// principal to its checkers (\[PRINC1\]/\[PRINC2\]).
    CheckerCopy {
        /// The neighbor the principal claims sent the original.
        original_from: NodeId,
        /// The (possibly tampered) copy.
        inner: FpssMsg,
    },
    /// A MAC-authenticated bank-channel envelope.
    Bank(Authenticated),
}

impl Payload for FMsg {
    /// Frozen wire-size formulas — the mechanism's overhead accounting and
    /// the byte-identical golden runs in `tests/network_models.rs` both
    /// build on them (see the wire-size contract in `specfaith_fpss::msg`).
    /// `CheckerCopy` adds a 4-byte claimed-sender id to the inner message;
    /// `Bank` counts sender id (4) + sequence (8) + HMAC tag (32) + the
    /// sealed payload bytes.
    fn size_bytes(&self) -> usize {
        match self {
            FMsg::Fpss(m) => m.size_bytes(),
            FMsg::CheckerCopy { inner, .. } => 4 + inner.size_bytes(),
            FMsg::Bank(env) => 4 + 8 + 32 + env.payload.len(),
        }
    }
}

/// The faithful node actor.
pub struct FaithfulNode {
    core: FpssCore,
    true_cost: Cost,
    declared: Option<Cost>,
    strategy: Box<dyn RationalStrategy>,
    mirrors: BTreeMap<NodeId, Mirror>,
    bank: NodeId,
    key: ChannelKey,
    send_seq: u64,
    last_bank_seq: u64,
    pending_traffic: Vec<(NodeId, u64)>,
    originated: BTreeMap<NodeId, u64>,
    delivered_from: BTreeMap<NodeId, u64>,
    carried: u64,
    dropped: u64,
    ledger: PaymentLedger,
    max_hops: u32,
    auth_failures: u64,
    settled: Option<(Money, Money)>,
    /// Highest [`FpssMsg::CostUpdate`] epoch seen per origin (including
    /// this node's own streamed re-declarations).
    cost_epochs: BTreeMap<NodeId, u64>,
    /// Engine-queued streaming commands, drained on [`TAG_STREAM`].
    stream_commands: Vec<StreamCommand>,
}

impl std::fmt::Debug for FaithfulNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FaithfulNode({}, strategy={})",
            self.core.me(),
            self.strategy.spec().name()
        )
    }
}

impl FaithfulNode {
    /// Creates a node.
    ///
    /// `neighbor_map` provides each neighbor's own neighbor list (the
    /// semi-private adjacency knowledge checkers hold about their
    /// principals).
    #[allow(clippy::too_many_arguments)] // node identity, knowledge, strategy, and bank wiring are all distinct concerns
    pub fn new(
        me: NodeId,
        neighbors: Vec<NodeId>,
        neighbor_map: BTreeMap<NodeId, Vec<NodeId>>,
        true_cost: Cost,
        strategy: Box<dyn RationalStrategy>,
        bank: NodeId,
        key: ChannelKey,
        max_hops: u32,
    ) -> Self {
        let mirrors = neighbors
            .iter()
            .map(|&p| {
                let p_neighbors = neighbor_map
                    .get(&p)
                    .expect("neighbor map covers all neighbors")
                    .clone();
                (p, Mirror::new(me, p, p_neighbors))
            })
            .collect();
        FaithfulNode {
            core: FpssCore::new(me, neighbors),
            true_cost,
            declared: None,
            strategy,
            mirrors,
            bank,
            key,
            send_seq: 0,
            last_bank_seq: 0,
            pending_traffic: Vec::new(),
            originated: BTreeMap::new(),
            delivered_from: BTreeMap::new(),
            carried: 0,
            dropped: 0,
            ledger: PaymentLedger::new(),
            max_hops,
            auth_failures: 0,
            settled: None,
            cost_epochs: BTreeMap::new(),
            stream_commands: Vec::new(),
        }
    }

    /// Queues a streaming management command; the engine schedules a
    /// [`TAG_STREAM`] timer on this node to drain the queue in-simulation.
    /// The faithful engine only streams [`StreamCommand::DeclareCost`] —
    /// churn commands are a plain-engine concept (see the liveness-hole
    /// discussion on `FaithfulRunState`).
    pub fn queue_stream_command(&mut self, cmd: StreamCommand) {
        self.stream_commands.push(cmd);
    }

    /// The construction core.
    pub fn core(&self) -> &FpssCore {
        &self.core
    }

    /// The declared cost, once started.
    pub fn declared_cost(&self) -> Option<Cost> {
        self.declared
    }

    /// Queues execution-phase traffic (sent on the bank's green light).
    pub fn add_traffic(&mut self, dst: NodeId, packets: u64) {
        self.pending_traffic.push((dst, packets));
    }

    /// Packets transited (true cost incurred on each).
    pub fn carried(&self) -> u64 {
        self.carried
    }

    /// Packets dropped here.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Bank-channel verification failures observed by this node.
    pub fn auth_failures(&self) -> u64 {
        self.auth_failures
    }

    /// The settlement `(net_transfer, penalty)` received from the bank.
    pub fn settled(&self) -> Option<(Money, Money)> {
        self.settled
    }

    /// The checker mirror held for `principal`, if it is a neighbor.
    pub fn mirror(&self, principal: NodeId) -> Option<&Mirror> {
        self.mirrors.get(&principal)
    }

    fn send_to_bank(&mut self, ctx: &mut Ctx<'_, FMsg>, payload: &BankPayload) {
        self.send_seq += 1;
        let env = self.key.seal(self.send_seq, payload.encode());
        ctx.send(self.bank, FMsg::Bank(env));
    }

    fn start_construction(&mut self, ctx: &mut Ctx<'_, FMsg>) {
        let me = self.core.me();
        let declared = self.strategy.declare_cost(self.true_cost);
        self.declared = Some(declared);
        self.core.learn_cost(me, declared);
        for mirror in self.mirrors.values_mut() {
            mirror.learn_cost(me, declared);
        }
        for &b in self.core.neighbors().to_vec().iter() {
            ctx.send(
                b,
                FMsg::Fpss(FpssMsg::CostAnnounce {
                    origin: me,
                    declared,
                }),
            );
        }
        self.recompute_and_announce(ctx);
    }

    fn reset_construction(&mut self) {
        let me = self.core.me();
        let neighbors = self.core.neighbors().to_vec();
        self.core = FpssCore::new(me, neighbors);
        for mirror in self.mirrors.values_mut() {
            mirror.reset_construction();
        }
    }

    fn announce(
        &mut self,
        ctx: &mut Ctx<'_, FMsg>,
        changed_routes: Vec<RouteRow>,
        changed_prices: Vec<PriceRow>,
        retractions: Vec<(NodeId, NodeId)>,
    ) {
        let me = self.core.me();
        let routes = self.strategy.announce_routing(me, changed_routes);
        if !routes.is_empty() {
            let msg = FpssMsg::RoutingUpdate { rows: routes };
            for &b in self.core.neighbors().to_vec().iter() {
                ctx.send(b, FMsg::Fpss(msg.clone()));
            }
            // What went on the wire is also what our mirrors of the
            // receivers must count as "our" input to them.
            for mirror in self.mirrors.values_mut() {
                mirror.record_own_send(&msg);
            }
        }
        let prices = self.strategy.announce_pricing(me, changed_prices);
        if !prices.is_empty() || !retractions.is_empty() {
            let msg = FpssMsg::PricingUpdate {
                rows: prices,
                retractions,
            };
            for &b in self.core.neighbors().to_vec().iter() {
                ctx.send(b, FMsg::Fpss(msg.clone()));
            }
            for mirror in self.mirrors.values_mut() {
                mirror.record_own_send(&msg);
            }
        }
    }

    fn recompute_and_announce(&mut self, ctx: &mut Ctx<'_, FMsg>) {
        let me = self.core.me();
        let strategy = &mut self.strategy;
        let (changed_routes, changed_prices, retractions) = self
            .core
            .recompute_with(|honest| strategy.install_own_pricing(me, honest));
        self.announce(ctx, changed_routes, changed_prices, retractions);
    }

    /// Destination-scoped recompute after `origin`'s declared cost changed
    /// (see `FpssCore::dsts_affected_by_cost`), falling back to the full
    /// recompute for strategies with whole-table hooks.
    fn recompute_after_cost_change(&mut self, ctx: &mut Ctx<'_, FMsg>, origin: NodeId) {
        if self.strategy.dst_scoped_recompute_safe() {
            let changed_dsts = self.core.dsts_affected_by_cost(origin);
            let (routes, prices, retractions) = self.core.recompute_dsts(&changed_dsts, true);
            self.announce(ctx, routes, prices, retractions);
        } else {
            self.recompute_and_announce(ctx);
        }
    }

    fn apply_stream_command(&mut self, ctx: &mut Ctx<'_, FMsg>, cmd: StreamCommand) {
        let me = self.core.me();
        match cmd {
            StreamCommand::DeclareCost(cost) => {
                self.true_cost = cost;
                let declared = self.strategy.declare_cost(cost);
                self.declared = Some(declared);
                let epoch = self.cost_epochs.get(&me).copied().unwrap_or(0) + 1;
                self.cost_epochs.insert(me, epoch);
                let changed = self.core.update_cost(me, declared);
                for mirror in self.mirrors.values_mut() {
                    mirror.update_cost(me, declared);
                }
                for &b in self.core.neighbors().to_vec().iter() {
                    ctx.send(
                        b,
                        FMsg::Fpss(FpssMsg::CostUpdate {
                            origin: me,
                            declared,
                            epoch,
                        }),
                    );
                }
                if changed {
                    self.recompute_after_cost_change(ctx, me);
                }
            }
            // Churn commands never reach faithful nodes: the streaming
            // engine reports the checkpointing liveness hole instead of
            // streaming them (see `FaithfulRunState::apply_event`).
            StreamCommand::PurgeNode(_)
            | StreamCommand::Rejoin
            | StreamCommand::ResyncNeighbor(_) => {}
        }
    }

    fn forward_to_checkers(&mut self, ctx: &mut Ctx<'_, FMsg>, from: NodeId, original: &FpssMsg) {
        if let Some(copy) = self.strategy.forward_to_checkers(from, original.clone()) {
            for &c in self.core.neighbors().to_vec().iter() {
                if c != from {
                    ctx.send(
                        c,
                        FMsg::CheckerCopy {
                            original_from: from,
                            inner: copy.clone(),
                        },
                    );
                }
            }
        }
    }

    fn send_packet(&mut self, ctx: &mut Ctx<'_, FMsg>, next: NodeId, pkt: Packet) {
        if let Some(mirror) = self.mirrors.get_mut(&next) {
            mirror.record_own_send(&FpssMsg::Data(pkt));
        }
        ctx.send(next, FMsg::Fpss(FpssMsg::Data(pkt)));
    }

    fn handle_packet(&mut self, ctx: &mut Ctx<'_, FMsg>, pkt: Packet) {
        let me = self.core.me();
        if pkt.dst == me {
            *self.delivered_from.entry(pkt.src).or_insert(0) += 1;
            return;
        }
        if pkt.hops > self.max_hops {
            self.dropped += 1;
            return;
        }
        if pkt.src != me && !self.strategy.forward_packet(me, &pkt) {
            self.dropped += 1;
            return;
        }
        let Some(next) = self.core.routes().next_hop(pkt.dst) else {
            self.dropped += 1;
            return;
        };
        if pkt.src != me {
            self.carried += 1;
        }
        self.send_packet(
            ctx,
            next,
            Packet {
                hops: pkt.hops + 1,
                ..pkt
            },
        );
    }

    fn begin_execution(&mut self, ctx: &mut Ctx<'_, FMsg>) {
        let me = self.core.me();
        let flows = std::mem::take(&mut self.pending_traffic);
        for (dst, packets) in flows {
            let Some(path) = self.core.routes().path(dst).map(<[NodeId]>::to_vec) else {
                continue;
            };
            let transits: Vec<NodeId> = if path.len() > 2 {
                path[1..path.len() - 1].to_vec()
            } else {
                Vec::new()
            };
            for _ in 0..packets {
                *self.originated.entry(dst).or_insert(0) += 1;
                for &k in &transits {
                    let price = self.core.prices().price(dst, k).unwrap_or(Money::ZERO);
                    self.ledger.accrue(k, price);
                }
                self.handle_packet(
                    ctx,
                    Packet {
                        src: me,
                        dst,
                        hops: 0,
                    },
                );
            }
        }
    }

    fn hash_report(&mut self) -> BankPayload {
        let mirrors = self
            .mirrors
            .values_mut()
            .map(|mirror| {
                mirror.recompute();
                MirrorHashes {
                    principal: mirror.principal(),
                    announced_routing: mirror.announced_routing().digest(),
                    announced_pricing: mirror.announced_pricing().digest(),
                    recomputed_routing: mirror.recomputed_routing().digest(),
                    recomputed_pricing: mirror.recomputed_pricing().digest(),
                }
            })
            .collect();
        BankPayload::HashReport {
            own_routing: self.core.routes().digest(),
            own_pricing: self.core.prices().digest(),
            mirrors,
        }
    }

    fn payment_report(&mut self) -> BankPayload {
        let me = self.core.me();
        let honest = self.ledger.to_entries();
        let reported = self.strategy.report_owed(me, honest);
        BankPayload::PaymentReport {
            owed: reported
                .into_iter()
                .map(|(to, amount)| (to.raw(), amount.value()))
                .collect(),
            originated: self
                .originated
                .iter()
                .map(|(&dst, &count)| (dst.raw(), count))
                .collect(),
        }
    }

    fn observation_report(&mut self) -> BankPayload {
        let principals = self
            .mirrors
            .values_mut()
            .map(|mirror| {
                mirror.recompute();
                PrincipalObservation {
                    principal: mirror.principal().raw(),
                    declared_cost: mirror
                        .principal_declared_cost()
                        .map(Cost::value)
                        .unwrap_or(0),
                    sent_to: mirror
                        .flows_sent_to()
                        .iter()
                        .map(|(&(s, d), &c)| (s.raw(), d.raw(), c))
                        .collect(),
                    recv_from: mirror
                        .flows_recv_from()
                        .iter()
                        .map(|(&(s, d), &c)| (s.raw(), d.raw(), c))
                        .collect(),
                    mirror_prices: mirror
                        .recomputed_pricing()
                        .iter()
                        .map(|((dst, k), entry)| (dst.raw(), k.raw(), entry.price.value()))
                        .collect(),
                }
            })
            .collect();
        BankPayload::ObservationReport { principals }
    }

    fn handle_bank(&mut self, ctx: &mut Ctx<'_, FMsg>, env: Authenticated) {
        let payload = match self.key.open(&env, self.last_bank_seq) {
            Ok(bytes) => {
                self.last_bank_seq = env.sequence;
                bytes
            }
            Err(_) => {
                self.auth_failures += 1;
                return;
            }
        };
        let Ok(payload) = BankPayload::decode(&payload) else {
            self.auth_failures += 1;
            return;
        };
        match payload {
            BankPayload::RequestHashes => {
                let report = self.hash_report();
                self.send_to_bank(ctx, &report);
            }
            BankPayload::Restart => {
                self.reset_construction();
                self.start_construction(ctx);
            }
            BankPayload::GreenLight => self.begin_execution(ctx),
            BankPayload::RequestReports => {
                let payments = self.payment_report();
                self.send_to_bank(ctx, &payments);
                let observations = self.observation_report();
                self.send_to_bank(ctx, &observations);
            }
            BankPayload::Settle {
                net_transfer,
                penalty,
            } => {
                self.settled = Some((Money::new(net_transfer), Money::new(penalty)));
            }
            // Node-originated payloads arriving at a node are protocol
            // violations; count and ignore.
            BankPayload::HashReport { .. }
            | BankPayload::PaymentReport { .. }
            | BankPayload::ObservationReport { .. } => {
                self.auth_failures += 1;
            }
        }
    }
}

impl Actor for FaithfulNode {
    type Msg = FMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, FMsg>) {
        self.start_construction(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, FMsg>, tag: u64) {
        if tag == TAG_STREAM {
            let cmds = std::mem::take(&mut self.stream_commands);
            for cmd in cmds {
                self.apply_stream_command(ctx, cmd);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, FMsg>, from: NodeId, msg: FMsg) {
        match msg {
            FMsg::Fpss(FpssMsg::CostAnnounce { origin, declared }) => {
                if self.core.learn_cost(origin, declared) {
                    for mirror in self.mirrors.values_mut() {
                        mirror.learn_cost(origin, declared);
                    }
                    if let Some(reflooded) = self.strategy.reflood_cost(origin, declared) {
                        for &b in self.core.neighbors().to_vec().iter() {
                            if b != from {
                                ctx.send(
                                    b,
                                    FMsg::Fpss(FpssMsg::CostAnnounce {
                                        origin,
                                        declared: reflooded,
                                    }),
                                );
                            }
                        }
                    }
                    if self.strategy.dst_scoped_recompute_safe() {
                        // First-write-wins costs only *enable* candidates:
                        // the affected destinations are exactly those with
                        // an advertised route through the origin.
                        let changed_dsts = self.core.dsts_affected_by_cost(origin);
                        let (routes, prices, retractions) =
                            self.core.recompute_dsts(&changed_dsts, true);
                        self.announce(ctx, routes, prices, retractions);
                    } else {
                        self.recompute_and_announce(ctx);
                    }
                }
            }
            FMsg::Fpss(FpssMsg::CostUpdate {
                origin,
                declared,
                epoch,
            }) => {
                let last = self.cost_epochs.get(&origin).copied().unwrap_or(0);
                if epoch <= last {
                    return;
                }
                self.cost_epochs.insert(origin, epoch);
                // Re-flood on epoch newness (the epoch check terminates the
                // flood), exactly as the plain node does. Like CostAnnounce,
                // CostUpdate is not checker-forwarded: mirrors share the
                // global DATA1, so the overwrite reaches every checker
                // through the flood itself.
                for &b in self.core.neighbors().to_vec().iter() {
                    if b != from {
                        ctx.send(
                            b,
                            FMsg::Fpss(FpssMsg::CostUpdate {
                                origin,
                                declared,
                                epoch,
                            }),
                        );
                    }
                }
                if self.core.update_cost(origin, declared) {
                    for mirror in self.mirrors.values_mut() {
                        mirror.update_cost(origin, declared);
                    }
                    self.recompute_after_cost_change(ctx, origin);
                }
            }
            FMsg::Fpss(FpssMsg::RoutingUpdate { rows }) => {
                if let Some(mirror) = self.mirrors.get_mut(&from) {
                    mirror.record_announced_routing(&rows);
                }
                let original = FpssMsg::RoutingUpdate { rows: rows.clone() };
                self.forward_to_checkers(ctx, from, &original);
                let mut changed_dsts = BTreeSet::new();
                for row in &rows {
                    if self.core.learn_route(from, row) {
                        changed_dsts.insert(row.dst);
                    }
                }
                if !changed_dsts.is_empty() {
                    if self.strategy.dst_scoped_recompute_safe() {
                        let (routes, prices, retractions) =
                            self.core.recompute_dsts(&changed_dsts, true);
                        self.announce(ctx, routes, prices, retractions);
                    } else {
                        self.recompute_and_announce(ctx);
                    }
                }
            }
            FMsg::Fpss(FpssMsg::PricingUpdate { rows, retractions }) => {
                if let Some(mirror) = self.mirrors.get_mut(&from) {
                    mirror.record_announced_pricing(&rows, &retractions);
                }
                let original = FpssMsg::PricingUpdate {
                    rows: rows.clone(),
                    retractions: retractions.clone(),
                };
                self.forward_to_checkers(ctx, from, &original);
                let mut changed_dsts = BTreeSet::new();
                for row in &rows {
                    if self.core.learn_price(from, row) {
                        changed_dsts.insert(row.dst);
                    }
                }
                for &(dst, transit) in &retractions {
                    if self.core.learn_price_retraction(from, dst, transit) {
                        changed_dsts.insert(dst);
                    }
                }
                if !changed_dsts.is_empty() {
                    if self.strategy.dst_scoped_recompute_safe() {
                        // Advertised prices are not a routing input:
                        // routing rows cannot change here.
                        let (routes, prices, retractions) =
                            self.core.recompute_dsts(&changed_dsts, false);
                        self.announce(ctx, routes, prices, retractions);
                    } else {
                        self.recompute_and_announce(ctx);
                    }
                }
            }
            FMsg::Fpss(FpssMsg::Data(pkt)) => {
                if let Some(mirror) = self.mirrors.get_mut(&from) {
                    mirror.record_packet_from_principal(pkt.src, pkt.dst);
                }
                self.handle_packet(ctx, pkt);
            }
            FMsg::CheckerCopy {
                original_from,
                inner,
            } => {
                if let Some(mirror) = self.mirrors.get_mut(&from) {
                    mirror.feed_forwarded(original_from, &inner);
                }
            }
            FMsg::Bank(env) => self.handle_bank(ctx, env),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaith_fpss::msg::Packet;

    /// Pins the faithful-layer wire-size formulas. These feed the network
    /// models' serialization/contention math and the golden byte totals in
    /// `tests/network_models.rs`; changing them is a reproducibility break.
    #[test]
    fn wire_sizes_are_frozen() {
        let packet = Packet {
            src: NodeId::new(0),
            dst: NodeId::new(1),
            hops: 2,
        };
        assert_eq!(FMsg::Fpss(FpssMsg::Data(packet)).size_bytes(), 12);
        assert_eq!(
            FMsg::CheckerCopy {
                original_from: NodeId::new(3),
                inner: FpssMsg::Data(packet),
            }
            .size_bytes(),
            4 + 12
        );
        let env = ChannelKey::derive(b"test-secret", 7).seal(1, vec![0u8; 10]);
        assert_eq!(FMsg::Bank(env).size_bytes(), 4 + 8 + 32 + 10);
    }
}
