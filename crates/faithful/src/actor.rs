//! Heterogeneous actor wrapper: topology nodes plus the bank in one
//! simulated network.

use crate::bank::BankNode;
use crate::node::{FMsg, FaithfulNode};
use specfaith_core::id::NodeId;
use specfaith_netsim::{Actor, Ctx};

/// Either a protocol node or the bank.
#[derive(Debug)]
pub enum NodeOrBank {
    /// A faithful (or deviating) protocol node.
    Node(Box<FaithfulNode>),
    /// The trusted bank.
    Bank(Box<BankNode>),
}

impl NodeOrBank {
    /// The protocol node, if this is one.
    ///
    /// # Panics
    ///
    /// Panics if this is the bank.
    pub fn node(&self) -> &FaithfulNode {
        match self {
            NodeOrBank::Node(n) => n,
            NodeOrBank::Bank(_) => panic!("expected a protocol node, found the bank"),
        }
    }

    /// Mutable access to the protocol node.
    ///
    /// # Panics
    ///
    /// Panics if this is the bank.
    pub fn node_mut(&mut self) -> &mut FaithfulNode {
        match self {
            NodeOrBank::Node(n) => n,
            NodeOrBank::Bank(_) => panic!("expected a protocol node, found the bank"),
        }
    }

    /// The bank, if this is it.
    ///
    /// # Panics
    ///
    /// Panics if this is a protocol node.
    pub fn bank(&self) -> &BankNode {
        match self {
            NodeOrBank::Bank(b) => b,
            NodeOrBank::Node(_) => panic!("expected the bank, found a protocol node"),
        }
    }

    /// Mutable access to the bank (streaming engines flip its
    /// certification/hold state between simulator runs).
    ///
    /// # Panics
    ///
    /// Panics if this is a protocol node.
    pub fn bank_mut(&mut self) -> &mut BankNode {
        match self {
            NodeOrBank::Bank(b) => b,
            NodeOrBank::Node(_) => panic!("expected the bank, found a protocol node"),
        }
    }
}

impl Actor for NodeOrBank {
    type Msg = FMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, FMsg>) {
        match self {
            NodeOrBank::Node(n) => n.on_start(ctx),
            NodeOrBank::Bank(b) => b.on_start(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, FMsg>, from: NodeId, msg: FMsg) {
        match self {
            NodeOrBank::Node(n) => n.on_message(ctx, from, msg),
            NodeOrBank::Bank(b) => b.on_message(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, FMsg>, tag: u64) {
        match self {
            NodeOrBank::Node(n) => n.on_timer(ctx, tag),
            NodeOrBank::Bank(b) => b.on_timer(ctx, tag),
        }
    }

    fn observes_quiescence(&self) -> bool {
        match self {
            NodeOrBank::Node(n) => n.observes_quiescence(),
            NodeOrBank::Bank(b) => b.observes_quiescence(),
        }
    }

    fn on_quiescence(&mut self, ctx: &mut Ctx<'_, FMsg>) {
        match self {
            NodeOrBank::Node(n) => n.on_quiescence(ctx),
            NodeOrBank::Bank(b) => b.on_quiescence(ctx),
        }
    }
}
