//! Penalty calibration (experiment E10).
//!
//! §4.2: the execution-phase penalty "is a well-defined monetary unit that
//! is epsilon-above the attempted deviation". This module makes the
//! deterrence condition explicit and analyzable:
//!
//! With deviation gain `g`, penalty `π = g + ε`, and detection probability
//! `p`, the expected deviation utility relative to faithfulness is
//!
//! ```text
//! E[Δu] = g − p·(g + ε)
//! ```
//!
//! which is negative iff `p > g / (g + ε)`. The faithful construction
//! drives `p` to 1 (full checker coverage, experiment E7), so *any* ε > 0
//! deters; the analysis quantifies how much slack the design has if
//! detection were imperfect.

use specfaith_core::money::Money;

/// The ε-above-the-deviation penalty policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PenaltyPolicy {
    /// The ε margin added above the detected deviation magnitude.
    pub epsilon: Money,
}

impl PenaltyPolicy {
    /// A policy with the given margin.
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon` is strictly positive (a zero margin makes
    /// deviation utility-neutral, violating strictness).
    pub fn new(epsilon: Money) -> Self {
        assert!(epsilon.is_positive(), "epsilon must be strictly positive");
        PenaltyPolicy { epsilon }
    }

    /// The penalty charged for a deviation of magnitude `gain`.
    pub fn penalty_for(&self, gain: Money) -> Money {
        gain + self.epsilon
    }

    /// Expected *relative* utility of deviating once, if detection occurs
    /// with probability `p` (deterministic detection in the faithful
    /// construction means `p = 1`).
    pub fn expected_deviation_gain(&self, gain: Money, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p is a probability");
        gain.value() as f64 - p * self.penalty_for(gain).value() as f64
    }

    /// The minimum detection probability that makes a deviation of the
    /// given magnitude unprofitable in expectation: `p* = g / (g + ε)`.
    pub fn deterrence_threshold(&self, gain: Money) -> f64 {
        let g = gain.value().max(0) as f64;
        let pi = self.penalty_for(gain).value() as f64;
        if pi <= 0.0 {
            return 0.0;
        }
        g / pi
    }

    /// Whether detection probability `p` deters a deviation of magnitude
    /// `gain` (strict inequality).
    pub fn deters(&self, gain: Money, p: f64) -> bool {
        self.expected_deviation_gain(gain, p) < 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_detection_always_deters() {
        let policy = PenaltyPolicy::new(Money::new(1));
        for gain in [0i64, 1, 10, 1_000_000] {
            assert!(policy.deters(Money::new(gain), 1.0), "gain {gain}");
        }
    }

    #[test]
    fn threshold_grows_with_gain() {
        let policy = PenaltyPolicy::new(Money::new(10));
        let small = policy.deterrence_threshold(Money::new(10));
        let large = policy.deterrence_threshold(Money::new(1000));
        assert!(small < large);
        assert!(large < 1.0, "any positive epsilon keeps p* below 1");
    }

    #[test]
    fn below_threshold_deviation_pays() {
        // gain 10, ε 5 ⇒ p* = 10/15 ≈ 0.667, comfortably inside (0,1).
        let policy = PenaltyPolicy::new(Money::new(5));
        let gain = Money::new(10);
        let p_star = policy.deterrence_threshold(gain);
        assert!(!policy.deters(gain, p_star - 0.05));
        assert!(policy.deters(gain, p_star + 0.05));
    }

    #[test]
    fn expected_gain_formula() {
        let policy = PenaltyPolicy::new(Money::new(5));
        // g = 10, π = 15, p = 0.5: E = 10 − 7.5 = 2.5.
        let e = policy.expected_deviation_gain(Money::new(10), 0.5);
        assert!((e - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_epsilon_rejected() {
        let _ = PenaltyPolicy::new(Money::ZERO);
    }
}
